//! Property test: incremental relabeling is indistinguishable from a
//! from-scratch rebuild.
//!
//! Random interleavings of `GrantView` / `RevokeView` / `AddSecurityView`
//! operations (including invalid ones, which must be rejected without side
//! effects) are applied to a live [`DisclosureService`], with cache-warming
//! labelings injected between mutations so that epoch-stale entries exist
//! at every step.  Afterwards the service must be extensionally equal to a
//! system built fresh from the final state:
//!
//! * every probe query's label equals the label computed by a
//!   [`BitVectorLabeler`] (and a fresh [`CachedLabeler`]) constructed from
//!   the final registry;
//! * a shared submit sequence yields identical admission decisions,
//!   consistency words and counters on the churned service and on a fresh
//!   service rebuilt from the final registry and final policies.

use fdc::core::{BitVectorLabeler, CachedLabeler, QueryLabeler, SecurityViews};
use fdc::cq::parser::parse_query;
use fdc::cq::ConjunctiveQuery;
use fdc::policy::{PolicyPartition, PrincipalId, SecurityPolicy};
use fdc::service::{DisclosureService, Operation, Response};
use proptest::prelude::*;

/// Candidate view definitions an interleaving may add online, with fixed
/// names so repeated additions exercise the duplicate-name rejection path.
const CANDIDATE_VIEWS: [(&str, &str); 8] = [
    ("A0", "A0(x) :- Meetings(x, y)"),
    ("A1", "A1(x, y) :- Meetings(x, y)"),
    ("A2", "A2(y) :- Meetings(x, y)"),
    ("A3", "A3(x) :- Meetings(x, 'Cathy')"),
    ("A4", "A4(x, y) :- Contacts(x, y, z)"),
    ("A5", "A5(z) :- Contacts(x, y, z)"),
    ("A6", "A6(x, y) :- Contacts(x, y, 'Intern')"),
    ("A7", "A7() :- Meetings(x, y)"),
];

/// Every view name an interleaving may grant or revoke: the three initial
/// views plus the candidates (granting a not-yet-added candidate must be
/// rejected without side effects).
const GRANTABLE: [&str; 11] = [
    "V1", "V2", "V3", "A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7",
];

/// Probe query shapes used for warming, final labeling and admissions.
const PROBES: [&str; 8] = [
    "Q(x) :- Meetings(x, y)",
    "Q(x, y) :- Meetings(x, y)",
    "Q(y) :- Meetings(x, y)",
    "Q(x) :- Meetings(x, 'Cathy')",
    "Q(x, y, z) :- Contacts(x, y, z)",
    "Q(z) :- Contacts(x, y, z)",
    "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
    "Q() :- Meetings(x, x)",
];

const NUM_PRINCIPALS: usize = 4;

fn probe(registry: &SecurityViews, text: &str) -> ConjunctiveQuery {
    parse_query(registry.catalog(), text).unwrap()
}

fn build_service() -> DisclosureService {
    let registry = SecurityViews::paper_example();
    let mut service = DisclosureService::with_defaults(registry.clone());
    let v1 = registry.id_by_name("V1").unwrap();
    let v2 = registry.id_by_name("V2").unwrap();
    let v3 = registry.id_by_name("V3").unwrap();
    for i in 0..NUM_PRINCIPALS {
        // A mix of stateless and Chinese-Wall policies.
        let policy = if i % 2 == 0 {
            SecurityPolicy::chinese_wall([
                PolicyPartition::from_views("meetings", &registry, [v1, v2]),
                PolicyPartition::from_views("contacts", &registry, [v3]),
            ])
        } else {
            SecurityPolicy::stateless(PolicyPartition::from_views("times", &registry, [v2]))
        };
        service.register_principal(policy);
    }
    service
}

/// Applies one interleaving step.  `a` and `b` index the step's choice
/// pools; out-of-range ids and not-yet-registered views are deliberately
/// reachable so rejections are exercised too.
fn apply_step(service: &mut DisclosureService, kind: u8, a: usize, b: usize) {
    let registry_catalog = service.registry().catalog().clone();
    match kind {
        0 => {
            let op = Operation::GrantView {
                principal: PrincipalId((a % (NUM_PRINCIPALS + 1)) as u32),
                view: GRANTABLE[b % GRANTABLE.len()].to_owned(),
            };
            service.apply(&op);
        }
        1 => {
            let op = Operation::RevokeView {
                principal: PrincipalId((a % (NUM_PRINCIPALS + 1)) as u32),
                view: GRANTABLE[b % GRANTABLE.len()].to_owned(),
            };
            service.apply(&op);
        }
        2 => {
            let (name, text) = CANDIDATE_VIEWS[a % CANDIDATE_VIEWS.len()];
            let op = Operation::AddSecurityView {
                name: name.to_owned(),
                query: parse_query(&registry_catalog, text).unwrap(),
            };
            let response = service.apply(&op);
            // Either freshly added or rejected as a duplicate; a duplicate
            // must never grow the registry.
            if let Response::Rejected(err) = response {
                assert!(
                    format!("{err}").contains("already registered"),
                    "unexpected rejection: {err}"
                );
            }
        }
        _ => {
            // Warm the cache so epoch-stale entries exist when the next
            // mutation lands.
            let text = PROBES[a % PROBES.len()];
            let query = parse_query(&registry_catalog, text).unwrap();
            service.labeler().label_query(&query);
            // And exercise the read-only admission path.
            let _ = service.check(PrincipalId((b % NUM_PRINCIPALS) as u32), &query);
        }
    }
}

/// Expands one interleaving step into the operation stream the pipelined
/// harness replays — the stream twin of [`apply_step`].
fn step_to_ops(registry: &SecurityViews, kind: u8, a: usize, b: usize) -> Vec<Operation> {
    let catalog = registry.catalog();
    match kind {
        0 => vec![Operation::GrantView {
            principal: PrincipalId((a % (NUM_PRINCIPALS + 1)) as u32),
            view: GRANTABLE[b % GRANTABLE.len()].to_owned(),
        }],
        1 => vec![Operation::RevokeView {
            principal: PrincipalId((a % (NUM_PRINCIPALS + 1)) as u32),
            view: GRANTABLE[b % GRANTABLE.len()].to_owned(),
        }],
        2 => {
            let (name, text) = CANDIDATE_VIEWS[a % CANDIDATE_VIEWS.len()];
            vec![Operation::AddSecurityView {
                name: name.to_owned(),
                query: parse_query(catalog, text).unwrap(),
            }]
        }
        _ => vec![
            Operation::Submit {
                principal: PrincipalId((b % NUM_PRINCIPALS) as u32),
                query: parse_query(catalog, PROBES[a % PROBES.len()]).unwrap(),
            },
            Operation::Check {
                principal: PrincipalId((b % NUM_PRINCIPALS) as u32),
                query: parse_query(catalog, PROBES[(a + 1) % PROBES.len()]).unwrap(),
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipelined_relabel_equals_the_batched_and_rebuilt_service(
        steps in proptest::collection::vec((0u8..4, 0usize..16, 0usize..16), 1..40)
    ) {
        // The pipelined-mode extension of the harness below: the same
        // interleavings, replayed as one operation stream through the
        // epoch-snapshot executor, must match the batch executor response
        // for response — and the pipelined service's refreshed cache must
        // still agree with a from-scratch rebuild of the final registry.
        let mut batched = build_service();
        let mut pipelined = build_service();
        let registry = batched.registry().clone();
        let ops: Vec<Operation> = steps
            .iter()
            .flat_map(|&(kind, a, b)| step_to_ops(&registry, kind, a, b))
            .collect();
        prop_assert_eq!(batched.run_batch(&ops), pipelined.run_pipelined(&ops));
        prop_assert_eq!(batched.totals(), pipelined.totals());
        for i in 0..NUM_PRINCIPALS {
            let p = PrincipalId(i as u32);
            prop_assert_eq!(
                batched.store().consistency_bits(p),
                pipelined.store().consistency_bits(p)
            );
            prop_assert_eq!(batched.store().stats(p), pipelined.store().stats(p));
        }
        let final_registry = pipelined.registry().clone();
        let fresh_bitvec = BitVectorLabeler::new(final_registry.clone());
        for text in PROBES {
            let query = probe(&final_registry, text);
            prop_assert_eq!(
                pipelined.labeler().label_query(&query),
                fresh_bitvec.label_query(&query),
                "pipelined cache disagrees with the rebuild on {}",
                text
            );
        }
    }

    #[test]
    fn incremental_relabel_equals_a_fresh_rebuild(
        steps in proptest::collection::vec((0u8..4, 0usize..16, 0usize..16), 1..40)
    ) {
        let mut service = build_service();
        for (kind, a, b) in steps {
            apply_step(&mut service, kind, a, b);
        }

        // 1. Labels: the churned, epoch-refreshed cache agrees with
        //    labelers built fresh from the final registry.
        let final_registry = service.registry().clone();
        let fresh_bitvec = BitVectorLabeler::new(final_registry.clone());
        let fresh_cached = CachedLabeler::new(final_registry.clone());
        for text in PROBES {
            let query = probe(&final_registry, text);
            let incremental = service.labeler().label_query(&query);
            prop_assert_eq!(
                &incremental,
                &fresh_bitvec.label_query(&query),
                "bitvec disagrees on {}",
                text
            );
            prop_assert_eq!(
                &incremental,
                &fresh_cached.label_query(&query),
                "cached disagrees on {}",
                text
            );
        }

        // 2. Decisions: a fresh service rebuilt from the final registry and
        //    final policies admits a shared submit sequence identically.
        let mut fresh = DisclosureService::with_defaults(final_registry.clone());
        for i in 0..NUM_PRINCIPALS {
            let p = PrincipalId(i as u32);
            fresh.register_principal(service.store().policy(p).clone());
        }
        for (i, text) in PROBES.iter().cycle().take(24).enumerate() {
            let p = PrincipalId((i % NUM_PRINCIPALS) as u32);
            let query = probe(&final_registry, text);
            let churned_decision = service.submit(p, &query).unwrap();
            let fresh_decision = fresh.submit(p, &query).unwrap();
            prop_assert_eq!(
                churned_decision, fresh_decision,
                "submit {} for principal {} disagrees on {}", i, p.0, text
            );
        }
        for i in 0..NUM_PRINCIPALS {
            let p = PrincipalId(i as u32);
            prop_assert_eq!(
                service.store().consistency_bits(p),
                fresh.store().consistency_bits(p)
            );
            prop_assert_eq!(service.store().stats(p), fresh.store().stats(p));
        }
    }
}
