//! Crash-consistency property tests for the durable [`DisclosureService`].
//!
//! The central property: **truncating the write-ahead log at any byte**
//! and recovering yields a service extensionally equal to an uncrashed
//! reference that applied exactly the operations whose log records
//! survived the cut — per-principal consistency words and decision
//! counters, the view registry (size and per-relation epochs), and the
//! decisions of a fixed probe set all match.  A crash can lose a suffix
//! of the stream; it can never invent, reorder or half-apply state.
//!
//! Also covered: checkpoints taken exactly at segment boundaries (every
//! append rotates), recovery with no checkpoint at all (pure replay),
//! resuming a truncated log and continuing the stream, and interned
//! `QueryId` stability across checkpointed recovery.

use std::fs;
use std::path::{Path, PathBuf};

use fdc::core::SecurityViews;
use fdc::cq::RelId;
use fdc::ecosystem::churn::{ChurnConfig, ChurnGenerator};
use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::schema::facebook_catalog;
use fdc::ecosystem::views::facebook_security_views;
use fdc::ecosystem::WorkloadConfig;
use fdc::policy::PrincipalId;
use fdc::service::{
    DisclosureService, DurabilityConfig, Operation, RecoveryReport, Response, ServiceConfig,
};

const PRINCIPALS: usize = 6;
const OPS: usize = 64;

/// A unique scratch directory (removed and re-created empty).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdc_crash_recovery_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The shared service configuration: explicit shard count (round-robin
/// placement must match between the durable service and the in-memory
/// reference), fsync off (scratch directories need no crash safety — the
/// crashes here are simulated with file truncation, not power loss).
fn config() -> ServiceConfig {
    ServiceConfig {
        num_shards: 2,
        durability: DurabilityConfig {
            fsync: false,
            ..DurabilityConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// The mixed churn stream: grants, revokes, view additions, submits and
/// checks over a small pooled query set.
fn churn_ops(registry: &SecurityViews, n: usize) -> Vec<Operation> {
    let schema = facebook_catalog();
    let mut churn = ChurnGenerator::new(
        schema,
        registry,
        ChurnConfig {
            mutation_ratio: 0.25,
            add_view_share: 0.3,
            check_share: 0.15,
            query_pool: 8,
            num_principals: PRINCIPALS,
            seed: 0xC4A5,
            workload: WorkloadConfig::base(0xC4A5),
        },
    );
    let ops = churn.ops(n);
    assert!(
        ops.iter().any(|op| op.is_mutation()) && ops.iter().any(|op| op.is_admission()),
        "the stream must be mixed"
    );
    ops
}

/// The per-principal policies the stream starts from.
fn policies(registry: &SecurityViews) -> Vec<fdc::policy::SecurityPolicy> {
    let mut generator =
        fdc::ecosystem::Ecosystem::new().policy_generator(PolicyGeneratorConfig::default());
    (0..PRINCIPALS)
        .map(|_| generator.next_policy(registry))
        .collect()
}

/// Whether `op` produces a WAL record (the write-ahead set: everything
/// but reads).
fn is_logged(op: &Operation) -> bool {
    !matches!(
        op,
        Operation::Check { .. } | Operation::CheckInterned { .. } | Operation::AuditApp { .. }
    )
}

/// An extensional fingerprint of a service: everything durable that two
/// equal services must agree on.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    principals: usize,
    /// Per principal: consistency word + (allowed, denied) counters.
    words: Vec<(u64, (u64, u64))>,
    store_totals: (u64, u64),
    registry_len: usize,
    epochs: Vec<u64>,
    /// Decisions (or rejections) of the probe queries, per principal.
    probes: Vec<Vec<String>>,
}

fn fingerprint(
    service: &mut DisclosureService,
    probes: &[fdc::cq::ConjunctiveQuery],
) -> Fingerprint {
    let principals = service.store().len();
    let words = (0..principals)
        .map(|i| {
            let p = PrincipalId(i as u32);
            (
                service.store().consistency_bits(p),
                service.store().stats(p),
            )
        })
        .collect();
    let store_totals = service.store().totals();
    let registry_len = service.registry().len();
    let epochs = (0..service.registry().catalog().len())
        .map(|r| service.registry().epoch(RelId(r as u32)))
        .collect();
    let probe_results = (0..principals)
        .map(|i| {
            let p = PrincipalId(i as u32);
            probes
                .iter()
                .map(|q| format!("{:?}", service.check(p, q)))
                .collect()
        })
        .collect();
    Fingerprint {
        principals,
        words,
        store_totals,
        registry_len,
        epochs,
        probes: probe_results,
    }
}

/// The single WAL segment file of `dir` (these streams fit in one).
fn single_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "expected a single segment in {dir:?}");
    segments.remove(0)
}

/// Drives the churn stream through a durable service op-by-op, returning
/// the WAL bytes and, for every record count `r`, the reference
/// fingerprint after exactly the first `r` logged operations.
fn record_stream(
    tag: &str,
    registry: &SecurityViews,
    ops: &[Operation],
    probes: &[fdc::cq::ConjunctiveQuery],
) -> (PathBuf, Vec<u8>, Vec<Fingerprint>) {
    let dir = temp_dir(tag);
    let (mut durable, report) =
        DisclosureService::open_durable(registry.clone(), config(), &dir).unwrap();
    assert_eq!(
        report,
        RecoveryReport {
            checkpoint_seq: 0,
            records_replayed: 0,
            last_seq: 0,
            discarded_bytes: 0,
            discarded_records: 0,
            temps_swept: 0,
        }
    );
    let mut reference = DisclosureService::new(registry.clone(), config());
    // Fingerprints indexed by surviving record count: entry 0 is the
    // freshly opened state.
    let mut by_records = vec![fingerprint(&mut reference, probes)];
    for policy in policies(registry) {
        durable.register_principal(policy.clone());
        reference.register_principal(policy);
        by_records.push(fingerprint(&mut reference, probes));
    }
    for op in ops {
        durable.apply(op);
        reference.apply(op);
        if is_logged(op) {
            by_records.push(fingerprint(&mut reference, probes));
        }
    }
    durable.close().unwrap();
    let segment = single_segment(&dir);
    let bytes = fs::read(&segment).unwrap();
    (dir, bytes, by_records)
}

#[test]
fn truncation_at_every_byte_recovers_a_consistent_prefix() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, OPS);
    let probes = {
        let schema = facebook_catalog();
        let mut workload =
            fdc::ecosystem::WorkloadGenerator::new(schema, WorkloadConfig::base(0xB0B));
        workload.batch(3)
    };
    let (dir, bytes, by_records) = record_stream("every_byte", &registry, &ops, &probes);
    let header_len = 20;
    assert!(bytes.len() > header_len, "the stream must produce records");

    let scratch = temp_dir("every_byte_cut");
    fs::create_dir_all(&scratch).unwrap();
    let segment_name = single_segment(&dir).file_name().unwrap().to_owned();
    let mut seen_counts = std::collections::BTreeSet::new();
    for cut in 0..=bytes.len() {
        // Rebuild the scratch directory as the crash image: the one
        // segment file, truncated at `cut`.
        for entry in fs::read_dir(&scratch).unwrap() {
            fs::remove_file(entry.unwrap().path()).unwrap();
        }
        fs::write(scratch.join(&segment_name), &bytes[..cut]).unwrap();
        let recovered = DisclosureService::open_durable(registry.clone(), config(), &scratch);
        if cut < header_len {
            // A first segment shorter than its header is structural
            // damage, reported as an error — never a panic, never a
            // silently empty recovery.
            assert!(recovered.is_err(), "cut at {cut} must be rejected");
            continue;
        }
        let (mut recovered, report) =
            recovered.unwrap_or_else(|err| panic!("recovery failed at cut {cut}: {err}"));
        assert_eq!(report.checkpoint_seq, 0);
        let r = report.records_replayed as usize;
        assert_eq!(report.last_seq, r as u64);
        assert!(
            r < by_records.len(),
            "cut {cut} recovered {r} records, stream only logged {}",
            by_records.len() - 1
        );
        assert_eq!(
            fingerprint(&mut recovered, &probes),
            by_records[r],
            "state diverged at cut {cut} ({r} records)"
        );
        seen_counts.insert(r);
        drop(recovered); // also exercises the Drop commit path
    }
    // The sweep exercised every prefix length, not just a few.
    assert_eq!(
        seen_counts.len(),
        by_records.len(),
        "every record count from 0 to {} must occur",
        by_records.len() - 1
    );
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn a_resumed_log_continues_the_stream_after_a_torn_tail() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, OPS);
    let probes = {
        let schema = facebook_catalog();
        let mut workload =
            fdc::ecosystem::WorkloadGenerator::new(schema, WorkloadConfig::base(0xBEE));
        workload.batch(2)
    };
    let (dir, bytes, _) = record_stream("resume", &registry, &ops, &probes);
    // Tear the log mid-way (an arbitrary mid-record byte), then resume:
    // apply a further grant, close, and recover again — the post-crash
    // record must land right after the surviving prefix.
    let segment = single_segment(&dir);
    let cut = 20 + (bytes.len() - 20) / 2;
    fs::write(&segment, &bytes[..cut]).unwrap();
    let (mut resumed, first) =
        DisclosureService::open_durable(registry.clone(), config(), &dir).unwrap();
    let survivor = PrincipalId(0);
    let view = resumed.registry().iter().next().unwrap().1.name.clone();
    resumed.grant_view(survivor, &view).unwrap();
    let expected_bits = resumed.store().consistency_bits(survivor);
    resumed.close().unwrap();
    let (recovered, second) = DisclosureService::open_durable(registry, config(), &dir).unwrap();
    assert_eq!(second.records_replayed, first.records_replayed + 1);
    assert_eq!(second.last_seq, first.last_seq + 1);
    assert_eq!(recovered.store().consistency_bits(survivor), expected_bits);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_checkpoint_at_every_segment_boundary_recovers_exactly() {
    // segment_bytes = 1 forces a rotation after every record: each
    // checkpoint lands exactly on a segment boundary, the hardest case
    // for the prune/replay-start arithmetic.
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, OPS);
    let tiny_segments = ServiceConfig {
        durability: DurabilityConfig {
            fsync: false,
            segment_bytes: 1,
            group_commit: 1,
            ..DurabilityConfig::default()
        },
        ..config()
    };
    let probes = {
        let schema = facebook_catalog();
        let mut workload =
            fdc::ecosystem::WorkloadGenerator::new(schema, WorkloadConfig::base(0xD1CE));
        workload.batch(2)
    };
    let dir = temp_dir("segment_boundary");
    let (mut durable, _) =
        DisclosureService::open_durable(registry.clone(), tiny_segments, &dir).unwrap();
    let mut reference = DisclosureService::new(registry.clone(), tiny_segments);
    for policy in policies(&registry) {
        durable.register_principal(policy.clone());
        reference.register_principal(policy);
    }
    let mut last_checkpoint = 0;
    for (i, op) in ops.iter().enumerate() {
        durable.apply(op);
        reference.apply(op);
        // Checkpoint every 16 ops, and crash-recover right after one.
        if (i + 1) % 16 == 0 {
            let seq = durable.checkpoint().unwrap();
            assert!(seq > last_checkpoint, "sequence numbers advance");
            last_checkpoint = seq;
            // Recovery from the live directory (the durable handle keeps
            // appending afterwards — recovery is read-only apart from
            // tail truncation, and there is no torn tail here).
            let (mut recovered, report) =
                DisclosureService::open_durable(registry.clone(), tiny_segments, &dir).unwrap();
            assert_eq!(report.checkpoint_seq, seq);
            assert_eq!(report.records_replayed, 0, "checkpoint covers the log");
            assert_eq!(
                fingerprint(&mut recovered, &probes),
                fingerprint(&mut reference, &probes),
                "after checkpoint {seq}"
            );
        }
    }
    durable.close().unwrap();
    // Final recovery: checkpoint + the records appended after it.
    let (mut recovered, report) =
        DisclosureService::open_durable(registry, tiny_segments, &dir).unwrap();
    assert_eq!(report.checkpoint_seq, last_checkpoint);
    assert!(report.last_seq >= last_checkpoint);
    assert_eq!(
        fingerprint(&mut recovered, &probes),
        fingerprint(&mut reference, &probes)
    );
    // Pruning kept the directory bounded: segments before the oldest
    // retained checkpoint are gone.
    let segments = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .count();
    assert!(
        segments < ops.len(),
        "pruning must have removed covered segments ({segments} left)"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interned_query_ids_stay_stable_across_checkpointed_recovery() {
    let registry = facebook_security_views(&facebook_catalog());
    let schema = facebook_catalog();
    let dir = temp_dir("interned_ids");
    let (mut durable, _) =
        DisclosureService::open_durable(registry.clone(), config(), &dir).unwrap();
    for policy in policies(&registry) {
        durable.register_principal(policy);
    }
    let mut churn = ChurnGenerator::new(
        schema,
        &registry,
        ChurnConfig {
            mutation_ratio: 0.1,
            add_view_share: 0.2,
            check_share: 0.2,
            query_pool: 8,
            num_principals: PRINCIPALS,
            seed: 0x1D5,
            workload: WorkloadConfig::base(0x1D5),
        },
    );
    churn.attach_interner(durable.interner());
    let ops = churn.ops(OPS);
    assert!(
        ops.iter()
            .any(|op| matches!(op, Operation::SubmitInterned { .. })),
        "the stream must carry interned admissions"
    );
    let responses = durable.run_batch(&ops);
    assert_eq!(responses.len(), ops.len());
    durable.checkpoint().unwrap();
    // Record every pooled query and its id from the live interner.
    let live: Vec<(fdc::cq::intern::QueryId, fdc::cq::ConjunctiveQuery)> = {
        let handle = durable.interner();
        let guard = handle.read().unwrap();
        (0..guard.len())
            .map(|i| {
                let id = fdc::cq::intern::QueryId(i as u32);
                (id, guard.to_query(id))
            })
            .collect()
    };
    durable.close().unwrap();
    let (mut recovered, report) =
        DisclosureService::open_durable(registry, config(), &dir).unwrap();
    assert_eq!(report.records_replayed, 0);
    // Every pre-crash id resolves to the identical query, and re-interning
    // the query yields the same id — ids are stable currency across
    // restarts.
    {
        let handle = recovered.interner();
        let mut guard = handle.write().unwrap();
        for (id, query) in &live {
            assert!(guard.contains(*id));
            assert_eq!(&guard.to_query(*id), query);
            assert_eq!(guard.intern(query), *id);
        }
    }
    // And the recovered service serves the same interned stream with the
    // same responses (minus the stateful consistency evolution already
    // replayed — so compare a pure-check projection).
    let checks: Vec<Operation> = ops
        .iter()
        .filter_map(|op| match op {
            Operation::CheckInterned { principal, query } => Some(Operation::CheckInterned {
                principal: *principal,
                query: *query,
            }),
            _ => None,
        })
        .collect();
    assert!(!checks.is_empty(), "the stream must carry interned checks");
    // Every recovered check must reach a decision, never an UnknownQuery
    // rejection — the ids survived the restart.
    for response in recovered.run_batch(&checks) {
        assert!(
            matches!(response, Response::Decision(_)),
            "interned check must decide after recovery, got {response:?}"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mutations_admitted_mid_encode_survive_an_off_lock_checkpoint() {
    // The split checkpoint path: `begin_checkpoint` fixes the image's
    // horizon under the lock, the payload encodes while the service keeps
    // admitting mutations, and `complete_checkpoint` lands the image
    // without pruning the records acknowledged in between.
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 2 * OPS);
    let probes = {
        let schema = facebook_catalog();
        let mut workload =
            fdc::ecosystem::WorkloadGenerator::new(schema, WorkloadConfig::base(0x0FF1));
        workload.batch(3)
    };
    let (before, rest) = ops.split_at(OPS);
    let (mid_encode, after) = rest.split_at(OPS / 2);
    let dir = temp_dir("off_lock_checkpoint");
    let (mut durable, _) =
        DisclosureService::open_durable(registry.clone(), config(), &dir).unwrap();
    let mut reference = DisclosureService::new(registry.clone(), config());
    for policy in policies(&registry) {
        durable.register_principal(policy.clone());
        reference.register_principal(policy);
    }
    for op in before {
        durable.apply(op);
        reference.apply(op);
    }
    let pending = durable.begin_checkpoint().unwrap();
    let horizon = pending.seq();
    // Mutations admitted while the payload is encoding (the service lock
    // is free between begin and complete): every one is acknowledged and
    // logged past `horizon`, and none of them may leak into the image.
    for op in mid_encode {
        assert_eq!(durable.apply(op), reference.apply(op));
    }
    let payload = pending.encode();
    for op in after {
        assert_eq!(durable.apply(op), reference.apply(op));
    }
    assert_eq!(
        durable.complete_checkpoint(&pending, &payload).unwrap(),
        horizon
    );
    let health = durable.stats().durability;
    assert_eq!(health.checkpoints, 1);
    assert_eq!(health.last_checkpoint_seq, horizon);
    durable.close().unwrap();
    // Recovery bulkloads the image at the pre-encode horizon, then
    // replays every record admitted during and after the encode.
    let (mut recovered, report) =
        DisclosureService::open_durable(registry, config(), &dir).unwrap();
    assert_eq!(report.checkpoint_seq, horizon);
    assert!(
        report.records_replayed > 0,
        "mid-encode mutations must replay from the surviving log"
    );
    assert_eq!(
        fingerprint(&mut recovered, &probes),
        fingerprint(&mut reference, &probes)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pure_replay_without_any_checkpoint_rebuilds_the_full_stream() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 2 * OPS);
    let probes = {
        let schema = facebook_catalog();
        let mut workload =
            fdc::ecosystem::WorkloadGenerator::new(schema, WorkloadConfig::base(0xFADE));
        workload.batch(3)
    };
    let (dir, _, by_records) = record_stream("pure_replay", &registry, &ops, &probes);
    let (mut recovered, report) =
        DisclosureService::open_durable(registry.clone(), config(), &dir).unwrap();
    assert_eq!(report.checkpoint_seq, 0, "no checkpoint was ever taken");
    assert_eq!(report.records_replayed as usize, by_records.len() - 1);
    assert_eq!(
        fingerprint(&mut recovered, &probes),
        *by_records.last().unwrap()
    );
    recovered.close().unwrap();
    // Recovery is idempotent: a second open replays to the same state.
    let (mut again, _) = DisclosureService::open_durable(registry, config(), &dir).unwrap();
    assert_eq!(
        fingerprint(&mut again, &probes),
        *by_records.last().unwrap()
    );
    fs::remove_dir_all(&dir).unwrap();
}
