//! Property test: query interning is sound.
//!
//! The interned query plane (`fdc_cq::intern`) claims three things:
//!
//! 1. **Alpha-equivalent queries get the same `QueryId`** — interning
//!    canonicalizes by first-occurrence variable renaming, so queries that
//!    differ only in variable identities collapse to one id.
//! 2. **Structurally distinct queries get distinct ids** — ids discriminate
//!    exactly as finely as the canonical keys they replace.
//! 3. **`resolve`/`to_query` after `intern` is lossless** — the
//!    reconstructed query is structurally identical (up to renaming) and
//!    extensionally equal (semantic equivalence in both directions) to the
//!    input.
//!
//! All three are driven here over the paper's Section 7.2 workload generator
//! (randomized relations, audiences, projections, multi-subquery joins) and
//! a hand-written shape pool covering constants, repeated variables and
//! self-joins.

use fdc::cq::canonical::{rename_canonical, structurally_identical};
use fdc::cq::containment::equivalent;
use fdc::cq::intern::QueryInterner;
use fdc::cq::parser::parse_query;
use fdc::cq::{Catalog, ConjunctiveQuery};
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use proptest::prelude::*;

/// One shared soundness check: interning `query` twice (once as given, once
/// alpha-renamed) yields one id, and the id resolves back to an
/// extensionally equal query.
fn assert_sound(interner: &mut QueryInterner, query: &ConjunctiveQuery) {
    let id = interner.intern(query);
    // Idempotence and alpha-invariance: the canonical renaming is a
    // different `ConjunctiveQuery` value (fresh names, renumbered ids) but
    // the same shape.
    prop_assert_eq!(interner.intern(query), id, "interning is not idempotent");
    let renamed = rename_canonical(query);
    prop_assert_eq!(
        interner.intern(&renamed),
        id,
        "alpha-equivalent query got a different id: {:?}",
        renamed
    );
    prop_assert_eq!(interner.lookup(query), Some(id));
    // Round trip: structurally identical and extensionally equal.
    let back = interner.to_query(id);
    prop_assert!(
        structurally_identical(query, &back),
        "round trip changed the structure: {:?} vs {:?}",
        query,
        back
    );
    prop_assert!(
        equivalent(query, &back),
        "round trip changed the semantics: {:?} vs {:?}",
        query,
        back
    );
    // The zero-copy view agrees with the reconstruction on the cheap facts.
    let view = interner.resolve(id);
    prop_assert_eq!(view.num_atoms(), query.num_atoms());
    prop_assert_eq!(view.num_vars(), query.num_vars());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ecosystem workloads: soundness holds for every generated query, and
    /// distinct ids imply distinct structure (and vice versa) across a
    /// whole batch.
    #[test]
    fn interning_is_sound_on_ecosystem_workloads(
        seed in 0u64..1_000_000,
        max_subqueries in 1usize..5,
    ) {
        let eco = Ecosystem::new();
        let mut generator = eco.workload(WorkloadConfig::stress(max_subqueries, seed));
        let queries = generator.batch(30);
        let mut interner = QueryInterner::new();
        let mut ids = Vec::with_capacity(queries.len());
        for query in &queries {
            assert_sound(&mut interner, query);
            ids.push(interner.intern(query));
        }
        // Ids discriminate exactly like structural identity.
        for (qa, ia) in queries.iter().zip(&ids) {
            for (qb, ib) in queries.iter().zip(&ids) {
                prop_assert_eq!(
                    ia == ib,
                    structurally_identical(qa, qb),
                    "id equality diverged from structural identity on {:?} vs {:?}",
                    qa,
                    qb
                );
            }
        }
        // The id space stays dense: no more ids than interned shapes.
        prop_assert!(interner.len() <= queries.len());
        for &id in &ids {
            prop_assert!(interner.contains(id));
        }
    }

    /// Paper-schema shapes: constants, repeated variables, self-joins and
    /// permuted heads — every pair discriminates exactly as structural
    /// identity does, within one interner and across insertion orders.
    #[test]
    fn interning_discriminates_tricky_shapes(shuffle_seed in 0u64..1_000_000) {
        let catalog = Catalog::paper_example();
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(y, x) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q() :- Meetings(z, z)",
            "Q(x) :- Meetings(x, x)",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, 'Bob')",
            "Q() :- Meetings(9, 'Jim')",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Manager')",
            "Q() :- Meetings(x, y), Contacts(p, r, s)",
            "Q() :- Contacts(p, r, s), Meetings(x, y)",
            "Q() :- Meetings(x, y), Meetings(y, z)",
            "Q() :- Meetings(x, y), Meetings(z, w)",
        ];
        // Insert in a seed-dependent order: ids differ run to run, but the
        // discrimination must not.
        let mut order: Vec<usize> = (0..texts.len()).collect();
        let mut state = shuffle_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let queries: Vec<ConjunctiveQuery> = texts
            .iter()
            .map(|t| parse_query(&catalog, t).unwrap())
            .collect();
        let mut interner = QueryInterner::new();
        let mut ids = vec![None; texts.len()];
        for &i in &order {
            assert_sound(&mut interner, &queries[i]);
            ids[i] = Some(interner.intern(&queries[i]));
        }
        for i in 0..texts.len() {
            for j in 0..texts.len() {
                prop_assert_eq!(
                    ids[i] == ids[j],
                    structurally_identical(&queries[i], &queries[j]),
                    "{} vs {}",
                    texts[i],
                    texts[j]
                );
            }
        }
        // The id space never exceeds the pool (head-permuted twins such as
        // `Q(x, y)` vs `Q(y, x)` collapse in the tagged representation).
        prop_assert!(interner.len() <= texts.len());
        prop_assert!(interner.len() >= texts.len() - 1);
    }

    /// Structural classification (GYO shape class and ear ordering) is a
    /// property of the canonical query, not of interner history: it must
    /// not change with insertion order, re-interning the same query, or a
    /// round trip through `to_query` into a fresh interner.
    #[test]
    fn classification_is_stable_across_insertion_order(shuffle_seed in 0u64..1_000_000) {
        let catalog = Catalog::paper_example();
        let texts = [
            // Acyclic shapes: paths, stars, self-joins, constants.
            "Q(x) :- Meetings(x, y)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q() :- Meetings(x, y), Meetings(y, z)",
            "Q(x) :- Meetings(x, x)",
            "Q() :- Meetings(x, y), Meetings(x, z), Meetings(x, w)",
            // Cyclic shapes: the triangle and a square, GYO finds no ear.
            "Q() :- Meetings(x, y), Meetings(y, z), Meetings(z, x)",
            "Q() :- Meetings(x, y), Meetings(y, z), Meetings(z, w), Meetings(w, x)",
        ];
        let queries: Vec<ConjunctiveQuery> = texts
            .iter()
            .map(|t| parse_query(&catalog, t).unwrap())
            .collect();
        // Natural order into one interner, shuffled order into another.
        let mut order: Vec<usize> = (0..texts.len()).collect();
        let mut state = shuffle_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut natural = QueryInterner::new();
        let natural_ids: Vec<_> = queries.iter().map(|q| natural.intern(q)).collect();
        let mut shuffled = QueryInterner::new();
        let mut shuffled_ids = vec![None; texts.len()];
        for &i in &order {
            shuffled_ids[i] = Some(shuffled.intern(&queries[i]));
        }
        for (i, text) in texts.iter().enumerate() {
            let a = natural_ids[i];
            let b = shuffled_ids[i].unwrap();
            prop_assert_eq!(
                natural.shape_class(a),
                shuffled.shape_class(b),
                "shape class changed with insertion order on {}",
                text
            );
            prop_assert_eq!(
                natural.ear_steps(a),
                shuffled.ear_steps(b),
                "ear ordering changed with insertion order on {}",
                text
            );
            // Re-interning is a no-op on the classification...
            prop_assert_eq!(natural.intern(&queries[i]), a);
            // ...and a round trip through `to_query` re-derives it.
            let mut fresh = QueryInterner::new();
            let again = fresh.intern(&natural.to_query(a));
            prop_assert_eq!(natural.shape_class(a), fresh.shape_class(again));
            prop_assert_eq!(natural.ear_steps(a), fresh.ear_steps(again));
            // The classes themselves are as constructed: the last two
            // shapes are the cycles.
            let expected = if i >= texts.len() - 2 {
                fdc::cq::structure::ShapeClass::Cyclic
            } else {
                fdc::cq::structure::ShapeClass::Acyclic
            };
            prop_assert_eq!(natural.shape_class(a), expected, "on {}", text);
        }
    }
}
