//! Integration tests that walk through the paper's worked examples using
//! only the public umbrella API (`fdc::…`), exactly as a downstream user
//! would.

use fdc::core::{BaselineLabeler, BitVectorLabeler, QueryLabeler, SecurityViews};
use fdc::cq::parser::parse_query;
use fdc::cq::Catalog;
use fdc::policy::{PolicyPartition, ReferenceMonitor, SecurityPolicy};

fn figure1() -> (Catalog, SecurityViews) {
    let catalog = Catalog::paper_example();
    let mut views = SecurityViews::new(&catalog);
    views
        .add_program(
            r"
            V1(x, y)    :- Meetings(x, y)
            V2(x)       :- Meetings(x, y)
            V3(x, y, z) :- Contacts(x, y, z)
            ",
        )
        .unwrap();
    (catalog, views)
}

#[test]
fn figure_1_labels_are_reproduced() {
    let (catalog, views) = figure1();
    let labeler = BitVectorLabeler::new(views.clone());

    // "the label of Q1 in Figure 1 is {V1}"
    let q1 = parse_query(&catalog, "Q1(x) :- Meetings(x, 'Cathy')").unwrap();
    let label = labeler.label_query(&q1);
    let text = label.describe(&views);
    assert!(text.contains("V1"));
    assert!(!text.contains("V2"));
    assert!(!text.contains("V3"));

    // "the label of Q2 is {V1, V3}"
    let q2 = parse_query(
        &catalog,
        "Q2(x) :- Meetings(x, y) ∧ Contacts(y, w, 'Intern')",
    )
    .unwrap();
    let label = labeler.label_query(&q2);
    let text = label.describe(&views);
    assert!(text.contains("V1"));
    assert!(text.contains("V3"));
    assert!(!text.contains("V2"));
}

#[test]
fn section_1_1_alice_policy_rejects_q1_and_q2() {
    // "Alice can specify that any query whose label is just {V2} can be
    // answered, but queries with labels above V2 should be rejected.  Both
    // Q1 and Q2 would be rejected under such a policy."
    let (catalog, views) = figure1();
    let labeler = BitVectorLabeler::new(views.clone());
    let v2 = views.id_by_name("V2").unwrap();
    let policy = SecurityPolicy::stateless(PolicyPartition::from_views("only-v2", &views, [v2]));
    let mut monitor = ReferenceMonitor::new(policy);

    let q1 = parse_query(&catalog, "Q1(x) :- Meetings(x, 'Cathy')").unwrap();
    let q2 = parse_query(
        &catalog,
        "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
    )
    .unwrap();
    let times = parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap();

    assert!(!monitor.submit(&labeler.label_query(&q1)).is_allow());
    assert!(!monitor.submit(&labeler.label_query(&q2)).is_allow());
    // A query answerable from V2 alone is fine.
    assert!(monitor.submit(&labeler.label_query(&times)).is_allow());
}

#[test]
fn section_2_2_either_meetings_or_contacts_but_not_both() {
    // "suppose Alice is willing to disclose either her meetings or her list
    // of contacts, but not both."
    let (catalog, views) = figure1();
    let labeler = BaselineLabeler::new(views.clone());
    let v1 = views.id_by_name("V1").unwrap();
    let v2 = views.id_by_name("V2").unwrap();
    let v3 = views.id_by_name("V3").unwrap();
    let policy = SecurityPolicy::chinese_wall([
        PolicyPartition::from_views("meetings", &views, [v1, v2]),
        PolicyPartition::from_views("contacts", &views, [v3]),
    ]);
    let mut monitor = ReferenceMonitor::new(policy);

    let meetings = parse_query(&catalog, "Q(x, y) :- Meetings(x, y)").unwrap();
    let contacts = parse_query(&catalog, "Q(x, y, z) :- Contacts(x, y, z)").unwrap();

    assert!(monitor.submit(&labeler.label_query(&meetings)).is_allow());
    assert!(!monitor.submit(&labeler.label_query(&contacts)).is_allow());
    assert!(monitor.submit(&labeler.label_query(&meetings)).is_allow());
    assert_eq!(monitor.answered(), 2);
    assert_eq!(monitor.refused(), 1);
}

#[test]
fn example_4_10_generating_set_for_contacts_projections() {
    // Fgen = {V3, V6, V7, V8} suffices to label every projection of Contacts.
    let catalog = Catalog::paper_example();
    let mut views = SecurityViews::new(&catalog);
    views
        .add_program(
            r"
            V3(x, y, z) :- Contacts(x, y, z)
            V6(x, y)    :- Contacts(x, y, z)
            V7(x, z)    :- Contacts(x, y, z)
            V8(y, z)    :- Contacts(x, y, z)
            ",
        )
        .unwrap();
    let labeler = BitVectorLabeler::new(views.clone());

    // Example 6.1: ℓ⁺({V9}) = {V3, V6, V7} and ℓ⁺({V12}) = {V3, V6, V7, V8},
    // so ℓ(V12) ⪯ ℓ(V9).
    let v9 = parse_query(&catalog, "V9(x) :- Contacts(x, y, z)").unwrap();
    let v12 = parse_query(&catalog, "V12() :- Contacts(x, y, z)").unwrap();
    let l9 = labeler.label_query(&v9);
    let l12 = labeler.label_query(&v12);
    assert_eq!(l9.atoms()[0].view_count(), 3);
    assert_eq!(l12.atoms()[0].view_count(), 4);
    assert!(l12.leq(&l9));
    assert!(!l9.leq(&l12));

    let names9 = l9.describe(&views);
    assert!(names9.contains("V3") && names9.contains("V6") && names9.contains("V7"));
    assert!(!names9.contains("V8"));
}

#[test]
fn glb_singleton_reproduces_section_5_examples() {
    use fdc::core::unify::{glb_singleton, Glb};
    let catalog = Catalog::paper_example();
    let q = |s: &str| parse_query(&catalog, s).unwrap();

    // Example 5.1.
    assert!(glb_singleton(
        &q("V13() :- Meetings(9, 'Jim')"),
        &q("V14() :- Meetings(x, y)")
    )
    .is_bottom());
    // Example 5.2.
    match glb_singleton(
        &q("V6(x, y) :- Contacts(x, y, z)"),
        &q("V7(x, z) :- Contacts(x, y, z)"),
    ) {
        Glb::View(v) => {
            assert!(fdc::cq::containment::equivalent(
                &v,
                &q("V9(x) :- Contacts(x, y, z)")
            ));
        }
        Glb::Bottom => panic!("V6 and V7 overlap on the first column"),
    }
    // Example 5.3.
    assert!(
        glb_singleton(&q("V14() :- Meetings(x, y)"), &q("V15() :- Meetings(z, z)")).is_bottom()
    );
}

#[test]
fn example_5_4_dissection() {
    use fdc::core::dissect::dissect;
    let catalog = Catalog::paper_example();
    let q2 = parse_query(
        &catalog,
        "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
    )
    .unwrap();
    let parts = dissect(&q2);
    assert_eq!(parts.len(), 2);
    // [M(xd, yd)], [C(yd, we, 'Intern')]
    let expected_m = parse_query(&catalog, "P(x, y) :- Meetings(x, y)").unwrap();
    let expected_c = parse_query(&catalog, "P(y) :- Contacts(y, w, 'Intern')").unwrap();
    assert!(fdc::cq::containment::equivalent(&parts[0], &expected_m));
    assert!(fdc::cq::containment::equivalent(&parts[1], &expected_c));
}
