//! Fault-injection tests for the durable [`DisclosureService`]: the
//! storage layer misbehaves *while the service is running*, not just at
//! a crash point.
//!
//! The central property (the **write-ahead invariant under faults**):
//! under every seeded fault schedule, a mutation is acknowledged *iff*
//! its log record is durably committed — an acknowledged mutation is
//! never lost, and a lost mutation was always visibly rejected with
//! [`ServiceError::DurabilityUnavailable`].  Recovering after a crash
//! therefore reproduces exactly the durably-acknowledged stream.
//!
//! Also covered, deterministically: a permanent storage failure
//! degrades the service to read-only instead of panicking; admissions
//! and checks keep serving while degraded; a successful checkpoint on
//! healed storage promotes the service back to healthy (and makes the
//! degraded window's in-memory admissions durable); a checkpoint
//! attempt on still-dead storage fails cleanly and leaves the service
//! serving; orphaned checkpoint temporaries are swept at open; and a
//! garbage log tail is counted in the [`RecoveryReport`] rather than
//! silently dropped.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fdc::core::SecurityViews;
use fdc::cq::RelId;
use fdc::durability::{FaultSchedule, FaultVfs, InstantClock};
use fdc::ecosystem::churn::{ChurnConfig, ChurnGenerator};
use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::schema::facebook_catalog;
use fdc::ecosystem::views::facebook_security_views;
use fdc::ecosystem::WorkloadConfig;
use fdc::policy::PrincipalId;
use fdc::service::{
    BackgroundCheckpointer, DegradedMode, DisclosureService, DurabilityConfig, Operation, Response,
    ServiceConfig, ServiceError, ServiceMode,
};

const PRINCIPALS: usize = 6;
const OPS: usize = 64;

/// A unique scratch directory (removed, *not* re-created).
fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fdc_fault_injection_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Shared configuration: fsync **on**, so fsync faults actually fire
/// (the fault filesystem is where "fsync" gets its failure semantics;
/// no real disk flushes happen on the quiet paths of these tests
/// beyond what the scratch tmpfs absorbs).
fn config() -> ServiceConfig {
    ServiceConfig {
        num_shards: 2,
        durability: DurabilityConfig {
            fsync: true,
            ..DurabilityConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// The mixed churn stream: grants, revokes, view additions, submits and
/// checks over a small pooled query set.
fn churn_ops(registry: &SecurityViews, seed: u64, n: usize) -> Vec<Operation> {
    let schema = facebook_catalog();
    let mut churn = ChurnGenerator::new(
        schema,
        registry,
        ChurnConfig {
            mutation_ratio: 0.3,
            add_view_share: 0.25,
            check_share: 0.15,
            query_pool: 8,
            num_principals: PRINCIPALS,
            seed,
            workload: WorkloadConfig::base(seed),
        },
    );
    let ops = churn.ops(n);
    assert!(
        ops.iter().any(|op| op.is_mutation()) && ops.iter().any(|op| op.is_admission()),
        "the stream must be mixed"
    );
    ops
}

/// The per-principal policies the stream starts from.
fn policies(registry: &SecurityViews) -> Vec<fdc::policy::SecurityPolicy> {
    let mut generator =
        fdc::ecosystem::Ecosystem::new().policy_generator(PolicyGeneratorConfig::default());
    (0..PRINCIPALS)
        .map(|_| generator.next_policy(registry))
        .collect()
}

/// Whether `op` produces a WAL record (the write-ahead set: everything
/// but reads).
fn is_logged(op: &Operation) -> bool {
    !matches!(
        op,
        Operation::Check { .. } | Operation::CheckInterned { .. } | Operation::AuditApp { .. }
    )
}

/// An extensional fingerprint of a service: everything durable that two
/// equal services must agree on.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    principals: usize,
    words: Vec<(u64, (u64, u64))>,
    store_totals: (u64, u64),
    registry_len: usize,
    epochs: Vec<u64>,
    probes: Vec<Vec<String>>,
}

fn fingerprint(
    service: &mut DisclosureService,
    probes: &[fdc::cq::ConjunctiveQuery],
) -> Fingerprint {
    let principals = service.store().len();
    let words = (0..principals)
        .map(|i| {
            let p = PrincipalId(i as u32);
            (
                service.store().consistency_bits(p),
                service.store().stats(p),
            )
        })
        .collect();
    let store_totals = service.store().totals();
    let registry_len = service.registry().len();
    let epochs = (0..service.registry().catalog().len())
        .map(|r| service.registry().epoch(RelId(r as u32)))
        .collect();
    let probe_results = (0..principals)
        .map(|i| {
            let p = PrincipalId(i as u32);
            probes
                .iter()
                .map(|q| format!("{:?}", service.check(p, q)))
                .collect()
        })
        .collect();
    Fingerprint {
        principals,
        words,
        store_totals,
        registry_len,
        epochs,
        probes: probe_results,
    }
}

fn probe_queries() -> Vec<fdc::cq::ConjunctiveQuery> {
    let schema = facebook_catalog();
    let mut workload = fdc::ecosystem::WorkloadGenerator::new(schema, WorkloadConfig::base(0xFA17));
    workload.batch(3)
}

/// Opens a durable service over `vfs` with an instant (non-sleeping)
/// clock, so retry backoff costs no wall time.
fn open_faulted(
    registry: &SecurityViews,
    dir: &std::path::Path,
    vfs: &FaultVfs,
) -> std::io::Result<(DisclosureService, fdc::service::RecoveryReport)> {
    DisclosureService::open_durable_in(
        registry.clone(),
        config(),
        dir,
        Arc::new(vfs.clone()),
        Arc::new(InstantClock::new()),
    )
}

/// One fault-schedule run of the write-ahead-invariant property:
/// register quietly, arm `schedule`, drive the churn stream op-by-op,
/// mirror exactly the durably-committed operations into an in-memory
/// reference, then crash, heal, recover, and demand the recovered
/// service equals the reference.
///
/// Returns whether the run ended degraded (so the sweep can assert it
/// exercised both outcomes).
fn acked_mutations_survive(tag: &str, schedule: FaultSchedule) -> bool {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, schedule.seed ^ 0xC0FFEE, OPS);
    let probes = probe_queries();
    let dir = temp_dir(tag);
    let vfs = FaultVfs::over_std(FaultSchedule::quiet(schedule.seed));

    let (mut durable, _) = open_faulted(&registry, &dir, &vfs).unwrap();
    let mut reference = DisclosureService::new(registry.clone(), config());
    for policy in policies(&registry) {
        durable.register_principal(policy.clone());
        reference.register_principal(policy);
    }

    vfs.set_schedule(schedule);
    for (i, op) in ops.iter().enumerate() {
        let before = durable.stats().durability.wal_records_committed;
        let response = durable.apply(op);
        let committed = durable.stats().durability.wal_records_committed - before;
        assert!(committed <= 1, "one op commits at most one record");
        let unavailable = response == Response::Rejected(ServiceError::DurabilityUnavailable);
        if op.is_mutation() {
            // The write-ahead invariant, op by op: an acknowledged
            // mutation has its record on disk, a mutation whose record
            // is not on disk was rejected as unavailable.
            assert_eq!(
                committed == 0,
                unavailable,
                "op {i} ({op:?}): committed={committed}, response={response:?}"
            );
        } else {
            assert!(!unavailable, "op {i}: reads and admissions always serve");
        }
        if committed == 1 {
            reference.apply(op);
        }
    }
    let degraded = durable.is_degraded();
    let faults = vfs.counters();
    drop(durable); // crash: no close

    // Storage comes back; recovery sees exactly the committed records.
    vfs.heal();
    vfs.set_schedule(FaultSchedule::quiet(schedule.seed));
    let (mut recovered, report) = open_faulted(&registry, &dir, &vfs).unwrap();
    assert_eq!(
        fingerprint(&mut recovered, &probes),
        fingerprint(&mut reference, &probes),
        "recovered state diverged from the acknowledged stream \
         (schedule {schedule:?}, faults {faults:?}, report {report:?})"
    );
    fs::remove_dir_all(&dir).unwrap();
    degraded
}

#[test]
fn no_acknowledged_mutation_is_lost_under_any_fault_schedule() {
    let schedules: &[(&str, FaultSchedule)] = &[
        (
            "transient",
            FaultSchedule {
                write_transient_per_mille: 250,
                ..FaultSchedule::quiet(1)
            },
        ),
        (
            "torn",
            FaultSchedule {
                torn_write_per_mille: 120,
                ..FaultSchedule::quiet(2)
            },
        ),
        (
            "fsyncgate",
            FaultSchedule {
                fsync_failure_per_mille: 150,
                ..FaultSchedule::quiet(3)
            },
        ),
        (
            "enospc",
            FaultSchedule {
                enospc_per_mille: 80,
                ..FaultSchedule::quiet(4)
            },
        ),
        (
            "mixed",
            FaultSchedule {
                write_transient_per_mille: 120,
                torn_write_per_mille: 50,
                fsync_failure_per_mille: 60,
                enospc_per_mille: 30,
                rename_failure_per_mille: 40,
                ..FaultSchedule::quiet(5)
            },
        ),
    ];
    let mut survived = 0u32;
    let mut degraded = 0u32;
    for (name, base) in schedules {
        for round in 0..4u64 {
            let schedule = FaultSchedule {
                seed: base.seed * 1000 + round,
                ..*base
            };
            let tag = format!("prop_{name}_{round}");
            if acked_mutations_survive(&tag, schedule) {
                degraded += 1;
            } else {
                survived += 1;
            }
        }
    }
    // The sweep must exercise both endings: runs that ride out the
    // faults healthy, and runs forced into degraded mode.
    assert!(survived > 0, "no run survived — schedules too hot");
    assert!(degraded > 0, "no run degraded — schedules too cold");
}

#[test]
fn batched_mutations_respect_the_durable_prefix() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 0xBA7C4, OPS);
    let probes = probe_queries();
    let dir = temp_dir("batch_prefix");
    let vfs = FaultVfs::over_std(FaultSchedule::quiet(9));

    let (mut durable, _) = open_faulted(&registry, &dir, &vfs).unwrap();
    let mut reference = DisclosureService::new(registry.clone(), config());
    for policy in policies(&registry) {
        durable.register_principal(policy.clone());
        reference.register_principal(policy);
    }
    vfs.set_schedule(FaultSchedule {
        torn_write_per_mille: 60,
        enospc_per_mille: 40,
        fsync_failure_per_mille: 60,
        ..FaultSchedule::quiet(9)
    });

    for batch in ops.chunks(8) {
        let before = durable.stats().durability.wal_records_committed;
        let responses = durable.run_batch(batch);
        let committed = (durable.stats().durability.wal_records_committed - before) as usize;
        // Group commits are all-or-nothing per `commit`, so `committed`
        // is the batch's durable prefix over its *loggable* operations.
        let mut ordinal = 0usize;
        let durable_flags: Vec<bool> = batch
            .iter()
            .map(|op| {
                is_logged(op) && {
                    let mine = ordinal < committed;
                    ordinal += 1;
                    mine
                }
            })
            .collect();
        for ((op, response), durable_op) in batch.iter().zip(&responses).zip(durable_flags) {
            let unavailable = *response == Response::Rejected(ServiceError::DurabilityUnavailable);
            if op.is_mutation() {
                assert_eq!(!durable_op, unavailable, "{op:?} vs {response:?}");
            } else {
                assert!(!unavailable, "reads and admissions always serve");
            }
            if durable_op {
                reference.apply(op);
            }
        }
    }
    drop(durable);

    vfs.heal();
    vfs.set_schedule(FaultSchedule::quiet(9));
    let (mut recovered, _) = open_faulted(&registry, &dir, &vfs).unwrap();
    assert_eq!(
        fingerprint(&mut recovered, &probes),
        fingerprint(&mut reference, &probes),
        "batched recovery diverged from the durable prefix"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn permanent_failure_degrades_to_read_only_instead_of_panicking() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 0xDEAD, OPS);
    let dir = temp_dir("degrade");
    let vfs = FaultVfs::over_std(FaultSchedule::quiet(11));
    let (mut service, _) = open_faulted(&registry, &dir, &vfs).unwrap();
    for policy in policies(&registry) {
        service.register_principal(policy);
    }
    let healthy_ops = &ops[..16];
    for op in healthy_ops {
        service.apply(op);
    }
    assert_eq!(service.mode(), ServiceMode::Healthy);

    vfs.fail_permanently();
    let mutation = ops[16..].iter().find(|op| op.is_mutation()).unwrap();
    let admission = ops[16..].iter().find(|op| op.is_admission()).unwrap();

    // The first mutation on dead storage is rejected — and flips the
    // service into degraded mode rather than panicking the process.
    assert_eq!(
        service.apply(mutation),
        Response::Rejected(ServiceError::DurabilityUnavailable)
    );
    assert!(service.is_degraded());
    assert_eq!(
        service.mode(),
        ServiceMode::Degraded(DegradedMode::ReadOnly)
    );
    let health = service.stats().durability;
    assert_eq!(health.mode_transitions, 1);

    // Reads and admissions keep serving from memory.
    assert!(!service.apply(admission).is_rejected());
    let p = PrincipalId(0);
    for q in probe_queries() {
        let _ = service.check(p, &q); // must not panic or reject
    }

    // Every mutation entry point reports the same refusal.
    let policy = policies(&registry).remove(0);
    assert_eq!(
        service.try_register_principal(policy),
        Err(ServiceError::DurabilityUnavailable)
    );
    for op in ops[16..].iter().filter(|op| op.is_mutation()).take(4) {
        assert_eq!(
            service.apply(op),
            Response::Rejected(ServiceError::DurabilityUnavailable)
        );
    }
    // Degrading is idempotent: still a single transition.
    assert_eq!(service.stats().durability.mode_transitions, 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_on_dead_storage_fails_cleanly_and_keeps_serving() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 0x5EED, 32);
    let dir = temp_dir("dead_checkpoint");
    let vfs = FaultVfs::over_std(FaultSchedule::quiet(13));
    let (mut service, _) = open_faulted(&registry, &dir, &vfs).unwrap();
    for policy in policies(&registry) {
        service.register_principal(policy);
    }
    for op in &ops[..8] {
        service.apply(op);
    }
    vfs.fail_permanently();
    let mutation = ops.iter().find(|op| op.is_mutation()).unwrap();
    assert!(service.apply(mutation).is_rejected());
    assert!(service.is_degraded());

    // Checkpointing while the disk is still dead fails with an error —
    // counted, retried later, never fatal.
    assert!(service.checkpoint().is_err());
    assert!(service.is_degraded(), "a failed checkpoint cannot promote");
    let health = service.stats().durability;
    assert!(health.checkpoint_failures >= 1);
    assert_eq!(health.checkpoints, 0);

    // And the service is still up: admissions serve in memory.
    let admission = ops.iter().find(|op| op.is_admission()).unwrap();
    assert!(!service.apply(admission).is_rejected());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn successful_checkpoint_promotes_degraded_service_back_to_healthy() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 0x90E, OPS);
    let probes = probe_queries();
    let dir = temp_dir("promote");
    let vfs = FaultVfs::over_std(FaultSchedule::quiet(17));
    let (mut service, _) = open_faulted(&registry, &dir, &vfs).unwrap();
    let mut reference = DisclosureService::new(registry.clone(), config());
    for policy in policies(&registry) {
        service.register_principal(policy.clone());
        reference.register_principal(policy);
    }

    // Healthy phase, then the disk dies and the service degrades.
    let (healthy, rest) = ops.split_at(20);
    for op in healthy {
        service.apply(op);
        reference.apply(op);
    }
    vfs.fail_permanently();
    let (degraded_window, tail) = rest.split_at(20);
    for op in degraded_window {
        let response = service.apply(op);
        if !response.is_rejected() {
            // Acknowledged while degraded (reads + admissions): these
            // become durable with the promotion checkpoint below, so
            // the reference mirrors them.
            reference.apply(op);
        }
    }
    assert!(service.is_degraded());

    // Storage comes back; the next checkpoint promotes.
    vfs.heal();
    let seq = service.checkpoint().unwrap();
    assert!(!service.is_degraded());
    assert_eq!(service.mode(), ServiceMode::Healthy);
    let health = service.stats().durability;
    assert_eq!(health.mode_transitions, 2, "degrade + promote");
    assert_eq!(health.checkpoints, 1);
    assert_eq!(health.last_checkpoint_seq, seq);

    // Mutations are accepted (and logged) again.
    for op in tail {
        let response = service.apply(op);
        assert_ne!(
            response,
            Response::Rejected(ServiceError::DurabilityUnavailable),
            "promoted service must accept mutations"
        );
        reference.apply(op);
    }

    // Crash after promotion: the checkpoint image (which covers the
    // degraded window's admissions) plus the fresh log reproduce the
    // full acknowledged stream.
    drop(service);
    let (mut recovered, report) = open_faulted(&registry, &dir, &vfs).unwrap();
    assert_eq!(report.checkpoint_seq, seq);
    assert_eq!(
        fingerprint(&mut recovered, &probes),
        fingerprint(&mut reference, &probes),
        "promotion lost part of the acknowledged stream"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_checkpointer_promotes_a_degraded_service() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 0xB66, 32);
    let dir = temp_dir("bg_promote");
    let vfs = FaultVfs::over_std(FaultSchedule::quiet(23));
    let (mut service, _) = open_faulted(&registry, &dir, &vfs).unwrap();
    for policy in policies(&registry) {
        service.register_principal(policy);
    }
    for op in &ops[..8] {
        service.apply(op);
    }
    vfs.fail_permanently();
    let mutation = ops.iter().find(|op| op.is_mutation()).unwrap().clone();
    assert!(service.apply(&mutation).is_rejected());
    assert!(service.is_degraded());

    // The maintenance thread ticks against the dead disk: its attempts
    // fail (counted), the service stays degraded and keeps serving.
    let service = Arc::new(Mutex::new(service));
    let checkpointer =
        BackgroundCheckpointer::spawn(Arc::clone(&service), Duration::from_millis(5));
    std::thread::sleep(Duration::from_millis(40));
    {
        let service = service.lock().unwrap();
        assert!(service.is_degraded(), "a dead disk cannot promote");
        assert!(service.stats().durability.checkpoint_failures >= 1);
    }

    // The disk comes back; the next tick lands a checkpoint and
    // promotes the service — no one calls `checkpoint()` by hand.
    vfs.heal();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.lock().unwrap().is_degraded() {
        assert!(
            Instant::now() < deadline,
            "the background checkpointer never promoted the service"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    checkpointer.stop();
    let mut service = Arc::try_unwrap(service).unwrap().into_inner().unwrap();
    let health = service.stats().durability;
    assert_eq!(health.mode_transitions, 2, "degrade + background promote");
    assert!(health.checkpoints >= 1);
    // Mutations flow (and are logged) again.
    assert_ne!(
        service.apply(&mutation),
        Response::Rejected(ServiceError::DurabilityUnavailable)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_durable_sweeps_orphaned_checkpoint_temporaries() {
    let registry = facebook_security_views(&facebook_catalog());
    let dir = temp_dir("tmp_sweep");
    fs::create_dir_all(&dir).unwrap();
    // A crash between a checkpoint's temp write and its rename strands
    // the temp file; seed two of them.
    fs::write(dir.join("ckpt-00000000000000000007.tmp"), b"torn image").unwrap();
    fs::write(dir.join("ckpt-00000000000000000009.tmp"), b"").unwrap();
    let (service, report) = DisclosureService::open_durable(registry, config(), &dir).unwrap();
    assert_eq!(report.temps_swept, 2);
    let leftovers: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temps not swept: {leftovers:?}");
    assert_eq!(service.recovery_report().unwrap(), report);
    service.close().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_report_counts_a_discarded_garbage_tail() {
    let registry = facebook_security_views(&facebook_catalog());
    let ops = churn_ops(&registry, 0x7A11, 24);
    let dir = temp_dir("garbage_tail");
    let (mut service, _) =
        DisclosureService::open_durable(registry.clone(), config(), &dir).unwrap();
    for policy in policies(&registry) {
        service.register_principal(policy);
    }
    for op in &ops {
        service.apply(op);
    }
    service.close().unwrap();

    // Scribble garbage on the tail of the (single) segment, as a torn
    // final write would.
    let segment = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .unwrap();
    let mut bytes = fs::read(&segment).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xFF; 7]);
    fs::write(&segment, &bytes).unwrap();

    let (service, report) = DisclosureService::open_durable(registry, config(), &dir).unwrap();
    assert_eq!(report.discarded_bytes, 7, "the garbage tail is counted");
    assert_eq!(report.discarded_records, 1, "as one residual frame");
    // The resumed writer truncated the garbage away.
    service.close().unwrap();
    assert_eq!(fs::metadata(&segment).unwrap().len() as usize, clean_len);
    fs::remove_dir_all(&dir).unwrap();
}
