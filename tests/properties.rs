//! Property-based tests (proptest) on the core data structures and the
//! invariants the paper's theory promises.
//!
//! Random conjunctive queries over the Meetings/Contacts schema are
//! generated structurally (random atoms, random variable tags, random
//! constants), and the framework's invariants are checked on them:
//! containment is a preorder, folding preserves equivalence, the rewriting
//! order satisfies the disclosure-order axioms, GLBs are lower bounds, and
//! the optimized label comparison agrees with the definitional one.

use fdc::core::unify::{glb_singleton, Glb};
use fdc::core::{BaselineLabeler, BitVectorLabeler, QueryLabeler, SecurityViews};
use fdc::cq::containment::{contained_in, equivalent, equivalent_same_space};
use fdc::cq::database::{evaluate, satisfiable, Database};
use fdc::cq::folding::fold;
use fdc::cq::rewriting::rewritable_from_single;
use fdc::cq::{Atom, Catalog, ConjunctiveQuery, Constant, RelId, Term, VarKind};
use proptest::prelude::*;

/// Strategy: a random term over `max_vars` variable ids.
fn term_strategy(max_vars: u32) -> impl Strategy<Value = RawTerm> {
    prop_oneof![
        (0..max_vars).prop_map(RawTerm::Dist),
        (0..max_vars).prop_map(RawTerm::Exist),
        (0..3i64).prop_map(RawTerm::Int),
    ]
}

/// Raw, possibly-inconsistent term description; `build_query` reconciles
/// variable kinds (a variable that is ever distinguished stays
/// distinguished).
#[derive(Debug, Clone, Copy)]
enum RawTerm {
    Dist(u32),
    Exist(u32),
    Int(i64),
}

/// Strategy: a random single-relation atom description (relation index and
/// term list sized to the relation's arity).
fn atom_strategy(max_vars: u32) -> impl Strategy<Value = (u8, Vec<RawTerm>)> {
    (0u8..2).prop_flat_map(move |rel| {
        let arity = if rel == 0 { 2 } else { 3 };
        (
            Just(rel),
            proptest::collection::vec(term_strategy(max_vars), arity),
        )
    })
}

/// Strategy: a random conjunctive query with 1..=3 atoms over the paper's
/// Meetings/Contacts schema.
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    proptest::collection::vec(atom_strategy(4), 1..=3).prop_map(build_query)
}

/// Strategy: a random single-atom query (used for view-level properties).
fn single_atom_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    proptest::collection::vec(atom_strategy(3), 1..=1).prop_map(build_query)
}

fn build_query(raw: Vec<(u8, Vec<RawTerm>)>) -> ConjunctiveQuery {
    // First pass: decide each variable's kind (distinguished wins).
    let mut kinds: Vec<Option<VarKind>> = vec![None; 8];
    for (_, terms) in &raw {
        for term in terms {
            match term {
                RawTerm::Dist(v) => kinds[*v as usize] = Some(VarKind::Distinguished),
                RawTerm::Exist(v) => {
                    if kinds[*v as usize].is_none() {
                        kinds[*v as usize] = Some(VarKind::Existential);
                    }
                }
                RawTerm::Int(_) => {}
            }
        }
    }
    // Second pass: compact the used variables into dense ids.
    let mut mapping: Vec<Option<u32>> = vec![None; 8];
    let mut var_kinds = Vec::new();
    let mut var_names = Vec::new();
    let resolve = |v: u32,
                   mapping: &mut Vec<Option<u32>>,
                   var_kinds: &mut Vec<VarKind>,
                   var_names: &mut Vec<String>|
     -> u32 {
        if let Some(id) = mapping[v as usize] {
            return id;
        }
        let id = var_kinds.len() as u32;
        var_kinds.push(kinds[v as usize].expect("kind decided in the first pass"));
        var_names.push(format!("v{v}"));
        mapping[v as usize] = Some(id);
        id
    };
    let atoms: Vec<Atom> = raw
        .iter()
        .map(|(rel, terms)| {
            let relation = RelId(*rel as u32);
            let mapped: Vec<Term> = terms
                .iter()
                .map(|t| match t {
                    RawTerm::Dist(v) | RawTerm::Exist(v) => {
                        let id = resolve(*v, &mut mapping, &mut var_kinds, &mut var_names);
                        Term::Var(fdc::cq::VarId(id), var_kinds[id as usize])
                    }
                    RawTerm::Int(i) => Term::constant(*i),
                })
                .collect();
            Atom::new(relation, mapped)
        })
        .collect();
    ConjunctiveQuery::from_parts(atoms, var_kinds, var_names)
        .expect("structurally generated queries are valid")
}

fn paper_registry() -> SecurityViews {
    SecurityViews::paper_example()
}

/// Strategy: a random small database instance over the Meetings/Contacts
/// schema, with constants drawn from the same `0..3` integer domain the
/// query strategy uses (so joins and selections actually hit).
fn database_strategy() -> impl Strategy<Value = Database> {
    let meetings_tuples = proptest::collection::vec((0i64..3, 0i64..3), 0..6);
    let contacts_tuples = proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 0..6);
    (meetings_tuples, contacts_tuples).prop_map(|(meetings, contacts)| {
        let catalog = Catalog::paper_example();
        let m = catalog.resolve("Meetings").unwrap();
        let c = catalog.resolve("Contacts").unwrap();
        let mut db = Database::new();
        for (a, b) in meetings {
            db.insert(&catalog, m, [Constant::Int(a), Constant::Int(b)])
                .unwrap();
        }
        for (a, b, e) in contacts {
            db.insert(
                &catalog,
                c,
                [Constant::Int(a), Constant::Int(b), Constant::Int(e)],
            )
            .unwrap();
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn containment_is_reflexive_and_folding_preserves_equivalence(q in query_strategy()) {
        prop_assert!(contained_in(&q, &q));
        prop_assert!(equivalent(&q, &q));
        let folded = fold(&q);
        prop_assert!(folded.num_atoms() <= q.num_atoms());
        prop_assert!(equivalent_same_space(&folded, &q));
        // Folding is idempotent.
        prop_assert_eq!(fold(&folded), folded.clone());
    }

    #[test]
    fn containment_is_transitive(a in query_strategy(), b in query_strategy(), c in query_strategy()) {
        if contained_in(&a, &b) && contained_in(&b, &c) {
            prop_assert!(contained_in(&a, &c));
        }
    }

    #[test]
    fn single_atom_rewriting_is_reflexive_and_transitive(
        a in single_atom_strategy(),
        b in single_atom_strategy(),
        c in single_atom_strategy(),
    ) {
        prop_assert!(rewritable_from_single(&a, &a));
        if rewritable_from_single(&a, &b) && rewritable_from_single(&b, &c) {
            prop_assert!(rewritable_from_single(&a, &c));
        }
    }

    #[test]
    fn glb_is_a_lower_bound_of_both_inputs(
        a in single_atom_strategy(),
        b in single_atom_strategy(),
    ) {
        if let Glb::View(g) = glb_singleton(&a, &b) {
            prop_assert!(rewritable_from_single(&g, &a),
                "GLB not rewritable from the left input");
            prop_assert!(rewritable_from_single(&g, &b),
                "GLB not rewritable from the right input");
        }
    }

    #[test]
    fn glb_is_commutative_up_to_equivalence(
        a in single_atom_strategy(),
        b in single_atom_strategy(),
    ) {
        match (glb_singleton(&a, &b), glb_singleton(&b, &a)) {
            (Glb::Bottom, Glb::Bottom) => {}
            (Glb::View(x), Glb::View(y)) => prop_assert!(equivalent(&x, &y)),
            (x, y) => prop_assert!(false, "asymmetric GLB: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn labelers_agree_and_labels_never_underestimate(q in query_strategy()) {
        let registry = paper_registry();
        let baseline = BaselineLabeler::new(registry.clone());
        let bitvec = BitVectorLabeler::new(registry.clone());
        let a = baseline.label_query(&q);
        let b = bitvec.label_query(&q);
        prop_assert_eq!(&a, &b);

        // Re-derive the label straight from the definition: dissect the
        // query, compute ℓ⁺ for every part by scanning the registry with the
        // rewriting oracle, and compare with the labelers' output.
        let mut expected = fdc::core::DisclosureLabel::bottom();
        for part in fdc::core::dissect::dissect(&q) {
            let relation = part.atoms()[0].relation;
            let mut mask = 0u64;
            for (_, view) in registry.iter() {
                if view.relation == relation && rewritable_from_single(&part, &view.query) {
                    mask |= 1 << view.bit;
                }
            }
            expected.push(fdc::core::AtomLabel::new(relation, mask));
        }
        prop_assert_eq!(a, expected);
    }

    #[test]
    fn label_comparison_is_a_preorder_compatible_with_combination(
        q1 in query_strategy(),
        q2 in query_strategy(),
    ) {
        let registry = paper_registry();
        let labeler = BitVectorLabeler::new(registry);
        let l1 = labeler.label_query(&q1);
        let l2 = labeler.label_query(&q2);
        // Reflexivity.
        prop_assert!(l1.leq(&l1));
        // The combination is an upper bound of both.
        let combined = l1.combine(&l2);
        prop_assert!(l1.leq(&combined));
        prop_assert!(l2.leq(&combined));
        // Combination is commutative and idempotent w.r.t. the order.
        let combined_rev = l2.combine(&l1);
        prop_assert!(combined.leq(&combined_rev));
        prop_assert!(combined_rev.leq(&combined));
        prop_assert!(combined.combine(&l1).leq(&combined));
    }

    #[test]
    fn folding_preserves_query_answers(q in query_strategy(), db in database_strategy()) {
        // The symbolic claim (fold(q) ≡ q) validated against the executable
        // semantics: both queries return exactly the same answers on every
        // randomly generated instance.
        let folded = fold(&q);
        prop_assert!(equivalent_same_space(&folded, &q));
        prop_assert_eq!(evaluate(&folded, &db), evaluate(&q, &db));
    }

    #[test]
    fn boolean_containment_is_sound_wrt_evaluation(
        q1 in query_strategy(),
        q2 in query_strategy(),
        db in database_strategy(),
    ) {
        // For boolean queries, `q1 ⊆ q2` means satisfiability of q1 implies
        // satisfiability of q2 on every database.
        if q1.is_boolean() && q2.is_boolean() && contained_in(&q1, &q2) && satisfiable(&q1, &db) {
            prop_assert!(satisfiable(&q2, &db),
                "containment claimed but answers do not transfer");
        }
    }

    #[test]
    fn equivalent_boolean_queries_agree_on_satisfiability(
        a in single_atom_strategy(),
        b in single_atom_strategy(),
        db in database_strategy(),
    ) {
        if a.is_boolean() && b.is_boolean() && equivalent(&a, &b) {
            prop_assert_eq!(satisfiable(&a, &db), satisfiable(&b, &db));
        }
    }

    #[test]
    fn packed_labels_compare_identically_to_unpacked_ones(q1 in query_strategy(), q2 in query_strategy()) {
        let registry = paper_registry();
        let labeler = BitVectorLabeler::new(registry);
        let l1 = labeler.label_query(&q1);
        let l2 = labeler.label_query(&q2);
        for a in l1.atoms() {
            for b in l2.atoms() {
                prop_assert_eq!(a.leq(b), a.pack().leq(b.pack()));
            }
        }
    }
}
