//! Overlay-merge equivalence: a pooled multi-lane snapshot run, merged
//! back at retirement, must be indistinguishable from a sequential
//! shared-table run.
//!
//! The property quantifies over seeded ecosystem workloads, deduped to
//! distinct canonical queries (the form the service's admission path
//! actually pools — duplicates are fanned out from the first slot, never
//! re-labeled).  The pooled side labels through a
//! [`LabelerSnapshot`](fdc::core::LabelerSnapshot) with one private
//! overlay lane per worker on an explicit [`WorkerPool`]; the sequential
//! side labels the same queries straight through a fresh labeler's shared
//! striped tables.  Asserted exactly:
//!
//! * **labels** — every packed label equal, in input order;
//! * **decisions** — the labels drive two identical sharded policy
//!   stores to the same decisions and totals (pooled `submit_batch_on`
//!   vs sequential `submit_packed`);
//! * **accounting** — cumulative query-plane counters (hits, misses,
//!   entries, refreshes) equal; on the atom plane the *lookup count* is
//!   conserved (`atom_hits + atom_misses` equal — lanes can shift the
//!   split, because a lane never sees a sibling's concurrently derived
//!   atom, but never the amount of work probed) and the merged table is
//!   the sequential table (`atom_entries` equal: the retirement merge
//!   absorbs duplicate derivations);
//! * **merged tables serve** — after retirement a full relabel of the
//!   batch is pure query-cache hits on both sides.

use std::collections::HashSet;
use std::sync::Arc;

use fdc::core::{CachedLabeler, PackedLabel, WorkerPool};
use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use fdc::policy::{PrincipalId, ShardedPolicyStore};
use proptest::prelude::*;

const WORKERS: usize = 4;
const PRINCIPALS: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pooled_lane_runs_match_sequential_shared_table_runs(seed in 0u64..1_000_000) {
        let eco = Ecosystem::new();
        let mut workload = eco.workload(WorkloadConfig::stress(3, seed));
        let raw = workload.batch(160);
        let parallel = CachedLabeler::new(eco.views.clone());
        let mut seen = HashSet::new();
        let queries: Vec<_> = raw
            .into_iter()
            .filter(|q| seen.insert(parallel.intern(q)))
            .collect();

        // Pooled run: chunks fanned out on an explicit pool, each worker
        // writing cache work into its private overlay lane, all lanes
        // merged back into the shared tables at retirement.
        let pool = WorkerPool::new(WORKERS);
        let snapshot = Arc::new(parallel.snapshot_with_lanes(pool.workers() + 1));
        let chunk_len = queries.len().div_ceil(pool.workers() * 4).max(1);
        let chunks: Vec<Vec<_>> = queries.chunks(chunk_len).map(<[_]>::to_vec).collect();
        let shared = Arc::clone(&snapshot);
        let packed: Vec<Vec<PackedLabel>> = pool
            .run(chunks, move |chunk, ctx| {
                let lane = shared.lane_for(ctx);
                chunk
                    .iter()
                    .map(|q| shared.label_packed_in(lane, q))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        parallel.retire_snapshot(&snapshot);

        // Sequential reference: the same distinct queries, in order,
        // straight through a fresh labeler's shared tables.
        let sequential = CachedLabeler::new(eco.views.clone());
        let expected: Vec<Vec<PackedLabel>> =
            queries.iter().map(|q| sequential.label_packed(q)).collect();
        prop_assert_eq!(&packed, &expected);

        // Exact cumulative accounting (counters folded at retirement).
        let par = parallel.stats();
        let seq = sequential.stats();
        prop_assert_eq!(par.hits, seq.hits);
        prop_assert_eq!(par.misses, seq.misses);
        prop_assert_eq!(par.entries, seq.entries);
        prop_assert_eq!(par.query_refreshes, seq.query_refreshes);
        prop_assert_eq!(par.atom_refreshes, seq.atom_refreshes);
        prop_assert_eq!(
            par.atom_hits + par.atom_misses,
            seq.atom_hits + seq.atom_misses,
            "atom lookups are conserved across lane assignments"
        );
        prop_assert_eq!(
            par.atom_entries, seq.atom_entries,
            "the merge must absorb duplicate lane derivations"
        );

        // The merged tables serve: a full relabel of the batch is pure
        // query-cache hits on both sides, with identical labels.
        for q in &queries {
            prop_assert_eq!(parallel.label_packed(q), sequential.label_packed(q));
        }
        let par_warm = parallel.stats();
        let seq_warm = sequential.stats();
        prop_assert_eq!(par_warm.misses, par.misses, "post-merge relabel must not miss");
        prop_assert_eq!(par_warm.hits, par.hits + queries.len() as u64);
        prop_assert_eq!(seq_warm.misses, seq.misses);
        prop_assert_eq!(seq_warm.hits, seq.hits + queries.len() as u64);

        // Decisions: the two label streams drive identical sharded
        // stores — pooled per-shard fan-out vs a sequential loop — to
        // the same decisions and totals.
        let mut policies = eco.policy_generator(PolicyGeneratorConfig {
            template_pool: 0,
            seed,
            ..PolicyGeneratorConfig::default()
        });
        let mut pooled_store = ShardedPolicyStore::new(3);
        let mut seq_store = ShardedPolicyStore::new(3);
        for _ in 0..PRINCIPALS {
            let policy = policies.next_policy(&eco.views);
            pooled_store.register(policy.clone());
            seq_store.register(policy);
        }
        let batch: Vec<(PrincipalId, &[PackedLabel])> = packed
            .iter()
            .enumerate()
            .map(|(i, label)| (PrincipalId((i % PRINCIPALS) as u32), label.as_slice()))
            .collect();
        let pooled_decisions = pooled_store.submit_batch_on(&pool, &batch);
        let seq_decisions: Vec<_> = expected
            .iter()
            .enumerate()
            .map(|(i, label)| {
                seq_store.submit_packed(PrincipalId((i % PRINCIPALS) as u32), label)
            })
            .collect();
        prop_assert_eq!(pooled_decisions, seq_decisions);
        prop_assert_eq!(pooled_store.totals(), seq_store.totals());
    }
}
