//! Property test: the epoch-snapshot pipelined executor is extensionally
//! equal to the batch executor and to a from-scratch rebuild.
//!
//! Random mixed churn streams — plain and **interned** admissions
//! (submits and checks), `GrantView` / `RevokeView` / `AddSecurityView`
//! mutations, and deliberately invalid operations (ghost principals,
//! never-minted query ids, unknown and duplicate view names) — are served
//! by [`DisclosureService::run_pipelined`] and compared against:
//!
//! * the same stream through [`DisclosureService::run_batch`] on an
//!   identically built service: **every response**, the totals, each
//!   principal's consistency word and counters, the final registry epochs,
//!   and — on the single-shard (deterministic) configuration — the
//!   **cumulative [`CacheStats`]**, shard for shard of the cache life cycle
//!   (the pipelined snapshots publish their overlay work back on
//!   retirement, so nothing the batch executor would have cached is lost);
//! * a **from-scratch rebuild** from the final registry and final
//!   policies: probe labels (against a fresh [`BitVectorLabeler`]) and a
//!   shared post-stream submit sequence (decisions, consistency words,
//!   counters).
//!
//! A multi-shard pipelined service runs the same stream too — built with
//! `workers: 4`, it exercises the full pooled executor (persistent worker
//! pool, chunk stealing, epoch-based snapshot reclamation) whatever the
//! host's core count; its counters are racy by design, but responses and
//! state must still agree exactly.  A fourth, single-shard service with
//! the same worker width covers the pooled labeling plane over the
//! in-place decision fast path.

use fdc::core::{BitVectorLabeler, CacheStats, QueryLabeler, SecurityViews};
use fdc::cq::intern::QueryId;
use fdc::cq::parser::parse_query;
use fdc::cq::ConjunctiveQuery;
use fdc::policy::{PolicyPartition, PrincipalId, SecurityPolicy};
use fdc::service::{DisclosureService, Operation, Response, ServiceConfig};
use proptest::prelude::*;

/// Candidate view definitions a stream may add online, with fixed names so
/// repeated additions exercise the duplicate-name rejection path.
const CANDIDATE_VIEWS: [(&str, &str); 6] = [
    ("A0", "A0(x) :- Meetings(x, y)"),
    ("A1", "A1(x, y) :- Meetings(x, y)"),
    ("A2", "A2(y) :- Meetings(x, y)"),
    ("A3", "A3(x, y) :- Contacts(x, y, z)"),
    ("A4", "A4(z) :- Contacts(x, y, z)"),
    ("A5", "A5(x) :- Meetings(x, 'Cathy')"),
];

/// View names grants/revokes may target: the three initial views, the
/// candidates (rejected while not yet added) and one never-registered name.
const GRANTABLE: [&str; 10] = [
    "V1", "V2", "V3", "A0", "A1", "A2", "A3", "A4", "A5", "ghost",
];

/// Query shapes used for admissions and probes.
const PROBES: [&str; 8] = [
    "Q(x) :- Meetings(x, y)",
    "Q(x, y) :- Meetings(x, y)",
    "Q(y) :- Meetings(x, y)",
    "Q(x) :- Meetings(x, 'Cathy')",
    "Q(x, y, z) :- Contacts(x, y, z)",
    "Q(z) :- Contacts(x, y, z)",
    "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
    "Q() :- Meetings(x, x)",
];

const NUM_PRINCIPALS: usize = 4;

fn build_service(registry: &SecurityViews, num_shards: usize, workers: usize) -> DisclosureService {
    let mut service = DisclosureService::new(
        registry.clone(),
        ServiceConfig {
            num_shards,
            workers,
            ..ServiceConfig::default()
        },
    );
    let v1 = registry.id_by_name("V1").unwrap();
    let v2 = registry.id_by_name("V2").unwrap();
    let v3 = registry.id_by_name("V3").unwrap();
    for i in 0..NUM_PRINCIPALS {
        let policy = if i % 2 == 0 {
            SecurityPolicy::chinese_wall([
                PolicyPartition::from_views("meetings", registry, [v1, v2]),
                PolicyPartition::from_views("contacts", registry, [v3]),
            ])
        } else {
            SecurityPolicy::stateless(PolicyPartition::from_views("times", registry, [v2]))
        };
        service.register_principal(policy);
    }
    service
}

/// Interns the probe pool into a service, in pool order — every service of
/// a comparison interns the same pool, so the dense ids line up across
/// their (independent) interners.
fn intern_pool(service: &DisclosureService, catalog: &fdc::cq::Catalog) -> Vec<QueryId> {
    PROBES
        .iter()
        .map(|text| service.intern(&parse_query(catalog, text).unwrap()))
        .collect()
}

/// Expands one generated step into an operation.  `kind` selects the shape;
/// `a` / `b` index the step's choice pools, with out-of-range principals,
/// never-minted ids and not-yet-registered views deliberately reachable.
fn step_op(
    catalog: &fdc::cq::Catalog,
    pool: &[QueryId],
    kind: u8,
    a: usize,
    b: usize,
) -> Operation {
    let principal = PrincipalId((a % (NUM_PRINCIPALS + 1)) as u32);
    match kind {
        0 => Operation::Submit {
            principal,
            query: parse_query(catalog, PROBES[b % PROBES.len()]).unwrap(),
        },
        1 => Operation::Check {
            principal,
            query: parse_query(catalog, PROBES[b % PROBES.len()]).unwrap(),
        },
        2 => Operation::SubmitInterned {
            principal,
            query: pool[b % pool.len()],
        },
        3 => Operation::CheckInterned {
            principal,
            query: if b.is_multiple_of(5) {
                // A never-minted id: rejected at its stream position.
                QueryId(u32::MAX)
            } else {
                pool[b % pool.len()]
            },
        },
        4 => Operation::GrantView {
            principal,
            view: GRANTABLE[b % GRANTABLE.len()].to_owned(),
        },
        5 => Operation::RevokeView {
            principal,
            view: GRANTABLE[b % GRANTABLE.len()].to_owned(),
        },
        _ => {
            let (name, text) = CANDIDATE_VIEWS[b % CANDIDATE_VIEWS.len()];
            Operation::AddSecurityView {
                name: name.to_owned(),
                query: parse_query(catalog, text).unwrap(),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pipelined_equals_batch_and_rebuild(
        steps in proptest::collection::vec((0u8..7, 0usize..16, 0usize..16), 1..48)
    ) {
        let registry = SecurityViews::paper_example();
        let catalog = registry.catalog().clone();

        // Identically built services; the pool interns to the same ids in
        // each because it is interned first and in the same order.  The
        // single-worker services take the deterministic sequential paths;
        // `sharded` and `pooled` force a four-worker pool so the pooled
        // executor (stealing, epoch reclamation) runs on any host.
        let mut batched = build_service(&registry, 1, 1);
        let mut pipelined = build_service(&registry, 1, 1);
        let mut sharded = build_service(&registry, 4, 4);
        let mut pooled = build_service(&registry, 1, 4);
        let pool = intern_pool(&batched, &catalog);
        prop_assert_eq!(&intern_pool(&pipelined, &catalog), &pool);
        prop_assert_eq!(&intern_pool(&sharded, &catalog), &pool);
        prop_assert_eq!(&intern_pool(&pooled, &catalog), &pool);

        let ops: Vec<Operation> = steps
            .iter()
            .map(|&(kind, a, b)| step_op(&catalog, &pool, kind, a, b))
            .collect();

        // 1. Responses: pipelined == batch == from-scratch sequential
        //    processing, on one shard and on many.
        let batch_responses = batched.run_batch(&ops);
        let pipelined_responses = pipelined.run_pipelined(&ops);
        prop_assert_eq!(&batch_responses, &pipelined_responses);
        prop_assert_eq!(&sharded.run_pipelined(&ops), &batch_responses);
        prop_assert_eq!(&pooled.run_pipelined(&ops), &batch_responses);
        let mut sequential = build_service(&registry, 1, 1);
        prop_assert_eq!(&intern_pool(&sequential, &catalog), &pool);
        let sequential_responses: Vec<Response> =
            ops.iter().map(|op| sequential.apply(op)).collect();
        prop_assert_eq!(&sequential_responses, &pipelined_responses);

        // 2. State: totals, consistency words, per-principal counters and
        //    service counters all agree — against the batch executor and
        //    against the from-scratch sequential baseline.
        prop_assert_eq!(batched.totals(), pipelined.totals());
        prop_assert_eq!(batched.totals(), sharded.totals());
        prop_assert_eq!(batched.totals(), pooled.totals());
        prop_assert_eq!(sequential.totals(), pipelined.totals());
        prop_assert_eq!(batched.stats(), pipelined.stats());
        prop_assert_eq!(batched.stats(), sharded.stats());
        prop_assert_eq!(batched.stats(), pooled.stats());
        prop_assert_eq!(sequential.stats(), pipelined.stats());
        for i in 0..NUM_PRINCIPALS {
            let p = PrincipalId(i as u32);
            prop_assert_eq!(
                batched.store().consistency_bits(p),
                pipelined.store().consistency_bits(p)
            );
            prop_assert_eq!(
                batched.store().consistency_bits(p),
                sharded.store().consistency_bits(p)
            );
            prop_assert_eq!(
                batched.store().consistency_bits(p),
                pooled.store().consistency_bits(p)
            );
            prop_assert_eq!(
                sequential.store().consistency_bits(p),
                pipelined.store().consistency_bits(p)
            );
            prop_assert_eq!(batched.store().stats(p), pipelined.store().stats(p));
            prop_assert_eq!(sequential.store().stats(p), pipelined.store().stats(p));
        }

        // 3. Cumulative cache stats: the single-shard executors label
        //    sequentially in stream order over snapshot-published tables,
        //    so hit/miss/refresh/entry accounting matches exactly — the
        //    pipelined snapshots lose nothing at retirement.  The one
        //    executor-dependent column is `batch_dedup_hits`: the batch
        //    executor dedups duplicate admissions within a run while the
        //    pipelined and sequential executors see different (or no)
        //    batch boundaries, so it is normalized to zero on every side
        //    before comparing — dedup hits are also counted as plain
        //    hits, which keeps all other columns in exact agreement.
        let normalized = |mut stats: CacheStats| {
            stats.batch_dedup_hits = 0;
            stats
        };
        let pipelined_cache: CacheStats = normalized(pipelined.labeler().stats());
        prop_assert_eq!(normalized(batched.labeler().stats()), pipelined_cache);
        prop_assert_eq!(normalized(sequential.labeler().stats()), pipelined_cache);

        // 4. Labels: the pipelined service's post-stream cache agrees with
        //    labelers built fresh from the final registry — the rebuild
        //    baseline for the label plane.
        let final_registry = pipelined.registry().clone();
        for r in 0..catalog.len() {
            let rel = fdc::cq::RelId(r as u32);
            prop_assert_eq!(
                batched.registry().epoch(rel),
                pipelined.registry().epoch(rel)
            );
        }
        let fresh_bitvec = BitVectorLabeler::new(final_registry.clone());
        for text in PROBES {
            let query: ConjunctiveQuery = parse_query(&catalog, text).unwrap();
            prop_assert_eq!(
                pipelined.labeler().label_query(&query),
                fresh_bitvec.label_query(&query),
                "label diverged on {}",
                text
            );
        }

        // 5. Rebuild of the decision plane: a fresh service from the final
        //    registry and final policies decides a shared *post-stream*
        //    submit sequence exactly like each churned service — their
        //    consistency words evolved identically, so the same future is
        //    admitted (compared between the two churned executors, whose
        //    whole state must coincide; the fresh service provides the
        //    labels' ground truth through its own pipeline).
        let mut rebuilt = DisclosureService::with_defaults(final_registry.clone());
        for i in 0..NUM_PRINCIPALS {
            let p = PrincipalId(i as u32);
            rebuilt.register_principal(pipelined.store().policy(p).clone());
        }
        for (i, text) in PROBES.iter().cycle().take(16).enumerate() {
            let p = PrincipalId((i % NUM_PRINCIPALS) as u32);
            let query = parse_query(&catalog, text).unwrap();
            let batch_decision = batched.submit(p, &query).unwrap();
            let pipe_decision = pipelined.submit(p, &query).unwrap();
            prop_assert_eq!(batch_decision, pipe_decision, "future diverged on {}", text);
            // The rebuilt service labels through a cold cache over the same
            // final registry; its packed labels must match the churned
            // service's for every probe (the decision itself depends on the
            // churned history, which the rebuilt store has not lived).
            prop_assert_eq!(
                rebuilt.labeler().label_packed(&query),
                pipelined.labeler().label_packed(&query),
                "rebuilt label diverged on {}",
                text
            );
        }
    }
}
