//! Property test: the four labeler variants are observationally identical.
//!
//! The paper's Figure 5 variants (`BaselineLabeler`, `HashPartitionedLabeler`,
//! `BitVectorLabeler`) and the caching labeler added on top (`CachedLabeler`
//! — sequential, parallel batch, and the fully interned `label_interned` /
//! `label_queries_interned` paths over pre-interned `QueryId`s) are
//! different *engineering* of the same function; this test drives all of
//! them over randomly generated workloads — both the structural query
//! generator of the property suite and the paper's Section 7.2 ecosystem
//! generator — and asserts label equality everywhere.

use fdc::core::{
    label_queries_parallel, BaselineLabeler, BitVectorLabeler, CachedLabeler,
    HashPartitionedLabeler, QueryLabeler, SecurityViews,
};
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ecosystem workloads: every variant labels every query identically,
    /// for every workload width and many seeds.
    #[test]
    fn all_variants_agree_on_ecosystem_workloads(
        seed in 0u64..1_000_000,
        max_subqueries in 1usize..5,
    ) {
        let eco = Ecosystem::new();
        let mut generator = eco.workload(WorkloadConfig::stress(max_subqueries, seed));
        let queries = generator.batch(20);
        for query in &queries {
            let reference = eco.baseline.label_query(query);
            prop_assert_eq!(&reference, &eco.hashed.label_query(query));
            prop_assert_eq!(&reference, &eco.bitvec.label_query(query));
            // Twice through the cached labeler: once cold, once from cache.
            prop_assert_eq!(&reference, &eco.cached.label_query(query));
            prop_assert_eq!(&reference, &eco.cached.label_query(query));
            // The interned path — pre-interned id straight into the slot
            // cache — produces the identical label, packed and unpacked.
            let id = eco.cached.intern(query);
            prop_assert_eq!(&reference, &eco.cached.label_interned(id));
            prop_assert_eq!(eco.cached.label_packed_interned(id), reference.pack());
        }
        // The batch paths agree with the sequential fold, on every variant —
        // including the fully interned batch entry point.
        let cumulative = eco.baseline.label_queries(&queries);
        prop_assert_eq!(&cumulative, &eco.hashed.label_queries(&queries));
        prop_assert_eq!(&cumulative, &eco.cached.label_queries_batch(&queries));
        let ids: Vec<_> = queries.iter().map(|q| eco.cached.intern(q)).collect();
        prop_assert_eq!(&cumulative, &eco.cached.label_queries_interned(&ids));
        prop_assert_eq!(
            eco.cached.label_batch_interned(&ids),
            queries.iter().map(|q| eco.baseline.label_query(q)).collect::<Vec<_>>()
        );
        for threads in [1usize, 2, 7] {
            prop_assert_eq!(
                &cumulative,
                &label_queries_parallel(&eco.bitvec, &queries, threads)
            );
            prop_assert_eq!(
                &cumulative,
                &label_queries_parallel(&eco.cached, &queries, threads)
            );
        }
        // Per-query parallel labels line up positionally.
        prop_assert_eq!(eco.label_batch_parallel(&queries), eco.label_batch(&queries));
    }

    /// Paper-schema registries: agreement also holds for registries with
    /// selection and diagonal views, where the bit-vector fast path must
    /// fall back to the general rewriting check.
    #[test]
    fn all_variants_agree_on_tricky_view_registries(seed in 0u64..1_000_000) {
        let registry = tricky_registry();
        let baseline = BaselineLabeler::new(registry.clone());
        let hashed = HashPartitionedLabeler::new(registry.clone());
        let bitvec = BitVectorLabeler::new(registry.clone());
        let cached = CachedLabeler::new(registry.clone());
        let catalog = registry.catalog().clone();

        // A tiny deterministic query generator over the paper schema,
        // exercising constants, repeated variables and joins.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move |bound: usize| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound as u64) as usize
        };
        let shapes = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q() :- Meetings(z, z)",
            "Q(x) :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x, z) :- Meetings(x, y), Meetings(y, z)",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q(y) :- Contacts(y, w, 'Manager'), Meetings(t, y)",
            "Q(a, b, e) :- Contacts(a, b, e)",
        ];
        for _ in 0..8 {
            let text = shapes[next(shapes.len())];
            let query = fdc::cq::parser::parse_query(&catalog, text).unwrap();
            let reference = baseline.label_query(&query);
            prop_assert_eq!(&reference, &hashed.label_query(&query), "hashed on {}", text);
            prop_assert_eq!(&reference, &bitvec.label_query(&query), "bitvec on {}", text);
            prop_assert_eq!(&reference, &cached.label_query(&query), "cached on {}", text);
            // The selection and diagonal views force the interned per-atom
            // step through its rewriting fallback as well.
            let id = cached.intern(&query);
            prop_assert_eq!(&reference, &cached.label_interned(id), "interned on {}", text);
        }
    }
}

/// Structural edge cases for the intern-time shape classification: heavy
/// self-joins (one relation, many atoms) take the semi-join fast path in
/// labeling's rewriting checks, and deliberately cyclic bodies must take
/// the backtracking fallback — with identical labels either way.
#[test]
fn all_variants_agree_on_self_join_heavy_and_cyclic_shapes() {
    let registry = tricky_registry();
    let catalog = fdc::cq::Catalog::paper_example();
    let baseline = BaselineLabeler::new(registry.clone());
    let hashed = HashPartitionedLabeler::new(registry.clone());
    let bitvec = BitVectorLabeler::new(registry.clone());
    let cached = CachedLabeler::new(registry);
    let shapes = [
        // A broom: three self-join chains off one distinguished root.
        "Q(x) :- Meetings(x, a), Meetings(a, b), Meetings(x, c), Meetings(c, d), \
         Meetings(x, e), Meetings(e, f)",
        // A long path, the easy acyclic case.
        "Q(x) :- Meetings(x, y), Meetings(y, z), Meetings(z, w), Meetings(w, u)",
        // The triangle and the square: GYO classifies these cyclic, so
        // every homomorphism question falls back to backtracking.
        "Q() :- Meetings(x, y), Meetings(y, z), Meetings(z, x)",
        "Q(x) :- Meetings(x, y), Meetings(y, z), Meetings(z, w), Meetings(w, x)",
    ];
    for text in shapes {
        let query = fdc::cq::parser::parse_query(&catalog, text).unwrap();
        let reference = baseline.label_query(&query);
        assert_eq!(reference, hashed.label_query(&query), "hashed on {text}");
        assert_eq!(reference, bitvec.label_query(&query), "bitvec on {text}");
        assert_eq!(reference, cached.label_query(&query), "cached on {text}");
        let id = cached.intern(&query);
        assert_eq!(reference, cached.label_interned(id), "interned on {text}");
    }
}

/// The paper's registry extended with non-projection views (a selection and
/// a diagonal), so that every labeler code path is exercised.
fn tricky_registry() -> SecurityViews {
    let catalog = fdc::cq::Catalog::paper_example();
    let mut registry = SecurityViews::new(&catalog);
    registry
        .add_program(
            r"
            V1(x, y) :- Meetings(x, y)
            V2(x)    :- Meetings(x, y)
            V3(x, y, z) :- Contacts(x, y, z)
            Vc(x)    :- Meetings(x, 'Cathy')
            Vd(x)    :- Meetings(x, x)
            V6(x, y) :- Contacts(x, y, z)
            ",
        )
        .unwrap();
    registry
}
