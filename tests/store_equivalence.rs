//! Property-based equivalence of every policy-enforcement surface.
//!
//! Random multi-principal workloads — random policies (including empty and
//! single-partition ones) over the paper's security views, random disclosure
//! labels, random interleavings of submits and pure checks — are driven
//! simultaneously through:
//!
//! * a flat [`PolicyStore`] on unpacked labels,
//! * a second [`PolicyStore`] on the packed 64-bit path,
//! * a [`ShardedPolicyStore`] on unpacked labels,
//! * a second [`ShardedPolicyStore`] on the packed path,
//! * and one [`ReferenceMonitor`] per principal (the single-principal
//!   specification the stores generalize).
//!
//! Every decision, every consistency bit vector and every counter must agree
//! at every step; at the end, a parallel sharded batch replay of the same
//! submissions must reproduce the same decisions and state.

use fdc::core::{AtomLabel, DisclosureLabel, PackedLabel, SecurityViews, WorkerPool};
use fdc::cq::RelId;
use fdc::policy::{
    Decision, PolicyPartition, PolicyStore, PrincipalId, ReferenceMonitor, SecurityPolicy,
    ShardedPolicyStore,
};
use proptest::prelude::*;

/// Strategy: one random policy as partition view-index lists (0..=3
/// partitions of 1..=6 views each, indices into the registry's view list).
/// An empty outer vec is the empty policy, which refuses everything but ⊥.
fn policy_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..37, 1..=6), 0..=3)
}

/// Strategy: one random disclosure label as raw (relation, mask) atoms.
/// Relation ids cover the 8-relation Facebook-like space plus one id (8)
/// never covered by any policy; masks span the view-bit range the paper's
/// registries use (`User` has 16 views, so up to 16 bits).
fn label_strategy() -> impl Strategy<Value = Vec<(u32, u64)>> {
    proptest::collection::vec((0u32..9, 1u64..0x1_0000), 1..=3)
}

/// Strategy: one workload op — a principal index, a label, and whether the
/// op is a stateful submit (vs a pure check).
fn op_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u64)>, bool)> {
    (
        0usize..64,
        label_strategy(),
        (0u8..4).prop_map(|b| b != 0), // submit 3/4 of the time
    )
}

fn build_policy(registry: &SecurityViews, raw: &[Vec<usize>]) -> SecurityPolicy {
    let views: Vec<_> = registry.iter().map(|(id, _)| id).collect();
    let mut policy = SecurityPolicy::new();
    for (p, indices) in raw.iter().enumerate() {
        let mut partition = PolicyPartition::new(format!("partition-{p}"));
        for &i in indices {
            partition.permit(registry, views[i % views.len()]);
        }
        policy.push(partition);
    }
    policy
}

fn build_label(raw: &[(u32, u64)]) -> DisclosureLabel {
    DisclosureLabel::from_atoms(
        raw.iter()
            .map(|&(rel, mask)| AtomLabel::new(RelId(rel), mask))
            .collect(),
    )
}

fn registry() -> SecurityViews {
    // The ecosystem's 37-view registry: 16 views on User, 3 on each of the
    // other seven relations — enough mask diversity for meaningful walls.
    fdc::ecosystem::Ecosystem::new().views
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_enforcement_surfaces_agree(
        policies in proptest::collection::vec(policy_strategy(), 1..=10),
        ops in proptest::collection::vec(op_strategy(), 1..=60),
        num_shards in 1usize..6,
    ) {
        let registry = registry();
        let mut flat = PolicyStore::new();
        let mut flat_packed = PolicyStore::new();
        let mut sharded = ShardedPolicyStore::new(num_shards);
        let mut sharded_packed = ShardedPolicyStore::new(num_shards);
        let mut replay = ShardedPolicyStore::new(num_shards);
        let mut monitors = Vec::new();
        for raw in &policies {
            let policy = build_policy(&registry, raw);
            flat.register(policy.clone());
            flat_packed.register(policy.clone());
            sharded.register(policy.clone());
            sharded_packed.register(policy.clone());
            replay.register(policy.clone());
            monitors.push(ReferenceMonitor::new(policy));
        }

        let mut submissions: Vec<(PrincipalId, Vec<PackedLabel>)> = Vec::new();
        let mut expected_decisions: Vec<Decision> = Vec::new();
        for (who, raw_label, is_submit) in &ops {
            let p = PrincipalId((who % policies.len()) as u32);
            let label = build_label(raw_label);
            let packed = label.pack();
            let monitor = &mut monitors[p.index()];
            if *is_submit {
                let expected = monitor.submit(&label);
                prop_assert_eq!(flat.submit(p, &label), expected);
                prop_assert_eq!(flat_packed.submit_packed(p, &packed), expected);
                prop_assert_eq!(sharded.submit(p, &label), expected);
                prop_assert_eq!(sharded_packed.submit_packed(p, &packed), expected);
                submissions.push((p, packed));
                expected_decisions.push(expected);
            } else {
                let expected = monitor.check(&label);
                prop_assert_eq!(flat.check(p, &label), expected);
                prop_assert_eq!(flat_packed.check_packed(p, &packed), expected);
                prop_assert_eq!(sharded.check(p, &label), expected);
                prop_assert_eq!(sharded_packed.check_packed(p, &packed), expected);
            }
            // Consistency bits agree after every op, mutating or not.
            let bits = monitor.consistency_bits();
            prop_assert_eq!(flat.consistency_bits(p), bits);
            prop_assert_eq!(flat_packed.consistency_bits(p), bits);
            prop_assert_eq!(sharded.consistency_bits(p), bits);
            prop_assert_eq!(sharded_packed.consistency_bits(p), bits);
        }

        // Per-principal counters and O(1) totals match the monitors.
        let mut answered = 0u64;
        let mut refused = 0u64;
        for (i, monitor) in monitors.iter().enumerate() {
            let p = PrincipalId(i as u32);
            let expected = (monitor.answered(), monitor.refused());
            prop_assert_eq!(flat.stats(p), expected);
            prop_assert_eq!(flat_packed.stats(p), expected);
            prop_assert_eq!(sharded.stats(p), expected);
            prop_assert_eq!(sharded_packed.stats(p), expected);
            answered += expected.0;
            refused += expected.1;
        }
        prop_assert_eq!(flat.totals(), (answered, refused));
        prop_assert_eq!(sharded.totals(), (answered, refused));

        // Replaying every submission as one parallel sharded batch yields
        // the same decisions and the same final state.
        let batch: Vec<(PrincipalId, &[PackedLabel])> = submissions
            .iter()
            .map(|(p, packed)| (*p, packed.as_slice()))
            .collect();
        let pool = WorkerPool::new(num_shards);
        let decisions = replay.submit_batch_on(&pool, &batch);
        prop_assert_eq!(&decisions, &expected_decisions);
        prop_assert_eq!(replay.totals(), (answered, refused));
        for (i, monitor) in monitors.iter().enumerate() {
            let p = PrincipalId(i as u32);
            prop_assert_eq!(replay.consistency_bits(p), monitor.consistency_bits());
        }
    }

    #[test]
    fn interning_never_changes_decisions(
        raw_policy in policy_strategy(),
        raw_labels in proptest::collection::vec(label_strategy(), 1..=20),
    ) {
        // Many principals sharing one interned policy must each behave like
        // an independent monitor over that policy.
        let registry = registry();
        let policy = build_policy(&registry, &raw_policy);
        let mut store = PolicyStore::new();
        let principals: Vec<PrincipalId> =
            (0..8).map(|_| store.register(policy.clone())).collect();
        prop_assert_eq!(store.unique_policies(), 1);
        let mut monitor = ReferenceMonitor::new(policy);
        // Submit the same sequence to every principal: identical walks.
        for raw in &raw_labels {
            let label = build_label(raw);
            let expected = monitor.submit(&label);
            for &p in &principals {
                prop_assert_eq!(store.submit(p, &label), expected);
                prop_assert_eq!(store.consistency_bits(p), monitor.consistency_bits());
            }
        }
    }
}

/// Regression for the seed's missing validation: registering a policy with
/// more than `MAX_PARTITIONS` partitions must be rejected at registration
/// time (the seed overflowed `u64::MAX >> (64 - n)` instead).
#[test]
fn oversized_policies_are_rejected_by_every_surface() {
    let registry = registry();
    let views: Vec<_> = registry.iter().map(|(id, _)| id).collect();
    let mut policy = SecurityPolicy::new();
    for i in 0..=fdc::policy::MAX_PARTITIONS {
        policy.push(PolicyPartition::from_views(
            format!("p{i}"),
            &registry,
            [views[0]],
        ));
    }
    let for_store = policy.clone();
    assert!(std::panic::catch_unwind(move || PolicyStore::new().register(for_store)).is_err());
    let for_sharded = policy.clone();
    assert!(
        std::panic::catch_unwind(move || ShardedPolicyStore::new(2).register(for_sharded)).is_err()
    );
    assert!(std::panic::catch_unwind(move || ReferenceMonitor::new(policy)).is_err());
    // Exactly MAX_PARTITIONS partitions remain valid.
    let mut at_limit = SecurityPolicy::new();
    for i in 0..fdc::policy::MAX_PARTITIONS {
        at_limit.push(PolicyPartition::from_views(
            format!("p{i}"),
            &registry,
            [views[0]],
        ));
    }
    let mut store = PolicyStore::new();
    let p = store.register(at_limit);
    assert_eq!(store.consistency_bits(p), u64::MAX);
}
