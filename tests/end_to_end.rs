//! End-to-end integration tests over the evaluation ecosystem: workload
//! generation → labeling → policy enforcement, checking the cross-cutting
//! invariants that hold across crate boundaries.

use fdc::core::QueryLabeler;
use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use fdc::policy::{PolicyPartition, PolicyStore, PrincipalId, ReferenceMonitor, SecurityPolicy};

#[test]
fn the_three_labelers_agree_across_a_large_stress_workload() {
    let eco = Ecosystem::new();
    let mut workload = eco.workload(WorkloadConfig::stress(5, 2024));
    for query in workload.batch(300) {
        let a = eco.baseline.label_query(&query);
        let b = eco.hashed.label_query(&query);
        let c = eco.bitvec.label_query(&query);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}

#[test]
fn labels_are_monotone_under_query_combination() {
    // Labeling a set of queries discloses at least as much as labeling any
    // of its members (axiom (c)/(d) of Definition 3.4, end to end).
    let eco = Ecosystem::new();
    let mut workload = eco.workload(WorkloadConfig::base(7));
    let queries = workload.batch(100);
    for chunk in queries.chunks(4) {
        let combined = eco.bitvec.label_queries(chunk);
        for q in chunk {
            let single = eco.bitvec.label_query(q);
            assert!(
                single.leq(&combined),
                "individual label must be below the cumulative label"
            );
        }
    }
}

#[test]
fn allowed_queries_are_exactly_those_below_the_partition() {
    // For stateless policies, the reference monitor's decision must coincide
    // with the declarative definition: answer Q iff label(Q) ⪯ W.
    let eco = Ecosystem::new();
    let mut workload = eco.workload(WorkloadConfig::base(99));
    let queries = workload.batch(200);

    // Permit everything about the User relation plus photo metadata.
    let permitted: Vec<_> = eco
        .views
        .iter()
        .filter(|(_, v)| {
            let name = &v.name;
            name.starts_with("user_") || name == "photo_meta" || name == "photo_presence"
        })
        .map(|(id, _)| id)
        .collect();
    let partition = PolicyPartition::from_views("user-and-photo-meta", &eco.views, permitted);
    let policy = SecurityPolicy::stateless(partition.clone());

    for query in &queries {
        let label = eco.label(query);
        let mut monitor = ReferenceMonitor::new(policy.clone());
        let decision = monitor.submit(&label);
        assert_eq!(
            decision.is_allow(),
            partition.allows(&label),
            "monitor and declarative check disagree on {query:?}"
        );
    }
}

#[test]
fn chinese_wall_commitments_are_sticky_and_consistent() {
    // Once a principal is committed to a subset of partitions, the set of
    // still-consistent partitions never grows.
    let eco = Ecosystem::new();
    let mut policies = eco.policy_generator(PolicyGeneratorConfig {
        max_partitions: 5,
        max_elements_per_partition: 15,
        template_pool: 0,
        seed: 31,
    });
    let mut workload = eco.workload(WorkloadConfig::base(13));
    for _ in 0..20 {
        let policy = policies.next_policy(&eco.views);
        let mut monitor = ReferenceMonitor::new(policy);
        let mut previous = monitor.consistency_bits();
        for query in workload.batch(30) {
            let label = eco.label(&query);
            let decision = monitor.submit(&label);
            let current = monitor.consistency_bits();
            // Bits only ever get cleared, and only on an allowed query.
            assert_eq!(current & !previous, 0, "consistency bits grew");
            if !decision.is_allow() {
                assert_eq!(current, previous, "a refused query changed the state");
            } else {
                assert_ne!(current, 0, "an allowed query left no consistent partition");
            }
            previous = current;
        }
    }
}

#[test]
fn cumulative_enforcement_never_exceeds_any_partition() {
    // Invariant of Section 6.2: at every point, the cumulative label of the
    // answered queries is below at least one policy partition.
    let eco = Ecosystem::new();
    let mut policies = eco.policy_generator(PolicyGeneratorConfig {
        max_partitions: 3,
        max_elements_per_partition: 12,
        template_pool: 0,
        seed: 5,
    });
    let policy = policies.next_policy(&eco.views);
    let mut monitor = ReferenceMonitor::new(policy.clone());
    let mut workload = eco.workload(WorkloadConfig::base(21));

    let mut cumulative = fdc::core::DisclosureLabel::bottom();
    for query in workload.batch(200) {
        let label = eco.label(&query);
        if monitor.submit(&label).is_allow() {
            cumulative.combine_in_place(&label);
            assert!(
                policy.partitions().iter().any(|p| p.allows(&cumulative)),
                "cumulative disclosure exceeded every partition"
            );
        }
    }
}

#[test]
fn the_policy_store_matches_per_principal_monitors() {
    // The multi-principal store must behave exactly like one monitor per
    // principal.
    let eco = Ecosystem::new();
    let mut policies = eco.policy_generator(PolicyGeneratorConfig {
        max_partitions: 5,
        max_elements_per_partition: 10,
        template_pool: 0,
        seed: 77,
    });
    let num_principals = 8;
    let per_principal: Vec<SecurityPolicy> = (0..num_principals)
        .map(|_| policies.next_policy(&eco.views))
        .collect();

    let mut store = PolicyStore::new();
    for p in &per_principal {
        store.register(p.clone());
    }
    let mut monitors: Vec<ReferenceMonitor> = per_principal
        .iter()
        .map(|p| ReferenceMonitor::new(p.clone()))
        .collect();

    let mut workload = eco.workload(WorkloadConfig::base(123));
    for (i, query) in workload.batch(400).iter().enumerate() {
        let label = eco.label(query);
        let principal = i % num_principals;
        let store_decision = store.submit(PrincipalId(principal as u32), &label);
        let monitor_decision = monitors[principal].submit(&label);
        assert_eq!(store_decision, monitor_decision);
    }
    let (answered, refused) = store.totals();
    let monitor_answered: u64 = monitors.iter().map(|m| m.answered()).sum();
    let monitor_refused: u64 = monitors.iter().map(|m| m.refused()).sum();
    assert_eq!(answered, monitor_answered);
    assert_eq!(refused, monitor_refused);
}

#[test]
fn case_study_and_ecosystem_compose_through_the_umbrella_crate() {
    // Smoke test that the whole public surface is wired together.
    let report = fdc::casestudy::review_documentation();
    assert_eq!(report.views_compared, 42);
    assert_eq!(report.discrepancies.len(), 6);

    let eco = Ecosystem::new();
    assert_eq!(eco.views.len(), 37);
    let auto = fdc::casestudy::autolabel::autolabel_report();
    assert!(auto.iter().all(|row| row.matches));
}
