//! Property test: the structural (semi-join) fast path is a pure fast path.
//!
//! Interning classifies every query's hypergraph with GYO reduction
//! (`fdc_cq::structure`): α-acyclic queries keep their join tree (ear
//! ordering) and whole-body homomorphism questions about them are answered
//! by a polynomial semi-join pass; cyclic queries fall back to the generic
//! backtracking search.  The dispatch claims to be *observationally
//! invisible* — the same verdict as the generic search on every input, for
//! every head policy.  This suite pins that claim over the adversarial
//! regimes where the two searches behave most differently:
//!
//! 1. **Self-join-heavy trees and brooms** over a single relation, where
//!    the generic search branches across every same-relation atom and the
//!    semi-join pass prunes by candidate retention.
//! 2. **Deliberately cyclic queries** (cycles of length ≥ 3), which GYO
//!    must classify as cyclic and route to the fallback.
//! 3. **The paper's ecosystem workloads**, the realistic mixed regime.
//!
//! Labels are pinned too: all four labeler variants must agree on the
//! structural pool, since labeling folds and rewriting checks run through
//! the same dispatcher.  The dispatch toggle is never flipped here — tests
//! run concurrently and the toggle is process-global; the generic twins
//! (`*_generic`) provide the baseline instead.

use std::fmt::Write as _;

use fdc::core::{
    BaselineLabeler, BitVectorLabeler, CachedLabeler, HashPartitionedLabeler, QueryLabeler,
    SecurityViews,
};
use fdc::cq::containment::{interned_contained_in, interned_contained_in_generic};
use fdc::cq::homomorphism::{
    interned_homomorphism_exists, interned_homomorphism_exists_generic, HeadPolicy,
};
use fdc::cq::intern::{QueryInterner, QueryRef};
use fdc::cq::parser::parse_query;
use fdc::cq::structure::ShapeClass;
use fdc::cq::{structure, Catalog, ConjunctiveQuery};
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use proptest::prelude::*;

/// The single-relation catalog every structural pool is built over.
fn edge_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .add_relation("Edge", &["src", "dst", "tag"])
        .expect("fresh catalog accepts the relation");
    catalog
}

/// A deterministic splitmix-style LCG so proptest seeds map to stable pools.
fn lcg(seed: u64) -> impl FnMut(usize) -> usize {
    let mut state = seed;
    move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    }
}

/// A random tree pattern: every atom hangs off an earlier variable, so the
/// hypergraph is α-acyclic by construction.
fn tree_query(catalog: &Catalog, atoms: usize, seed: u64) -> ConjunctiveQuery {
    let mut next = lcg(seed);
    let mut text = String::from("Q(v0) :- ");
    for i in 1..=atoms.max(1) {
        if i > 1 {
            text.push_str(", ");
        }
        let parent = next(i);
        let tag = next(2);
        write!(text, "Edge(v{parent}, v{i}, 'c{tag}')").expect("string write");
    }
    parse_query(catalog, &text).expect("generated tree parses")
}

/// A cycle of length `len ≥ 3`: GYO reduction finds no ear, so the query
/// must classify as cyclic.
fn cycle_query(catalog: &Catalog, len: usize) -> ConjunctiveQuery {
    let len = len.max(3);
    let mut text = String::from("Q(x0) :- ");
    for i in 0..len {
        if i > 0 {
            text.push_str(", ");
        }
        let from = i;
        let to = (i + 1) % len;
        write!(text, "Edge(x{from}, x{to}, 'c0')").expect("string write");
    }
    parse_query(catalog, &text).expect("generated cycle parses")
}

/// Asserts the dispatcher and the generic search agree on every ordered
/// pair of the pool — containment plus plain homomorphism existence under
/// both cross-query head policies — and on the Identity self-homomorphism.
fn assert_pairwise_agreement(refs: &[QueryRef<'_>]) {
    for &a in refs {
        for &b in refs {
            prop_assert_eq!(
                interned_contained_in(a, b),
                interned_contained_in_generic(a, b),
                "containment dispatch diverged from the generic search"
            );
            for policy in [HeadPolicy::DistinguishedToDistinguished, HeadPolicy::Free] {
                prop_assert_eq!(
                    interned_homomorphism_exists(a, b, policy),
                    interned_homomorphism_exists_generic(a, b, policy),
                    "homomorphism dispatch diverged under {:?}",
                    policy
                );
            }
        }
        // Identity is only meaningful within one variable space.
        prop_assert_eq!(
            interned_homomorphism_exists(a, a, HeadPolicy::Identity),
            interned_homomorphism_exists_generic(a, a, HeadPolicy::Identity),
            "identity self-homomorphism dispatch diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Self-join-heavy trees classify acyclic, carry an ear ordering, and
    /// the semi-join pass agrees with the generic search on every pair.
    #[test]
    fn trees_classify_acyclic_and_dispatch_agrees(
        seed in 0u64..1_000_000,
        atoms in 1usize..12,
    ) {
        let catalog = edge_catalog();
        let mut interner = QueryInterner::new();
        let ids: Vec<_> = (0..5)
            .map(|i| interner.intern(&tree_query(&catalog, atoms, seed + i)))
            .collect();
        for &id in &ids {
            prop_assert_eq!(interner.shape_class(id), ShapeClass::Acyclic);
            let ears = interner.ear_steps(id).expect("acyclic query keeps its ears");
            prop_assert_eq!(ears.len(), interner.resolve(id).atoms.len());
        }
        let refs: Vec<_> = ids.iter().map(|&id| interner.resolve(id)).collect();
        assert_pairwise_agreement(&refs);
    }

    /// Cycles classify cyclic (no ear ordering survives) and the fallback
    /// still agrees with the generic search — including on mixed
    /// cyclic-vs-acyclic pairs.
    #[test]
    fn cycles_classify_cyclic_and_fallback_agrees(
        seed in 0u64..1_000_000,
        len in 3usize..8,
    ) {
        let catalog = edge_catalog();
        let mut interner = QueryInterner::new();
        let cycle = interner.intern(&cycle_query(&catalog, len));
        prop_assert_eq!(interner.shape_class(cycle), ShapeClass::Cyclic);
        prop_assert!(interner.ear_steps(cycle).is_none());
        let tree = interner.intern(&tree_query(&catalog, len, seed));
        prop_assert_eq!(interner.shape_class(tree), ShapeClass::Acyclic);
        let refs = [interner.resolve(cycle), interner.resolve(tree)];
        assert_pairwise_agreement(&refs);
    }

    /// The paper's ecosystem workloads: the realistic mixed regime the
    /// labelers actually see must dispatch identically too.
    #[test]
    fn ecosystem_workloads_dispatch_agrees(
        seed in 0u64..1_000_000,
        max_subqueries in 1usize..5,
    ) {
        let eco = Ecosystem::new();
        let mut generator = eco.workload(WorkloadConfig::stress(max_subqueries, seed));
        let queries = generator.batch(8);
        let mut interner = QueryInterner::new();
        let ids: Vec<_> = queries.iter().map(|q| interner.intern(q)).collect();
        let refs: Vec<_> = ids.iter().map(|&id| interner.resolve(id)).collect();
        assert_pairwise_agreement(&refs);
    }

    /// All four labeler variants agree on the structural pool — labeling
    /// folds and rewriting checks run through the same dispatcher, so a
    /// divergence there would surface as a label mismatch here.
    #[test]
    fn labelers_agree_on_structural_pool(
        seed in 0u64..1_000_000,
        atoms in 1usize..10,
        len in 3usize..7,
    ) {
        let catalog = edge_catalog();
        let mut registry = SecurityViews::new(&catalog);
        registry
            .add_program("V1(s, d) :- Edge(s, d, t)\nV2(s) :- Edge(s, d, 'c0')")
            .expect("the Edge views parse");
        let baseline = BaselineLabeler::new(registry.clone());
        let hashed = HashPartitionedLabeler::new(registry.clone());
        let bitvec = BitVectorLabeler::new(registry.clone());
        let cached = CachedLabeler::new(registry);
        let pool = vec![
            tree_query(&catalog, atoms, seed),
            tree_query(&catalog, atoms, seed ^ 0xDEAD),
            cycle_query(&catalog, len),
        ];
        for query in &pool {
            let reference = baseline.label_query(query);
            prop_assert_eq!(&reference, &hashed.label_query(query));
            prop_assert_eq!(&reference, &bitvec.label_query(query));
            // Cold, warm, and fully interned cache paths.
            prop_assert_eq!(&reference, &cached.label_query(query));
            prop_assert_eq!(&reference, &cached.label_query(query));
            let id = cached.intern(query);
            prop_assert_eq!(&reference, &cached.label_interned(id));
        }
    }
}

/// The dispatch counters move the right way: a cyclic containment ticks
/// `backtrack_fallbacks`, an acyclic one ticks `structural_checks`.  The
/// counters are process-global and other tests run concurrently, so only
/// monotonic lower bounds are asserted.
#[test]
fn dispatch_counters_track_shape_class() {
    let catalog = edge_catalog();
    let mut interner = QueryInterner::new();
    let cycle = interner.intern(&cycle_query(&catalog, 4));
    let tree = interner.intern(&tree_query(&catalog, 4, 0x5EED));
    assert_eq!(interner.shape_class(cycle), ShapeClass::Cyclic);
    assert_eq!(interner.shape_class(tree), ShapeClass::Acyclic);
    assert_eq!(interner.num_acyclic_queries(), 1);

    let before = structure::counters();
    std::hint::black_box(interned_contained_in(
        interner.resolve(cycle),
        interner.resolve(cycle),
    ));
    let mid = structure::counters();
    assert!(
        mid.backtrack_fallbacks > before.backtrack_fallbacks,
        "a cyclic containment must tick the fallback counter"
    );

    std::hint::black_box(interned_contained_in(
        interner.resolve(tree),
        interner.resolve(tree),
    ));
    let after = structure::counters();
    assert!(
        after.structural_checks > mid.structural_checks,
        "an acyclic containment must tick the structural counter"
    );
}
