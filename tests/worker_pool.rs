//! Stress and lifecycle tests for the persistent worker pool.
//!
//! * **Seeded interleaving stress** — deterministic pseudo-random mixed
//!   streams with heavily *skewed* segments (long bursts for one
//!   principal, wide plain queries mixed into cheap interned ones) are
//!   served by the pooled pipelined executor (`workers: 4`, so chunk
//!   stealing and epoch-based snapshot reclamation run on any host) and
//!   must be extensionally equal to strictly sequential `apply`
//!   processing: every response, the totals, and every principal's
//!   consistency word.
//! * **Shutdown/drop** — dropping a pool joins every worker after
//!   draining its queues; a pool outlives none of its threads.
//! * **Panic containment** — a panicking task fails only its own batch
//!   (the waiter observes the panic), the pool keeps serving later
//!   batches, and still drops cleanly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fdc::core::{SecurityViews, WorkerPool};
use fdc::cq::parser::parse_query;
use fdc::policy::{PolicyPartition, PrincipalId, SecurityPolicy};
use fdc::service::{DisclosureService, Operation, Response, ServiceConfig};

const NUM_PRINCIPALS: usize = 6;

/// Query shapes of mixed labeling cost: single-atom shapes are cache-warm
/// after one derivation, the join shape re-derives more per miss — the
/// cost skew that makes work-stealing observable.
const SHAPES: [&str; 5] = [
    "Q(x) :- Meetings(x, y)",
    "Q(x, y) :- Meetings(x, y)",
    "Q(x, y, z) :- Contacts(x, y, z)",
    "Q(z) :- Contacts(x, y, z)",
    "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
];

/// A tiny deterministic generator (splitmix64) so every run of the stress
/// test sees the same interleavings per seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn build_service(registry: &SecurityViews, num_shards: usize, workers: usize) -> DisclosureService {
    let mut service = DisclosureService::new(
        registry.clone(),
        ServiceConfig {
            num_shards,
            workers,
            ..ServiceConfig::default()
        },
    );
    let v1 = registry.id_by_name("V1").unwrap();
    let v2 = registry.id_by_name("V2").unwrap();
    let v3 = registry.id_by_name("V3").unwrap();
    for i in 0..NUM_PRINCIPALS {
        let policy = if i % 2 == 0 {
            SecurityPolicy::chinese_wall([
                PolicyPartition::from_views("meetings", registry, [v1, v2]),
                PolicyPartition::from_views("contacts", registry, [v3]),
            ])
        } else {
            SecurityPolicy::stateless(PolicyPartition::from_views("times", registry, [v2]))
        };
        service.register_principal(policy);
    }
    service
}

/// Generates one seeded mixed stream: mostly admissions in *bursts* (a
/// burst pins one principal and often one query shape, skewing both the
/// decision shards and the labeling chunks), with occasional grants,
/// revokes and `AddSecurityView` boundaries splitting the segments.
fn seeded_stream(catalog: &fdc::cq::Catalog, seed: u64, len: usize) -> Vec<Operation> {
    let mut rng = Rng(seed);
    let mut ops = Vec::with_capacity(len);
    let mut added = 0usize;
    while ops.len() < len {
        match rng.below(10) {
            0 => {
                let principal = PrincipalId(rng.below(NUM_PRINCIPALS) as u32);
                let grant = rng.below(2) == 0;
                let view = ["V1", "V2", "V3"][rng.below(3)].to_owned();
                ops.push(if grant {
                    Operation::GrantView { principal, view }
                } else {
                    Operation::RevokeView { principal, view }
                });
            }
            1 if added < 4 => {
                // A segment boundary: the next segment labels through a
                // fresh snapshot while this one's retires by epoch.
                ops.push(Operation::AddSecurityView {
                    name: format!("S{added}"),
                    query: parse_query(catalog, "S(x) :- Meetings(x, y)").unwrap(),
                });
                added += 1;
            }
            _ => {
                // An admission burst: one principal, a narrow shape pool.
                let principal = PrincipalId(rng.below(NUM_PRINCIPALS) as u32);
                let shape = rng.below(SHAPES.len());
                let burst = 1 + rng.below(24);
                for _ in 0..burst {
                    if ops.len() >= len {
                        break;
                    }
                    let text = SHAPES[if rng.below(4) == 0 {
                        rng.below(SHAPES.len())
                    } else {
                        shape
                    }];
                    let query = parse_query(catalog, text).unwrap();
                    ops.push(if rng.below(5) == 0 {
                        Operation::Check { principal, query }
                    } else {
                        Operation::Submit { principal, query }
                    });
                }
            }
        }
    }
    ops.truncate(len);
    ops
}

#[test]
fn seeded_interleavings_match_sequential_apply() {
    let registry = SecurityViews::paper_example();
    let catalog = registry.catalog().clone();
    for seed in [1, 7, 42, 1337, 0xDEAD_BEEF] {
        let ops = seeded_stream(&catalog, seed, 320);
        let mut pooled = build_service(&registry, 4, 4);
        let pooled_responses = pooled.run_pipelined(&ops);
        let mut sequential = build_service(&registry, 1, 1);
        let sequential_responses: Vec<Response> =
            ops.iter().map(|op| sequential.apply(op)).collect();
        assert_eq!(pooled_responses, sequential_responses, "seed {seed}");
        assert_eq!(pooled.totals(), sequential.totals(), "seed {seed}");
        assert_eq!(pooled.stats(), sequential.stats(), "seed {seed}");
        for i in 0..NUM_PRINCIPALS {
            let p = PrincipalId(i as u32);
            assert_eq!(
                pooled.store().consistency_bits(p),
                sequential.store().consistency_bits(p),
                "seed {seed}"
            );
            assert_eq!(
                pooled.store().stats(p),
                sequential.store().stats(p),
                "seed {seed}"
            );
        }
        // The pooled run actually exercised the epoch plane: every
        // labeled segment's snapshot was reclaimed by end of run.
        let parallel = pooled.stats().parallel;
        assert!(parallel.segments_labeled > 0, "seed {seed}");
        assert_eq!(
            parallel.snapshots_reclaimed, parallel.segments_labeled,
            "seed {seed}"
        );
        assert_eq!(parallel.workers, 4, "seed {seed}");
    }
}

#[test]
fn the_service_plane_never_touches_the_global_pool() {
    // `WorkerPool::global()` is a convenience fallback for pool-less
    // callers (the `CachedLabeler::label_batch` family).  Everything a
    // `DisclosureService` runs — pooled admission labeling, pipelined
    // segments, per-shard decision fan-outs — must execute on the
    // service's own pool, never spin up a second process-global one.
    // This test binary never calls the conveniences, so the global must
    // still be uninitialized after a full pooled workout.
    let registry = SecurityViews::paper_example();
    let catalog = registry.catalog().clone();
    let mut service = DisclosureService::new(
        registry.clone(),
        ServiceConfig {
            num_shards: 4,
            workers: 4,
            // Force the parallel path for every non-trivial run, so both
            // executors genuinely fan out.
            parallel_threshold: 0,
            ..ServiceConfig::default()
        },
    );
    let v1 = registry.id_by_name("V1").unwrap();
    let v2 = registry.id_by_name("V2").unwrap();
    for i in 0..NUM_PRINCIPALS {
        service.register_principal(SecurityPolicy::stateless(PolicyPartition::from_views(
            format!("p{i}"),
            &registry,
            [v1, v2],
        )));
    }
    let ops = seeded_stream(&catalog, 99, 256);
    let batch_responses = service.run_batch(&ops);
    let pipelined_responses = service.run_pipelined(&ops);
    assert_eq!(batch_responses.len(), ops.len());
    assert_eq!(pipelined_responses.len(), ops.len());
    let parallel = service.stats().parallel;
    assert!(
        parallel.segments_labeled > 0,
        "the pooled paths must have engaged"
    );
    assert!(
        !WorkerPool::global_initialized(),
        "service work leaked onto the process-global fallback pool"
    );
}

#[test]
fn dropping_a_pool_joins_workers_after_draining() {
    let ran = Arc::new(AtomicU64::new(0));
    let pool = WorkerPool::new(4);
    let counter = Arc::clone(&ran);
    let results = pool.run((0..64u64).collect(), move |i, _ctx| {
        counter.fetch_add(1, Ordering::Relaxed);
        i * 2
    });
    assert_eq!(results, (0..64u64).map(|i| i * 2).collect::<Vec<_>>());
    assert_eq!(ran.load(Ordering::Relaxed), 64);
    // Queue one more batch and drop the pool before waiting on it: the
    // drop drains the queues (every task still runs) and joins all
    // workers — if a worker leaked or deadlocked, drop would hang and
    // the harness would time this test out.
    let counter = Arc::clone(&ran);
    let pending = pool.submit((0..32u64).collect(), move |i, _ctx| {
        counter.fetch_add(1, Ordering::Relaxed);
        i
    });
    drop(pool);
    assert_eq!(pending.wait(), (0..32u64).collect::<Vec<_>>());
    assert_eq!(ran.load(Ordering::Relaxed), 96);
}

#[test]
fn panicking_task_fails_its_batch_but_not_the_pool() {
    let pool = WorkerPool::new(4);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run((0..16u32).collect(), |i, _ctx| {
            assert!(i != 9, "injected task failure");
            i
        })
    }));
    assert!(outcome.is_err(), "the waiter observes the task panic");
    // The pool is not wedged: a later batch completes normally, and the
    // pool still shuts down cleanly on drop.
    let results = pool.run((0..16u32).collect(), |i, _ctx| i + 1);
    assert_eq!(results, (1..=16u32).collect::<Vec<_>>());
    drop(pool);
}
