//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API that the workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`], the [`proptest!`] / [`prop_oneof!`] macros, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics differ from real proptest in two deliberate ways: generation is
//! seeded deterministically from the test name (so failures reproduce
//! without a persistence file), and there is no shrinking — a failing case
//! panics with the generated values in the assertion message instead.

#![forbid(unsafe_code)]

/// Deterministic test-case generation machinery.
pub mod test_runner {
    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator used for all value generation (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name), so
        /// every property gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut state: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                state ^= u64::from(byte);
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: if state == 0 { 0x5EED } else { state },
            }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `0..bound` (`bound` must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Object-safe mirror of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn new_value_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.new_value_dyn(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Always generates a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a union from its arms; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`](vec()): a fixed size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion; panics (failing the case) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            panic!($($fmt)+);
        }
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            );
        }
    }};
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a `#[test]`
/// that generates `config.cases` random bindings and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $arg = {
                        let strategy = $strat;
                        $crate::strategy::Strategy::new_value(&strategy, &mut rng)
                    };
                )*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let strategy = crate::collection::vec((0u8..2, 0i64..3), 1..=4);
        for _ in 0..100 {
            let v = strategy.new_value(&mut rng);
            assert!((1..=4).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 2);
                assert!((0..3).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let strategy = prop_oneof![
            (0u32..1).prop_map(|_| "a"),
            (0u32..1).prop_map(|_| "b"),
            (0u32..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strategy.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = crate::test_runner::TestRng::from_name("flatmap");
        let strategy = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        for _ in 0..100 {
            let v = strategy.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_generates_and_asserts(x in 0u32..10, v in crate::collection::vec(0u32..5, 0..3)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 3, "unexpected length {}", v.len());
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
