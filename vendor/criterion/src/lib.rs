//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the criterion 0.5 API that the workspace's bench
//! targets use: [`Criterion::benchmark_group`], group configuration
//! ([`BenchmarkGroup::sample_size`], `warm_up_time`, `measurement_time`,
//! `throughput`), [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock loop: warm up for the configured
//! duration, then run batches of iterations until the measurement window is
//! filled, and report the mean time per iteration (plus element throughput
//! when configured).  Under `cargo test` (cargo passes `--test` to
//! `harness = false` targets) every benchmark body runs exactly once, so the
//! bench targets double as smoke tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (callers may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a manager configured from the command line.
    ///
    /// Full measurement only happens under `cargo bench` (which passes
    /// `--bench`); any other invocation — `cargo test` in particular — runs
    /// every benchmark body exactly once, so bench targets double as smoke
    /// tests.  All other arguments are ignored, so criterion-style filters
    /// do not break the run.
    pub fn from_args() -> Self {
        let mut bench_mode = false;
        let mut test_mode = false;
        for arg in std::env::args() {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => test_mode = true,
                _ => {}
            }
        }
        Criterion {
            test_mode: test_mode || !bench_mode,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in measures a single mean,
    /// so the statistical sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if self.test_mode {
            println!("{}/{}: ok (test mode, 1 iteration)", self.name, id);
            return;
        }
        let mean = bencher.mean_ns;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!(" ({:.0} elem/s)", n as f64 / (mean / 1e9))
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!(" ({:.0} B/s)", n as f64 / (mean / 1e9))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {} iters, {}{}",
            self.name,
            id,
            bencher.iters,
            format_ns(mean),
            throughput
        );
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs the routine repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up phase.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Measurement phase.
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_body() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("g");
        let mut ran = 0;
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let data = vec![1, 2, 3];
        let mut sum = 0;
        group.bench_with_input(BenchmarkId::new("f", 3), &data, |b, d| {
            b.iter(|| sum = d.iter().sum::<i32>())
        });
        assert_eq!(sum, 6);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).contains("s/iter"));
    }

    #[test]
    fn measured_iter_records_a_mean() {
        let mut bencher = Bencher {
            test_mode: false,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            mean_ns: 0.0,
            iters: 0,
        };
        bencher.iter(|| std::hint::black_box(1 + 1));
        assert!(bencher.iters > 0);
        assert!(bencher.mean_ns > 0.0);
    }
}
