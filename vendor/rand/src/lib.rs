//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand` 0.8 API that the workspace
//! uses: [`rngs::SmallRng`] seeded with [`SeedableRng::seed_from_u64`], the
//! [`Rng::gen_range`] convenience over half-open and inclusive integer
//! ranges, and [`distributions::Uniform`].
//!
//! The generator is a fixed xorshift64* behind a splitmix64 seed expansion —
//! deterministic per seed, which is all the workload and policy generators
//! require (the real `SmallRng` makes no cross-version stability promises
//! either, so no caller may depend on the exact stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding of reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        T: SampleUniform,
        R2: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `low..high`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `low..=high`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (low as i128 + value as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (low as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The generators module, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* with splitmix64
    /// seed expansion).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 step to spread weak seeds over the whole state space.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x5EED_5EED_5EED_5EED } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// The distributions module, mirroring `rand::distributions`.
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform distribution over a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `low..high`.
        ///
        /// # Panics
        ///
        /// Panics (on first sample) if the range is empty.
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_half_open(self.low, self.high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn uniform_distribution_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dist = Uniform::new(0usize, 4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[dist.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<usize> = (0..20).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..20).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
