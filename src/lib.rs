//! # fdc — Fine-grained disclosure control for app ecosystems
//!
//! Umbrella crate for the reproduction of Bender, Kot, Gehrke and Koch,
//! *Fine-Grained Disclosure Control for App Ecosystems* (SIGMOD 2013).
//!
//! It re-exports the workspace crates under short module names:
//!
//! * [`cq`] — conjunctive queries, schemas, parsing, containment, folding,
//!   and equivalent view rewriting.
//! * [`order`] — disclosure orders, down-sets, disclosure lattices and
//!   closure operators.
//! * [`core`] — disclosure labelers (the paper's contribution).
//! * [`policy`] — security policies, the reference monitor, and the packed
//!   label representation.
//! * [`service`] — the dynamic disclosure-control service: online policy
//!   mutation with epoch-versioned labels and incremental relabeling.
//! * [`durability`] — the write-ahead log and checkpoint formats behind
//!   the service's crash-consistent durable mode.
//! * [`ecosystem`] — the Facebook-like evaluation schema, security views and
//!   workload generator.
//! * [`casestudy`] — the FQL vs Graph API permission-documentation review.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use fdc_casestudy as casestudy;
pub use fdc_core as core;
pub use fdc_cq as cq;
pub use fdc_durability as durability;
pub use fdc_ecosystem as ecosystem;
pub use fdc_order as order;
pub use fdc_policy as policy;
pub use fdc_service as service;
