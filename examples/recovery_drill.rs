//! Kill-and-recover drill: a durable [`DisclosureService`] serves a
//! 10,000-op churn stream while the drill repeatedly "crashes" it — by
//! snapshotting the durability directory mid-stream, exactly as a power
//! cut would freeze the disk — and then recovers each crash image and
//! diffs it against an uncrashed reference.
//!
//! The recovered service must equal the reference that applied precisely
//! the operations whose WAL records survived in the image: per-principal
//! consistency words and decision counters, store totals, the view
//! registry's size and per-relation epochs, and the decisions of a fixed
//! probe set.  A mid-way checkpoint makes the later images exercise
//! checkpoint-bulkload *plus* tail replay, not just pure replay.
//!
//! The drill exits nonzero on any mismatch, so CI can run it as a smoke
//! gate: `cargo run --release --example recovery_drill`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fdc::cq::{ConjunctiveQuery, RelId};
use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{ChurnConfig, Ecosystem, WorkloadConfig};
use fdc::policy::PrincipalId;
use fdc::service::{DisclosureService, DurabilityConfig, Operation, ServiceConfig};

const PRINCIPALS: usize = 2_000;
const OPS: usize = 10_000;
/// Ops applied before the mid-stream checkpoint (a 64-op chunk boundary,
/// so the comparison below observes it exactly).
const CHECKPOINT_AT: usize = 3_968;
/// Stream positions (op counts) at which a crash image is taken.
const CRASH_POINTS: [usize; 4] = [1_024, 4_096, 7_168, 10_000];

fn main() -> ExitCode {
    let ecosystem = Ecosystem::new();
    let policy_config = PolicyGeneratorConfig {
        max_partitions: 5,
        max_elements_per_partition: 25,
        template_pool: 200,
        seed: 0xD211,
    };
    let stream = ecosystem
        .churn(ChurnConfig {
            mutation_ratio: 0.02,
            add_view_share: 0.1,
            check_share: 0.05,
            query_pool: 500,
            num_principals: PRINCIPALS,
            seed: 0xD211,
            workload: WorkloadConfig::stress(2, 0xD212),
        })
        .ops(OPS);
    let probes = ecosystem
        .workload(WorkloadConfig::stress(2, 0xD213))
        .batch(12);

    let live_dir = scratch_dir("live");
    let config = ServiceConfig {
        history_cap: 0,
        durability: DurabilityConfig {
            // Small commit groups so crash images cut close to the stream
            // position; fsync off (the crash is a directory snapshot, not
            // a power cut — page-cache contents are part of the image).
            group_commit: 8,
            fsync: false,
            ..DurabilityConfig::default()
        },
        ..ServiceConfig::default()
    };

    println!("recovery_drill: {PRINCIPALS} principals, {OPS}-op churn stream");
    let (mut service, _) =
        DisclosureService::open_durable(ecosystem.views.clone(), config, &live_dir)
            .expect("failed to open the live durability directory");
    let mut policies = ecosystem.policy_generator(policy_config);
    for _ in 0..PRINCIPALS {
        let policy = policies.next_policy(&ecosystem.views);
        service.register_principal(policy);
    }

    // Serve the stream, freezing a crash image at each crash point.
    let mut images: Vec<(usize, PathBuf)> = Vec::new();
    let mut applied = 0usize;
    for chunk in stream.chunks(64) {
        service.run_batch(chunk);
        applied += chunk.len();
        if CRASH_POINTS.contains(&applied) {
            let image = scratch_dir(&format!("image_{applied}"));
            copy_dir(&live_dir, &image).expect("failed to snapshot a crash image");
            images.push((applied, image));
        }
        if applied == CHECKPOINT_AT {
            let seq = service.checkpoint().expect("mid-stream checkpoint failed");
            println!("  checkpoint at op {applied} (log sequence {seq})");
        }
    }
    service.close().expect("close failed");

    // Recover every crash image and diff it against a reference that
    // applied exactly the operations whose records survived.
    let mut failures = 0usize;
    for (at, image) in &images {
        let (mut recovered, report) =
            DisclosureService::open_durable(ecosystem.views.clone(), config, image)
                .expect("crash-image recovery failed");
        let replayed_ops = report.last_seq as usize - PRINCIPALS;
        let mut reference = DisclosureService::new(ecosystem.views.clone(), volatile(&config));
        let mut reference_policies = ecosystem.policy_generator(policy_config);
        for _ in 0..PRINCIPALS {
            let policy = reference_policies.next_policy(&ecosystem.views);
            reference.register_principal(policy);
        }
        let mut logged = 0usize;
        for op in &stream {
            if logged == replayed_ops {
                break;
            }
            if is_logged(op) {
                logged += 1;
            }
            reference.run_batch(std::slice::from_ref(op));
        }
        let got = fingerprint(&mut recovered, &probes);
        let want = fingerprint(&mut reference, &probes);
        let verdict = if got == want { "OK" } else { "MISMATCH" };
        println!(
            "  crash at op {at}: checkpoint seq {}, {} records replayed, \
             {replayed_ops} stream ops recovered — {verdict}",
            report.checkpoint_seq, report.records_replayed
        );
        if got != want {
            failures += 1;
        }
        let _ = fs::remove_dir_all(image);
    }
    let _ = fs::remove_dir_all(&live_dir);

    if failures == 0 {
        println!("all {} crash images recovered consistently", images.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} crash image(s) diverged from the reference");
        ExitCode::FAILURE
    }
}

/// The same configuration with durability stripped — the in-memory
/// reference twin.
fn volatile(config: &ServiceConfig) -> ServiceConfig {
    ServiceConfig {
        durability: DurabilityConfig::default(),
        ..*config
    }
}

/// Whether `op` produces a WAL record (everything but reads).
fn is_logged(op: &Operation) -> bool {
    !matches!(
        op,
        Operation::Check { .. } | Operation::CheckInterned { .. } | Operation::AuditApp { .. }
    )
}

/// An extensional digest of everything durable two equal services must
/// agree on.
#[derive(PartialEq, Eq)]
struct Fingerprint {
    /// Per principal: consistency word + (allowed, denied) counters.
    words: Vec<(u64, (u64, u64))>,
    totals: (u64, u64),
    registry_len: usize,
    epochs: Vec<u64>,
    /// Debug-formatted probe decisions.
    decisions: Vec<String>,
}

fn fingerprint(service: &mut DisclosureService, probes: &[ConjunctiveQuery]) -> Fingerprint {
    let principals = service.store().len();
    let words = (0..principals)
        .map(|i| {
            let p = PrincipalId(i as u32);
            (
                service.store().consistency_bits(p),
                service.store().stats(p),
            )
        })
        .collect();
    let totals = service.store().totals();
    let registry_len = service.registry().len();
    let epochs = (0..service.registry().catalog().len())
        .map(|r| service.registry().epoch(RelId(r as u32)))
        .collect();
    let decisions = probes
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let p = PrincipalId((i % principals) as u32);
            format!("{:?}", service.check(p, q))
        })
        .collect();
    Fingerprint {
        words,
        totals,
        registry_len,
        epochs,
        decisions,
    }
}

/// Recursively copies the durability directory — the crash image.
fn copy_dir(from: &Path, to: &Path) -> std::io::Result<()> {
    let _ = fs::remove_dir_all(to);
    fs::create_dir_all(to)?;
    for entry in fs::read_dir(from)? {
        let entry = entry?;
        fs::copy(entry.path(), to.join(entry.file_name()))?;
    }
    Ok(())
}

/// A unique scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fdc_recovery_drill_{tag}_{}", std::process::id()))
}
