//! A corporate BYOD scenario: Chinese-Wall disclosure control for a
//! third-party app ecosystem.
//!
//! The introduction motivates the need for expressive policies with
//! bring-your-own-device deployments: a consultant's device runs apps that
//! may see either the client-facing calendar or the internal contact
//! directory, but never both, and may never learn more than the time slots
//! of internal meetings.  This example expresses that policy with two
//! partitions and shows the reference monitor enforcing it against a stream
//! of app queries.
//!
//! Run with `cargo run --example corporate_byod`.

use fdc::core::{BitVectorLabeler, QueryLabeler, SecurityViews};
use fdc::cq::parser::parse_query;
use fdc::cq::Catalog;
use fdc::policy::{Decision, PolicyPartition, PolicyStore, SecurityPolicy};

fn main() {
    // Schema: the paper's Meetings/Contacts pair, read as corporate data.
    let catalog = Catalog::paper_example();
    let mut views = SecurityViews::new(&catalog);
    views
        .add_program(
            r"
            meetings_full  (x, y)    :- Meetings(x, y)
            meetings_times (x)       :- Meetings(x, y)
            contacts_full  (x, y, z) :- Contacts(x, y, z)
            contacts_names (x)       :- Contacts(x, y, z)
            ",
        )
        .expect("views are valid");
    let labeler = BitVectorLabeler::new(views.clone());

    // Policy: partition A = calendar side (but only time slots), partition B
    // = directory side (full contacts).  An app may live on either side of
    // the wall, never both.
    let times = views.id_by_name("meetings_times").unwrap();
    let contacts_full = views.id_by_name("contacts_full").unwrap();
    let contacts_names = views.id_by_name("contacts_names").unwrap();
    let policy = SecurityPolicy::chinese_wall([
        PolicyPartition::from_views("calendar-side", &views, [times]),
        PolicyPartition::from_views("directory-side", &views, [contacts_full, contacts_names]),
    ]);

    // Two apps installed on the same device, each its own principal.
    let mut store = PolicyStore::new();
    let scheduler_app = store.register(policy.clone());
    let crm_app = store.register(policy);

    let queries = [
        (
            "scheduler: free time slots",
            scheduler_app,
            "Q(t) :- Meetings(t, p)",
        ),
        (
            "scheduler: who attends the 9am",
            scheduler_app,
            "Q(p) :- Meetings(9, p)",
        ),
        (
            "crm: full directory export",
            crm_app,
            "Q(p, e, r) :- Contacts(p, e, r)",
        ),
        (
            "crm: interns' calendars",
            crm_app,
            "Q(t) :- Meetings(t, p), Contacts(p, e, 'Intern')",
        ),
        (
            "scheduler: more time slots",
            scheduler_app,
            "Q(t) :- Meetings(t, 'Cathy')",
        ),
    ];

    println!("Enforcing the BYOD Chinese-Wall policy:\n");
    for (description, app, text) in queries {
        let query = parse_query(&catalog, text).unwrap();
        let label = labeler.label_query(&query);
        let decision = store.submit(app, &label);
        println!(
            "  [{}] {description:35} -> {}",
            if app == scheduler_app {
                "scheduler"
            } else {
                "crm"
            },
            match decision {
                Decision::Allow => "answered",
                Decision::Deny => "REFUSED",
            }
        );
        println!("      label: {}", label.describe(&views));
    }

    let (answered, refused) = store.totals();
    println!("\n{answered} queries answered, {refused} refused across both apps.");
}
