//! Figure 5 sweep: disclosure labeler performance, printed as the series of
//! the paper's figure.
//!
//! The paper reports the time to analyze one million queries as the maximum
//! number of atoms per query grows from 3 to 15, for four configurations
//! (query generation only, baseline, hashing, hashing + bit vectors).  This
//! example measures a smaller batch with `std::time` and scales the result
//! to a per-million-queries figure so the output reads like Figure 5.
//! For statistically rigorous numbers use
//! `cargo bench -p fdc-bench --bench fig5_labeler`.
//!
//! Run with `cargo run --release --example fig5_labeler_sweep`
//! (optionally `FDC_SWEEP_QUERIES=50000` to enlarge the measured batch).

use std::time::Instant;

use fdc::core::QueryLabeler;
use fdc::ecosystem::{Ecosystem, WorkloadConfig};

fn main() {
    let batch: usize = std::env::var("FDC_SWEEP_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let ecosystem = Ecosystem::new();

    println!("Figure 5 — disclosure labeler performance");
    println!("(seconds to analyze one million queries, extrapolated from {batch} queries)\n");
    println!(
        "{:>16} | {:>16} | {:>12} | {:>12} | {:>20} | {:>12}",
        "max atoms/query",
        "generation only",
        "baseline",
        "hashing only",
        "bit vectors + hashing",
        "cached"
    );
    println!("{}", "-".repeat(107));

    for max_atoms in [3usize, 6, 9, 12, 15] {
        let max_subqueries = (max_atoms / 3).max(1);
        let config = WorkloadConfig::stress(max_subqueries, 0xF15 + max_atoms as u64);

        // Query generation only.
        let start = Instant::now();
        let mut generator = ecosystem.workload(config);
        let queries = generator.batch(batch);
        let generation = start.elapsed();

        // The four labelers on the same batch (the cached labeler is warmed
        // with one pass so the column reports its serving steady state).
        ecosystem.cached.label_queries_batch(&queries);
        let mut times = Vec::new();
        for labeler in [
            &ecosystem.baseline as &dyn QueryLabeler,
            &ecosystem.hashed as &dyn QueryLabeler,
            &ecosystem.bitvec as &dyn QueryLabeler,
            &ecosystem.cached as &dyn QueryLabeler,
        ] {
            let start = Instant::now();
            let mut checksum = 0usize;
            for query in &queries {
                checksum += labeler.label_query(query).len();
            }
            assert!(checksum > 0);
            times.push(start.elapsed());
        }

        let per_million = |d: std::time::Duration| d.as_secs_f64() * 1_000_000.0 / batch as f64;
        println!(
            "{:>16} | {:>15.2}s | {:>11.2}s | {:>11.2}s | {:>19.2}s | {:>11.2}s",
            max_atoms,
            per_million(generation),
            per_million(times[0]),
            per_million(times[1]),
            per_million(times[2]),
            per_million(times[3]),
        );
    }

    println!(
        "\nExpected shape (paper, Java on a 2.9 GHz Core i7): bit vectors + hashing is 3-4x \
         faster than the baseline and handles a million 1-3 atom queries in a few seconds; \
         generation alone is a small fraction of the total."
    );
}
