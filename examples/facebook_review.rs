//! Reproduces the Section 7.1 case study: the FQL vs Graph API
//! permission-documentation review (Table 2) and the automatic-labeling
//! counterfactual.
//!
//! Run with `cargo run --example facebook_review`.

use fdc::casestudy::autolabel::autolabel_report;
use fdc::casestudy::review_documentation;

fn main() {
    // --- Table 2 -------------------------------------------------------------
    let report = review_documentation();
    println!("{}", report.to_table());

    // --- The data-derived counterfactual -------------------------------------
    let rows = autolabel_report();
    let matching = rows.iter().filter(|r| r.matches).count();
    println!(
        "Automatic (data-derived) labeling of the same {} views: {} / {} match the adjudicated correct permissions.",
        rows.len(),
        matching,
        rows.len()
    );
    println!("Examples:");
    for attribute in ["quotes", "relationship_status", "birthday", "pic"] {
        if let Some(row) = rows.iter().find(|r| r.attribute == attribute) {
            println!(
                "  {:22} -> {}",
                row.attribute,
                if row.automatic.is_empty() {
                    "(public)".to_owned()
                } else {
                    row.automatic.join(" or ")
                }
            );
        }
    }
    println!(
        "\nBecause the label is a function of the view definition, the two APIs cannot drift apart: \
         the six Table 2 inconsistencies are impossible by construction."
    );
}
