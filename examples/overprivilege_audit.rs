//! Overprivilege auditing (Section 2.2): detect apps that request more
//! permissions than their observed workload needs.
//!
//! Two apps run against the Facebook-like evaluation ecosystem.  A birthday
//! calendar app requests the birthday, location and likes permissions but
//! only ever asks for birthdays; the audit flags the two unused permissions.
//! A photo browser requests only photo metadata but also tries to read full
//! user profiles; the audit flags the uncovered queries instead.
//!
//! The third section runs the audit as a *live service operation*: a
//! [`DisclosureService`] serves a generated workload (Section 7.2 queries
//! with light permission churn), records each app's observed queries, and
//! `AuditApp` compares them against the app's current policy — requested
//! permissions derived live, including grants applied mid-stream.
//!
//! Run with `cargo run --example overprivilege_audit`.

use fdc::cq::parser::parse_query;
use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{ChurnConfig, Ecosystem, WorkloadConfig};
use fdc::policy::{audit_app, PrincipalId};
use fdc::service::{Operation, Response, ServiceConfig};

fn main() {
    let eco = Ecosystem::new();
    let catalog = &eco.schema.catalog;
    let views = &eco.views;

    // Shorthand: the full 34-column User atom with only uid + birthday exposed.
    let birthday_query = parse_query(
        catalog,
        "Q(u, b) :- User(u, n, fn, mn, ln, g, lo, la, un, tp, tz, ut, v, bio, b, d, e, em, h, ii, \
         loc, p, fa, ft, pic, pu, q, rs, r, so, w, wo, ia, fr)",
    )
    .unwrap();
    let photo_meta_query =
        parse_query(catalog, "Q(u, pid) :- Photo(pid, u, aid, c, pl, ct, l, fr)").unwrap();
    let full_profile_query = parse_query(
        catalog,
        "Q(u, n, em) :- User(u, n, fn, mn, ln, g, lo, la, un, tp, tz, ut, v, bio, b, d, e, em, h, \
         ii, loc, p, fa, ft, pic, pu, q, rs, r, so, w, wo, ia, fr)",
    )
    .unwrap();

    let id = |name: &str| {
        views
            .id_by_name(name)
            .unwrap_or_else(|| panic!("view {name}"))
    };

    // --- App 1: a birthday calendar that asks for too much -----------------
    let requested = [id("user_birthday"), id("user_location"), id("user_likes")];
    let workload = vec![birthday_query.clone()];
    let report = audit_app(&eco.bitvec, requested, &workload);
    println!("birthday-calendar app:");
    println!("{}", indent(&report.describe(views)));
    println!(
        "  verdict: {}\n",
        if report.is_overprivileged() {
            "OVERPRIVILEGED — drop the unused permissions"
        } else {
            "tight"
        }
    );

    // --- App 2: a photo browser that asks for too little --------------------
    let requested = [id("photo_meta"), id("photo_presence")];
    let workload = vec![photo_meta_query, full_profile_query];
    let report = audit_app(&eco.bitvec, requested, &workload);
    println!("photo-browser app:");
    println!("{}", indent(&report.describe(views)));
    println!(
        "  verdict: {}",
        if report.uncovered_queries.is_empty() {
            "tight".to_owned()
        } else {
            format!(
                "UNDERPRIVILEGED — {} quer{} cannot be answered with the requested permissions",
                report.uncovered_queries.len(),
                if report.uncovered_queries.len() == 1 {
                    "y"
                } else {
                    "ies"
                }
            )
        }
    );

    // --- Live service: AuditApp over a generated workload -------------------
    let num_apps = 12;
    let mut service = eco.disclosure_service(
        PolicyGeneratorConfig {
            max_partitions: 1,
            max_elements_per_partition: 12,
            template_pool: 0,
            seed: 0xA0D17,
        },
        num_apps,
        ServiceConfig::default(),
    );
    let mut churn = eco.churn(ChurnConfig {
        mutation_ratio: 0.02,
        add_view_share: 0.0,
        query_pool: 64,
        num_principals: num_apps,
        seed: 0xA0D17,
        workload: WorkloadConfig::base(0xA0D18),
        ..ChurnConfig::default()
    });
    service.run_batch(&churn.ops(3_000));

    println!("\nservice-driven audit of {num_apps} apps over a generated workload:");
    let mut overprivileged = 0;
    for app in 0..num_apps {
        let principal = PrincipalId(app as u32);
        let Response::Audit(report) = service.apply(&Operation::AuditApp { principal }) else {
            panic!("audit of app {app} failed");
        };
        if report.is_overprivileged() {
            overprivileged += 1;
        }
        println!(
            "  app {app:>2}: requested {:>2}, used {:>2}, unused {:>2}, uncovered queries {:>3}{}",
            report.requested.len(),
            report.used.len(),
            report.unused.len(),
            report.uncovered_queries.len(),
            if report.is_overprivileged() {
                "  ← OVERPRIVILEGED"
            } else {
                ""
            }
        );
    }
    println!(
        "  {overprivileged}/{num_apps} apps request permissions their observed workload never needed"
    );
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
