//! Figure 6 sweep: policy checker performance, printed as the series of the
//! paper's figure.
//!
//! The paper reports the time to analyze one million disclosure labels as
//! the maximum number of elements per policy partition grows from 5 to 50,
//! for 1-way and 5-way policies and 1K / 50K / 1M principals.  This example
//! measures smaller batches with `std::time` and scales to a per-million
//! figure.  For statistically rigorous numbers use
//! `cargo bench -p fdc-bench --bench fig6_policy`.
//!
//! Run with `cargo run --release --example fig6_policy_sweep`.  The full
//! 1M-principal axis is the default now that the store interns compiled
//! policies (24 bytes of state per principal); set `FDC_FIG6_FULL=0` to
//! shrink the largest point on memory-constrained machines.

use std::time::Instant;

use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use fdc::policy::PrincipalId;

fn main() {
    let ecosystem = Ecosystem::new();
    let label_batch: usize = std::env::var("FDC_SWEEP_LABELS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let principal_counts: Vec<usize> = if std::env::var("FDC_FIG6_FULL").is_ok_and(|v| v == "0") {
        vec![1_000, 50_000, 250_000]
    } else {
        vec![1_000, 50_000, 1_000_000]
    };

    // Pre-label one batch of base-workload queries (1-3 atoms, as in the
    // paper), through the cached batch labeler so setup stays cheap.
    let mut generator = ecosystem.workload(WorkloadConfig::base(0xF16F));
    let labels = ecosystem.label_batch_parallel(&generator.batch(label_batch.min(50_000)));

    println!("Figure 6 — policy checker performance");
    println!("(seconds to analyze one million disclosure labels, extrapolated)\n");
    println!(
        "{:>28} | {:>6} | {:>6} | {:>6}  (max elements per partition)",
        "configuration", 5, 25, 50
    );
    println!("{}", "-".repeat(64));

    for &partitions in &[5usize, 1] {
        for &principals in &principal_counts {
            let mut cells = Vec::new();
            for &max_elements in &[5usize, 25, 50] {
                let mut policy_gen = ecosystem.policy_generator(PolicyGeneratorConfig {
                    max_partitions: partitions,
                    max_elements_per_partition: max_elements,
                    template_pool: 1_000,
                    seed: 0xF16,
                });
                let mut store = policy_gen.build_store(&ecosystem.views, principals);
                let start = Instant::now();
                let mut allowed = 0usize;
                for (i, label) in labels.iter().enumerate() {
                    let principal = PrincipalId((i % principals) as u32);
                    if store.submit(principal, label).is_allow() {
                        allowed += 1;
                    }
                }
                let elapsed = start.elapsed();
                assert!(allowed <= labels.len());
                cells.push(elapsed.as_secs_f64() * 1_000_000.0 / labels.len() as f64);
            }
            println!(
                "{:>28} | {:>5.2}s | {:>5.2}s | {:>5.2}s",
                format!("{partitions}-way, {principals} principals"),
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }

    println!(
        "\nExpected shape (paper, C on a 2.9 GHz Core i7): well under a second per million labels; \
         throughput degrades gently as the number of principals grows (cache locality) and is \
         higher for 1-way than for 5-way policies; the number of elements per partition has \
         little effect thanks to the bit-mask representation."
    );
}
