//! Lattice explorer: builds the disclosure lattices of Figures 3 and 4.
//!
//! Shows the order-theoretic side of the framework: the `⇓` operator, the
//! disclosure lattice, GLB/LUB, decomposability and distributivity, plus a
//! Graphviz DOT rendering of the Figure 3 lattice.
//!
//! Run with `cargo run --example lattice_explorer`.

use fdc::core::rewriting_order::RewritingOrder;
use fdc::core::SecurityViews;
use fdc::cq::Catalog;
use fdc::order::downset::{combine, overlap};
use fdc::order::genset::is_decomposable;
use fdc::order::lattice::DisclosureLattice;
use fdc::order::ViewSet;

fn main() {
    // --- The Figure 3 universe: four views over Meetings --------------------
    let catalog = Catalog::paper_example();
    let mut views = SecurityViews::new(&catalog);
    views
        .add_program(
            r"
            V1(x, y) :- Meetings(x, y)
            V2(x)    :- Meetings(x, y)
            V4(y)    :- Meetings(x, y)
            V5()     :- Meetings(x, y)
            ",
        )
        .expect("figure 3 views are valid");

    let order = RewritingOrder::new(&views);
    let lattice = DisclosureLattice::build(&order);

    let named = |name: &str| -> ViewSet {
        ViewSet::singleton(order.view_id(views.id_by_name(name).unwrap()))
    };
    let describe = |set: ViewSet| -> String {
        let names: Vec<String> = set
            .iter()
            .map(|v| views.view(fdc::core::SecurityViewId(v.0)).name.clone())
            .collect();
        format!("{{{}}}", names.join(", "))
    };

    println!("Figure 3: the disclosure lattice over {{V1, V2, V4, V5}}");
    println!("  {} information levels:", lattice.len());
    for element in lattice.elements() {
        println!("    ⇓{}", describe(*element));
    }

    let v2 = named("V2");
    let v4 = named("V4");
    println!(
        "\n  information overlap of V2 and V4  = ⇓{}",
        describe(overlap(&order, v2, v4))
    );
    println!(
        "  information combination of V2, V4 = ⇓{}",
        describe(combine(&order, v2, v4))
    );
    println!(
        "  the combination {} the top element ⇓{}",
        if combine(&order, v2, v4) == lattice.element(lattice.top()) {
            "EQUALS"
        } else {
            "is strictly below"
        },
        describe(lattice.element(lattice.top()))
    );

    println!(
        "\n  universe decomposable: {} (so the lattice is distributive: {})",
        is_decomposable(&order),
        lattice.is_distributive(&order)
    );

    println!("\nGraphviz rendering of the Figure 3 lattice:\n");
    println!("{}", lattice.to_dot(describe));

    // --- The Figure 4 universe: all projections of Contacts -----------------
    let mut contact_views = SecurityViews::new(&catalog);
    contact_views
        .add_program(
            r"
            V3(x, y, z) :- Contacts(x, y, z)
            V6(x, y)    :- Contacts(x, y, z)
            V7(x, z)    :- Contacts(x, y, z)
            V8(y, z)    :- Contacts(x, y, z)
            V9(x)       :- Contacts(x, y, z)
            V10(y)      :- Contacts(x, y, z)
            V11(z)      :- Contacts(x, y, z)
            V12()       :- Contacts(x, y, z)
            ",
        )
        .expect("figure 4 views are valid");
    let order4 = RewritingOrder::new(&contact_views);
    let lattice4 = DisclosureLattice::build(&order4);
    println!(
        "Figure 4: the 8 projections of Contacts generate a lattice with {} information levels",
        lattice4.len()
    );
    println!(
        "  (decomposable: {}, distributive: {})",
        is_decomposable(&order4),
        lattice4.is_distributive(&order4)
    );
}
