//! The fused admission path end to end, served by the `DisclosureService`
//! front door: parsed queries go in, policy decisions come out, and the
//! label never leaves the packed 64-bit form between the caching labeler
//! and the sharded, interned policy store.
//!
//! The third pass shows the interned query plane: the workload's query
//! shapes are interned **once** through the service's `QueryInterner`, and
//! the steady state then streams 8-byte `QueryId`s — no per-request
//! canonical hashing at all.
//!
//! Run with `cargo run --release --example admission_pipeline`.

use std::time::Instant;

use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use fdc::policy::PrincipalId;
use fdc::service::{Operation, ServiceConfig};

fn main() {
    let ecosystem = Ecosystem::new();
    let num_principals = 10_000;
    let config = PolicyGeneratorConfig {
        max_partitions: 5,
        max_elements_per_partition: 25,
        template_pool: 500,
        seed: 0xADC,
    };

    println!("Building the disclosure service…");
    let mut service = ecosystem.disclosure_service(
        config,
        num_principals,
        ServiceConfig {
            history_cap: 0, // pure admission benchmark: no audit history
            ..ServiceConfig::default()
        },
    );
    let store = service.store();
    println!(
        "  {} principals over {} policy shards, {} distinct compiled policies, \
         {} bytes of per-principal state ({} bytes each)\n",
        store.len(),
        store.num_shards(),
        store.unique_policies(),
        store.state_bytes(),
        store.state_bytes() / store.len().max(1),
    );

    // A batch of incoming requests: round-robin principals, workload queries.
    let batch_size = 50_000;
    let mut workload = ecosystem.workload(WorkloadConfig::base(0xADC0));
    let queries = workload.batch(batch_size);
    let ops: Vec<Operation> = queries
        .iter()
        .enumerate()
        .map(|(i, query)| Operation::Submit {
            principal: PrincipalId((i % num_principals) as u32),
            query: query.clone(),
        })
        .collect();

    println!("Admitting {batch_size} requests (label → packed check, all cores)…");
    let start = Instant::now();
    let responses = service.run_batch(&ops);
    let elapsed = start.elapsed();

    let allowed = responses
        .iter()
        .filter(|r| r.decision().is_some_and(|d| d.is_allow()))
        .count();
    let (answered, refused) = service.totals();
    println!(
        "  {} allowed, {} refused in {:.1} ms ({:.2} M requests/s)\n",
        allowed,
        batch_size - allowed,
        elapsed.as_secs_f64() * 1e3,
        batch_size as f64 / elapsed.as_secs_f64() / 1e6,
    );
    assert_eq!((answered + refused) as usize, batch_size);

    // The second pass is the serving steady state: every query shape is a
    // label-cache hit, every decision a handful of bit-mask operations.
    let start = Instant::now();
    let _ = service.run_batch(&ops);
    let warm = start.elapsed();
    let stats = service.labeler().stats();
    println!(
        "Warm pass: {:.1} ms ({:.2} M requests/s); label cache: {} hits, {} misses ({:.0}% hit rate)",
        warm.as_secs_f64() * 1e3,
        batch_size as f64 / warm.as_secs_f64() / 1e6,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    );

    // Third pass on the interned plane: intern each shape once, then stream
    // dense ids — the canonical hash disappears from the hot loop.
    let interned_ops: Vec<Operation> = queries
        .iter()
        .enumerate()
        .map(|(i, query)| Operation::SubmitInterned {
            principal: PrincipalId((i % num_principals) as u32),
            query: service.intern(query),
        })
        .collect();
    let distinct = service.interner().read().unwrap().len();
    let start = Instant::now();
    let interned_responses = service.run_batch(&interned_ops);
    let interned = start.elapsed();
    assert_eq!(interned_responses.len(), batch_size);
    println!(
        "Interned pass: {:.1} ms ({:.2} M requests/s) over {} distinct interned shapes",
        interned.as_secs_f64() * 1e3,
        batch_size as f64 / interned.as_secs_f64() / 1e6,
        distinct,
    );
}
