//! The fused admission pipeline end to end: parsed queries go in, policy
//! decisions come out, and the label never leaves the packed 64-bit form
//! between the caching labeler and the sharded, interned policy store.
//!
//! The `AdmissionPipeline` is deprecated in favor of
//! `fdc::service::DisclosureService` (same fused path plus online policy
//! mutation — see `examples/dynamic_service.rs`); this example sticks with
//! the wrapper to document the frozen-workload compatibility path.
//!
//! Run with `cargo run --release --example admission_pipeline`.
#![allow(deprecated)]

use std::time::Instant;

use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{Ecosystem, WorkloadConfig};
use fdc::policy::PrincipalId;

fn main() {
    let ecosystem = Ecosystem::new();
    let num_principals = 10_000;
    let num_shards = std::thread::available_parallelism().map_or(1, |n| n.get());
    let config = PolicyGeneratorConfig {
        max_partitions: 5,
        max_elements_per_partition: 25,
        template_pool: 500,
        seed: 0xADC,
    };

    println!("Building the admission pipeline…");
    let mut pipeline = ecosystem.admission_pipeline(config, num_principals, num_shards);
    let store = pipeline.store();
    println!(
        "  {} principals over {} shards, {} distinct compiled policies, \
         {} bytes of per-principal state ({} bytes each)\n",
        store.len(),
        store.num_shards(),
        store.unique_policies(),
        store.state_bytes(),
        store.state_bytes() / store.len().max(1),
    );

    // A batch of incoming requests: round-robin principals, workload queries.
    let batch_size = 50_000;
    let mut workload = ecosystem.workload(WorkloadConfig::base(0xADC0));
    let queries = workload.batch(batch_size);
    let principals: Vec<PrincipalId> = (0..batch_size)
        .map(|i| PrincipalId((i % num_principals) as u32))
        .collect();

    println!("Admitting {batch_size} requests (label → packed check, all cores)…");
    let start = Instant::now();
    let decisions = pipeline.admit_batch(&principals, &queries);
    let elapsed = start.elapsed();

    let allowed = decisions.iter().filter(|d| d.is_allow()).count();
    let (answered, refused) = pipeline.totals();
    println!(
        "  {} allowed, {} refused in {:.1} ms ({:.2} M requests/s)\n",
        allowed,
        batch_size - allowed,
        elapsed.as_secs_f64() * 1e3,
        batch_size as f64 / elapsed.as_secs_f64() / 1e6,
    );
    assert_eq!((answered + refused) as usize, batch_size);

    // The second pass is the serving steady state: every query shape is a
    // label-cache hit, every decision a handful of bit-mask operations.
    let start = Instant::now();
    let _ = pipeline.admit_batch(&principals, &queries);
    let warm = start.elapsed();
    let stats = pipeline.labeler().stats();
    println!(
        "Warm pass: {:.1} ms ({:.2} M requests/s); label cache: {} hits, {} misses ({:.0}% hit rate)",
        warm.as_secs_f64() * 1e3,
        batch_size as f64 / warm.as_secs_f64() / 1e6,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    );
}
