//! The dynamic disclosure-control service end to end: one mixed stream of
//! admissions, permission grants/revokes and online security-view additions
//! flows through the `DisclosureService`, and the epoch-versioned label
//! caches absorb the churn without a flush.
//!
//! The run prints the served throughput together with the cache counters
//! that tell the story: mutations bump per-relation epochs
//! (`invalidations`), stale entries re-derive lazily and only for their
//! stale atoms (`query_refreshes` / `atom_refreshes`), and everything else
//! keeps hitting.  A flush-on-mutation twin serving the identical stream
//! shows what the epoch machinery saves.
//!
//! Run with `cargo run --release --example dynamic_service`.

use std::time::Instant;

use fdc::ecosystem::policies::PolicyGeneratorConfig;
use fdc::ecosystem::{ChurnConfig, Ecosystem, WorkloadConfig};
use fdc::service::{InvalidationMode, ServiceConfig};

fn main() {
    let ecosystem = Ecosystem::new();
    let num_principals = 10_000;
    let policy_config = PolicyGeneratorConfig {
        max_partitions: 5,
        max_elements_per_partition: 25,
        template_pool: 500,
        seed: 0xD15C,
    };
    let churn_config = ChurnConfig {
        mutation_ratio: 0.01,
        add_view_share: 0.1,
        check_share: 0.05,
        query_pool: 1_000,
        num_principals,
        seed: 0xD15C,
        workload: WorkloadConfig::stress(2, 0xD15D),
    };
    let warmup_ops = 5_000;
    let stream_ops = 30_000;

    println!("Building two identically seeded services ({num_principals} principals)…");
    for (label, invalidation) in [
        (
            "incremental (epoch-versioned)",
            InvalidationMode::Incremental,
        ),
        (
            "flush-on-mutation baseline",
            InvalidationMode::FlushOnMutation,
        ),
    ] {
        let mut service = ecosystem.disclosure_service(
            policy_config,
            num_principals,
            ServiceConfig {
                history_cap: 0,
                invalidation,
                ..ServiceConfig::default()
            },
        );
        let mut churn = ecosystem.churn(churn_config);
        let warmup = churn.admissions(warmup_ops);
        let stream = churn.ops(stream_ops);
        service.run_batch(&warmup);

        let start = Instant::now();
        for chunk in stream.chunks(1_024) {
            service.run_batch(chunk);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let cache = service.labeler().stats();
        let stats = service.stats();
        let (answered, refused) = service.totals();
        println!("\n{label}:");
        println!(
            "  {:.0} ops/s over {} ops ({} mutations, {} flushes)",
            stream.len() as f64 / elapsed,
            stream.len(),
            stats.mutations,
            stats.flushes,
        );
        println!(
            "  label cache: {} hits, {} misses, {} invalidations, \
             {} query refreshes, {} atom refreshes",
            cache.hits,
            cache.misses,
            cache.invalidations,
            cache.query_refreshes,
            cache.atom_refreshes,
        );
        println!("  decisions: {answered} answered, {refused} refused");
    }
    println!(
        "\nSame stream, same decisions — the incremental service just never \
         throws its cache away."
    );
}
