//! Quickstart: the Figure 1 walkthrough, end to end.
//!
//! Alice keeps her calendar and contacts on a platform; apps query that data
//! through an API.  This example builds her schema and security views,
//! labels the paper's example queries, and enforces a policy that only
//! discloses meeting time slots.
//!
//! Run with `cargo run --example quickstart`.

use fdc::core::{BitVectorLabeler, QueryLabeler, SecurityViews};
use fdc::cq::database::{evaluate, Database};
use fdc::cq::parser::parse_query;
use fdc::cq::Catalog;
use fdc::policy::{PolicyPartition, ReferenceMonitor, SecurityPolicy};

fn main() {
    // --- Schema (Figure 1a) ------------------------------------------------
    let mut catalog = Catalog::new();
    catalog
        .add_relation("Meetings", &["time", "person"])
        .expect("fresh catalog");
    catalog
        .add_relation("Contacts", &["person", "email", "position"])
        .expect("fresh catalog");

    // --- Security views (Figure 1b) -----------------------------------------
    let mut views = SecurityViews::new(&catalog);
    views
        .add_program(
            r"
            V1(x, y)    :- Meetings(x, y)
            V2(x)       :- Meetings(x, y)
            V3(x, y, z) :- Contacts(x, y, z)
            ",
        )
        .expect("the Figure 1 views are valid");
    let labeler = BitVectorLabeler::new(views.clone());

    // --- Labeling (Figure 1c) ------------------------------------------------
    let q1 = parse_query(&catalog, "Q1(x) :- Meetings(x, 'Cathy')").unwrap();
    let q2 = parse_query(
        &catalog,
        "Q2(x) :- Meetings(x, y) ∧ Contacts(y, w, 'Intern')",
    )
    .unwrap();
    let times = parse_query(&catalog, "Q3(x) :- Meetings(x, y)").unwrap();

    println!("Automatically computed disclosure labels:");
    for (name, query) in [("Q1", &q1), ("Q2", &q2), ("Q3", &times)] {
        let label = labeler.label_query(query);
        println!(
            "  {name}: {:55} needs {}",
            query.display_named(&catalog, name).to_string(),
            label.describe(&views)
        );
    }

    // --- Policy: Alice discloses V2 (time slots) but nothing more ----------
    let v2 = views.id_by_name("V2").unwrap();
    let policy =
        SecurityPolicy::stateless(PolicyPartition::from_views("time-slots-only", &views, [v2]));
    let mut monitor = ReferenceMonitor::new(policy);

    // Alice's actual data (Figure 1a) -- answered queries return real tuples.
    let database = Database::paper_example(&catalog);

    println!("\nEnforcing Alice's policy (only V2, the meeting time slots, may be disclosed):");
    for (name, query) in [("Q1", &q1), ("Q2", &q2), ("Q3", &times)] {
        let label = labeler.label_query(query);
        let decision = monitor.submit(&label);
        if decision.is_allow() {
            let answers: Vec<String> = evaluate(query, &database)
                .into_iter()
                .map(|tuple| {
                    let fields: Vec<String> = tuple.iter().map(|c| c.to_string()).collect();
                    format!("({})", fields.join(", "))
                })
                .collect();
            println!("  {name}: answered -> {}", answers.join(" "));
        } else {
            println!("  {name}: refused");
        }
    }
    println!(
        "\n{} queries answered, {} refused.",
        monitor.answered(),
        monitor.refused()
    );
}
