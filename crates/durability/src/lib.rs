//! The durable state plane: write-ahead log, checkpoints, and
//! crash-consistent recovery primitives.
//!
//! Everything above this crate (the policy store, the view registry, the
//! interner, the `DisclosureService`) is memory-only; this crate supplies
//! the three disk-side pieces the ROADMAP's "durable state plane" item
//! calls for, with **no dependencies** beyond `std`:
//!
//! * a **write-ahead log** ([`wal`]): length-prefixed, CRC-32-checksummed
//!   records appended to size-rotated segment files, flushed by *group
//!   commit* (one `fsync` per batch of appends, not per record), and read
//!   back by a torn-tail-tolerant scanner that stops cleanly at the first
//!   truncated or corrupt record;
//! * **checkpoints** ([`checkpoint`]): opaque binary snapshots written
//!   atomically (temp file + rename) with a whole-file checksum, so a
//!   crash mid-checkpoint can never shadow the previous good one;
//! * the shared **codec** ([`codec`]) and **CRC-32** ([`crc`]) helpers the
//!   two file formats (and the state serializers in the upper crates) are
//!   built from;
//! * a **virtual filesystem** ([`vfs`]): every byte the WAL and
//!   checkpoint layers touch goes through the [`Vfs`] trait, so the
//!   production [`StdVfs`] can be swapped for the deterministic
//!   fault-injecting [`FaultVfs`] (transient write errors, torn writes,
//!   fsyncgate-semantics fsync failures, `ENOSPC`, failed renames, dead
//!   disks) in the robustness suites;
//! * a **retry policy** ([`retry`]): bounded exponential backoff with
//!   jitter behind an injectable [`Clock`], governing how the WAL's
//!   commit loop recovers from transient storage failures — always by
//!   reopen-and-rewrite from the last committed offset, never by
//!   re-issuing a failed fsync over possibly-dropped pages.
//!
//! The crate knows nothing about *what* is logged or snapshotted — record
//! payloads and checkpoint bodies are byte strings to it.  The layering is
//! deliberate: `fdc-cq`, `fdc-core` and `fdc-policy` each serialize their
//! own state with the [`codec`] primitives, and `fdc-service` composes the
//! pieces into `open_durable` / `checkpoint` / `close` plus the
//! write-ahead hooks on its operation stream.
//!
//! # Crash-consistency contract
//!
//! Writers append a record (and receive its sequence number) *before*
//! applying the operation it describes; [`wal::read_log`] returns every
//! record whose length prefix, checksum and sequence number check out, in
//! order, stopping at the first that does not.  Together those two rules
//! make the log's readable prefix a prefix of the applied operation
//! stream, which is exactly what the crash-at-any-byte-prefix property
//! test (`tests/crash_recovery.rs` at the workspace root) asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod retry;
pub mod vfs;
pub mod wal;

pub use checkpoint::{
    checkpoint_seqs, checkpoint_seqs_in, latest_checkpoint, latest_checkpoint_in,
    prune_checkpoints, prune_checkpoints_in, sweep_stale_temps, sweep_stale_temps_in,
    write_checkpoint, write_checkpoint_in,
};
pub use codec::{CodecError, Cursor};
pub use retry::{Clock, InstantClock, RetryPolicy, SystemClock};
pub use vfs::{FaultCounters, FaultSchedule, FaultVfs, StdVfs, Vfs, VfsFile};
pub use wal::{
    prune_segments, prune_segments_in, read_log, read_log_in, LogContents, TailPosition, WalRecord,
    WalStats, WalWriter,
};

/// Tuning knobs for the write-ahead log's group commit and segment
/// rotation.
///
/// The defaults favour durability: every commit point syncs to disk.
/// Benchmark harnesses that only need *replayability* (not
/// power-loss-safety) can set `fsync: false` to skip the `File::sync_data`
/// calls while keeping the record format and group-commit batching
/// identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Appends are buffered and flushed together once this many records
    /// accumulate (or earlier, at an explicit
    /// [`commit`](wal::WalWriter::commit)).  `0` is treated as `1`
    /// (flush every append).
    pub group_commit: usize,
    /// A segment file is closed and a new one started once it grows past
    /// this many bytes.  `0` is treated as "never rotate".
    pub segment_bytes: u64,
    /// Whether flushes call `sync_data` on the segment file.  Disable
    /// only when crash-durability across power loss is not required.
    pub fsync: bool,
    /// How transient commit failures (`EINTR`-style write errors, torn
    /// writes, fsync failures) are retried: bounded attempts with
    /// exponential backoff and jitter.  Every retry round reopens the
    /// segment and rewrites from the last committed offset — a failed
    /// fsync is never simply re-issued (see [`retry`]).
    pub retry: RetryPolicy,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            group_commit: 64,
            segment_bytes: 8 * 1024 * 1024,
            fsync: true,
            retry: RetryPolicy::default(),
        }
    }
}

impl DurabilityConfig {
    /// Effective group-commit batch size (`0` is treated as `1`).
    pub fn batch(&self) -> usize {
        self.group_commit.max(1)
    }

    /// Effective rotation threshold, `None` meaning "never rotate".
    pub fn rotate_at(&self) -> Option<u64> {
        if self.segment_bytes == 0 {
            None
        } else {
            Some(self.segment_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_durable() {
        let config = DurabilityConfig::default();
        assert!(config.fsync);
        assert_eq!(config.batch(), 64);
        assert_eq!(config.rotate_at(), Some(8 * 1024 * 1024));
    }

    #[test]
    fn zero_knobs_have_sane_meanings() {
        let config = DurabilityConfig {
            group_commit: 0,
            segment_bytes: 0,
            fsync: false,
            ..DurabilityConfig::default()
        };
        assert_eq!(config.batch(), 1);
        assert_eq!(config.rotate_at(), None);
    }
}
