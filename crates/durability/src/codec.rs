//! The little-endian binary codec shared by the WAL record payloads, the
//! checkpoint bodies, and the per-crate state serializers built on top.
//!
//! Encoding is by plain `put_*` free functions appending to a `Vec<u8>`;
//! decoding goes through a position-tracking [`Cursor`] whose every read
//! is bounds-checked and returns a [`CodecError`] carrying the byte
//! offset of the failure — no decoder in the workspace panics on
//! truncated or hostile input.

use std::fmt;

/// A decode failure, carrying the byte offset at which it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value being read was complete.
    UnexpectedEof {
        /// Byte offset at which more input was needed.
        offset: usize,
    },
    /// The bytes were well-formed at the framing level but semantically
    /// invalid (bad magic, out-of-range tag, mismatched count, ...).
    Invalid {
        /// Byte offset of the offending value.
        offset: usize,
        /// What was wrong.
        what: String,
    },
}

impl CodecError {
    /// Builds an [`CodecError::Invalid`] at `offset`.
    pub fn invalid(offset: usize, what: impl Into<String>) -> Self {
        CodecError::Invalid {
            offset,
            what: what.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            CodecError::Invalid { offset, what } => write!(f, "{what} at byte {offset}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends an `i64`, little-endian.
pub fn put_i64(out: &mut Vec<u8>, value: i64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `usize` as a `u64` (the formats are 64-bit on every host).
pub fn put_len(out: &mut Vec<u8>, value: usize) {
    put_u64(out, value as u64);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, value: &str) {
    put_len(out, value.len());
    out.extend_from_slice(value.as_bytes());
}

/// Appends length-prefixed raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, value: &[u8]) {
    put_len(out, value.len());
    out.extend_from_slice(value);
}

/// A bounds-checked, position-tracking reader over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Current byte offset (also the offset reported in errors).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the cursor consumed its input exactly.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::invalid(
                self.pos,
                format!("{} trailing bytes after the last field", self.remaining()),
            ))
        }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { offset: self.pos });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let bytes = self.take(8)?;
        Ok(i64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a [`put_len`] length prefix, rejecting values that could not
    /// possibly fit in the remaining input (so hostile prefixes cannot
    /// drive huge allocations).
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let at = self.pos;
        let raw = self.u64()?;
        if raw > self.remaining() as u64 {
            return Err(CodecError::invalid(
                at,
                format!(
                    "length prefix {raw} exceeds {} remaining bytes",
                    self.remaining()
                ),
            ));
        }
        Ok(raw as usize)
    }

    /// Reads a count prefix where each counted element occupies at least
    /// `min_element_bytes` of further input — same hostile-input guard as
    /// [`Cursor::len`] for element counts rather than byte lengths.
    pub fn count(&mut self, min_element_bytes: usize) -> Result<usize, CodecError> {
        let at = self.pos;
        let raw = self.u64()?;
        let min = min_element_bytes.max(1) as u64;
        if raw > self.remaining() as u64 / min {
            return Err(CodecError::invalid(
                at,
                format!("element count {raw} exceeds what the remaining input could hold"),
            ));
        }
        Ok(raw as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let at = self.pos;
        let len = self.len()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::invalid(at, "invalid UTF-8 string"))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.len()?;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_i64(&mut out, -42);
        put_str(&mut out, "views");
        put_bytes(&mut out, &[1, 2, 3]);
        let mut cursor = Cursor::new(&out);
        assert_eq!(cursor.u8().unwrap(), 7);
        assert_eq!(cursor.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(cursor.u64().unwrap(), u64::MAX - 1);
        assert_eq!(cursor.i64().unwrap(), -42);
        assert_eq!(cursor.str().unwrap(), "views");
        assert_eq!(cursor.bytes().unwrap(), &[1, 2, 3]);
        cursor.expect_end().unwrap();
    }

    #[test]
    fn truncation_reports_offset() {
        let mut out = Vec::new();
        put_u64(&mut out, 9);
        out.truncate(5);
        let mut cursor = Cursor::new(&out);
        assert_eq!(cursor.u64(), Err(CodecError::UnexpectedEof { offset: 0 }));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut cursor = Cursor::new(&out);
        assert!(matches!(cursor.len(), Err(CodecError::Invalid { .. })));
        let mut cursor = Cursor::new(&out);
        assert!(matches!(cursor.count(24), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn invalid_utf8_is_an_error_not_a_panic() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xFF, 0xFE]);
        let mut cursor = Cursor::new(&out);
        assert!(matches!(cursor.str(), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn trailing_bytes_fail_expect_end() {
        let bytes = [0u8; 3];
        let mut cursor = Cursor::new(&bytes);
        cursor.u8().unwrap();
        let err = cursor.expect_end().unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }
}
