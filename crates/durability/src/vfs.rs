//! The virtual filesystem the durable state plane does all its I/O
//! through — and the fault-injecting test implementation that makes the
//! plane's failure behavior testable at all.
//!
//! Every file operation the WAL and checkpoint layers perform goes
//! through the [`Vfs`] trait (directory listing, whole-file reads,
//! handle-based writes, fsync, rename, remove).  Production code uses
//! [`StdVfs`], a zero-cost passthrough to `std::fs`.  Tests use
//! [`FaultVfs`], which wraps another `Vfs` and injects **deterministic,
//! seedable** faults:
//!
//! * *transient write errors* — `EINTR`-style [`io::ErrorKind::Interrupted`]
//!   failures where nothing reached the file;
//! * *torn writes* — a prefix of the buffer lands, then the write errors
//!   (what a crash or a short `write(2)` loop leaves behind);
//! * *fsync failures with fsyncgate semantics* — the sync errors **and
//!   the unsynced bytes are dropped** (truncated back to the last
//!   successfully synced length).  A subsequent fsync on the same handle
//!   *succeeds without restoring the data*, exactly the POSIX trap that
//!   makes "just retry the fsync" silently lose writes: the only sound
//!   recovery is to reopen and rewrite from the last durable offset;
//! * *`ENOSPC`* — [`io::ErrorKind::StorageFull`] on writes and file
//!   creation, which no retry can fix;
//! * *rename failures* — the atomic-install step of a checkpoint fails,
//!   leaving the temp file behind.
//!
//! On top of the probabilistic schedule, [`FaultVfs::fail_permanently`]
//! models a dead disk (every write-side operation errors until
//! [`FaultVfs::heal`]), which is what drives the service's
//! degraded-mode transitions in the fault-injection suites.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One writable file handle obtained from a [`Vfs`].
///
/// The surface is exactly what the WAL and checkpoint writers need:
/// append-positioned writes, data/metadata sync, truncation and
/// end-seeking (for resuming onto a torn tail).
pub trait VfsFile: Send + fmt::Debug {
    /// Writes the whole buffer at the current position.  On error the
    /// file is in an unknown state — an unknown prefix of `buf` may have
    /// landed — so callers must recover by truncating to a known-good
    /// offset and rewriting, never by blindly re-issuing the write.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Syncs file *data* to stable storage.  A failure follows fsyncgate
    /// semantics: bytes written since the last successful sync may be
    /// lost, and a later successful sync does **not** resurrect them.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Syncs data and metadata to stable storage (same failure contract
    /// as [`sync_data`](Self::sync_data)).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends with zeros) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Positions at end-of-file, returning the offset.
    fn seek_end(&mut self) -> io::Result<u64>;
}

/// The filesystem surface of the durable state plane.
///
/// Implementations must be shareable across threads ([`Send`] +
/// [`Sync`]); the production [`StdVfs`] is stateless and the fault
/// injector synchronizes internally.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads a whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for reading and writing.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` to `to` (both in the same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of the entries of `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Best-effort directory sync (persists renames where the platform
    /// supports syncing a directory handle).  Failures are swallowed by
    /// callers — there is no portable recovery.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Length of the file at `path` in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
}

/// The production [`Vfs`]: a zero-state passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

/// A real [`File`] behind the [`VfsFile`] surface.
#[derive(Debug)]
struct StdFile(File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        self.0.seek(SeekFrom::End(0))
    }
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }
}

/// Per-fault injection rates, in events per 1000 write-side operations
/// (`0` disables a fault kind).  The schedule is driven by a seeded
/// deterministic generator: the same seed over the same operation
/// sequence injects the same faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Transient (`Interrupted`) write failures where nothing lands.
    pub write_transient_per_mille: u16,
    /// Torn writes: a prefix lands, then the write errors.
    pub torn_write_per_mille: u16,
    /// Fsync failures with fsyncgate semantics (unsynced bytes dropped).
    pub fsync_failure_per_mille: u16,
    /// `StorageFull` on writes and file creation.
    pub enospc_per_mille: u16,
    /// Rename failures (checkpoint installs).
    pub rename_failure_per_mille: u16,
}

impl FaultSchedule {
    /// A schedule that injects nothing (pure passthrough).
    pub fn quiet(seed: u64) -> Self {
        FaultSchedule {
            seed,
            ..FaultSchedule::default()
        }
    }
}

/// How many of each fault kind a [`FaultVfs`] has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Transient write errors injected.
    pub transient_writes: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Fsync failures injected.
    pub fsync_failures: u64,
    /// `StorageFull` errors injected.
    pub enospc: u64,
    /// Rename failures injected.
    pub rename_failures: u64,
    /// Operations rejected because the disk is permanently failed.
    pub permanent_rejections: u64,
}

/// Shared mutable state of a [`FaultVfs`]: the deterministic fault
/// stream, the injected-fault counters, and the dead-disk switch.
#[derive(Debug)]
struct FaultState {
    rng: u64,
    schedule: FaultSchedule,
    counters: FaultCounters,
    permanent: bool,
}

impl FaultState {
    /// Advances the xorshift64* stream one step.
    fn next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws one event with probability `per_mille`/1000.
    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next() % 1000 < per_mille as u64
    }
}

/// The decision the fault stream made for one write.
enum WriteFault {
    None,
    Transient,
    /// Write this many bytes of the buffer, then error.
    Torn(usize),
    StorageFull,
    Permanent,
}

/// A fault-injecting [`Vfs`] wrapping an inner one (usually [`StdVfs`]
/// over a scratch directory).
///
/// All handles issued by one `FaultVfs` share its fault stream, so a
/// single seed determines the whole run.  Cloning shares the state.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// Wraps `inner` with the fault `schedule`.
    pub fn new(inner: Arc<dyn Vfs>, schedule: FaultSchedule) -> Self {
        FaultVfs {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                rng: scramble_seed(schedule.seed),
                schedule,
                counters: FaultCounters::default(),
                permanent: false,
            })),
        }
    }

    /// Replaces the fault schedule (and reseeds the fault stream from
    /// it).  Lets tests set up real files through a quiet schedule and
    /// only then arm the faults.
    pub fn set_schedule(&self, schedule: FaultSchedule) {
        let mut state = self.lock();
        state.rng = scramble_seed(schedule.seed);
        state.schedule = schedule;
    }

    /// A `FaultVfs` over the real filesystem.
    pub fn over_std(schedule: FaultSchedule) -> Self {
        FaultVfs::new(Arc::new(StdVfs), schedule)
    }

    /// Kills the disk: every subsequent write-side operation (write,
    /// sync, create, rename, remove) fails until [`heal`](Self::heal).
    /// Reads keep working — a degraded service still serves from what
    /// it has in memory and recovery can still scan surviving files.
    pub fn fail_permanently(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .permanent = true;
    }

    /// Brings the disk back: write-side operations succeed again
    /// (subject to the probabilistic schedule).
    pub fn heal(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .permanent = false;
    }

    /// Whether the disk is currently in the permanently-failed state.
    pub fn is_failed(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .permanent
    }

    /// How many faults of each kind have been injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .counters
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Rolls the fault stream for one write of `len` bytes.
    fn write_fault(&self, len: usize) -> WriteFault {
        let mut state = self.lock();
        let schedule = state.schedule;
        if state.permanent {
            state.counters.permanent_rejections += 1;
            return WriteFault::Permanent;
        }
        if state.roll(schedule.enospc_per_mille) {
            state.counters.enospc += 1;
            return WriteFault::StorageFull;
        }
        if state.roll(schedule.write_transient_per_mille) {
            state.counters.transient_writes += 1;
            return WriteFault::Transient;
        }
        if state.roll(schedule.torn_write_per_mille) {
            state.counters.torn_writes += 1;
            let cut = if len <= 1 {
                0
            } else {
                state.next() as usize % len
            };
            return WriteFault::Torn(cut);
        }
        WriteFault::None
    }

    /// Rolls the fault stream for one fsync.
    fn fsync_fault(&self) -> bool {
        let mut state = self.lock();
        let schedule = state.schedule;
        if state.permanent {
            state.counters.permanent_rejections += 1;
            return true;
        }
        if state.roll(schedule.fsync_failure_per_mille) {
            state.counters.fsync_failures += 1;
            return true;
        }
        false
    }

    /// Rolls the fault stream for a metadata operation (create, rename,
    /// remove): permanent failure plus, for renames, the scheduled rate.
    fn metadata_fault(&self, rename: bool) -> Option<io::Error> {
        let mut state = self.lock();
        let schedule = state.schedule;
        if state.permanent {
            state.counters.permanent_rejections += 1;
            return Some(dead_disk());
        }
        if rename && state.roll(schedule.rename_failure_per_mille) {
            state.counters.rename_failures += 1;
            return Some(io::Error::other("injected rename failure"));
        }
        None
    }
}

/// SplitMix64-style scramble so adjacent seeds (`42`, `43`) start the
/// xorshift stream in unrelated states; never returns zero.
fn scramble_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z | 1
}

/// The error a permanently-failed disk answers with.
fn dead_disk() -> io::Error {
    io::Error::other("injected permanent disk failure")
}

/// A handle issued by [`FaultVfs`]: wraps the inner handle, tracks the
/// last successfully synced length for fsyncgate semantics.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    vfs: FaultVfs,
    /// Bytes written through this handle that are known durable (length
    /// at the last successful sync; starts at the open length).
    synced_len: u64,
    /// Current file length as this handle sees it.
    len: u64,
    /// Set once an fsync failed: the unsynced bytes were dropped, and
    /// later syncs succeed *without* restoring them (fsyncgate).
    poisoned: bool,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.vfs.write_fault(buf.len()) {
            WriteFault::None => {
                self.inner.write_all(buf)?;
                self.len += buf.len() as u64;
                Ok(())
            }
            WriteFault::Transient => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient write failure",
            )),
            WriteFault::Torn(cut) => {
                self.inner.write_all(&buf[..cut])?;
                self.len += cut as u64;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected torn write",
                ))
            }
            WriteFault::StorageFull => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            WriteFault::Permanent => Err(dead_disk()),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        if self.vfs.fsync_fault() {
            // Fsyncgate: the unsynced bytes are gone.  The *next* sync
            // on this handle reports success over the already-shrunk
            // file — retrying the fsync can never get the data back.
            let _ = self.inner.set_len(self.synced_len);
            let _ = self.inner.seek_end();
            self.len = self.synced_len;
            self.poisoned = true;
            return Err(io::Error::other(
                "injected fsync failure (unsynced data lost)",
            ));
        }
        self.inner.sync_data()?;
        self.synced_len = self.len;
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        if self.vfs.fsync_fault() {
            let _ = self.inner.set_len(self.synced_len);
            let _ = self.inner.seek_end();
            self.len = self.synced_len;
            self.poisoned = true;
            return Err(io::Error::other(
                "injected fsync failure (unsynced data lost)",
            ));
        }
        self.inner.sync_all()?;
        self.synced_len = self.len;
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)?;
        self.len = len;
        self.synced_len = self.synced_len.min(len);
        Ok(())
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        self.inner.seek_end()
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if let Some(err) = self.metadata_fault(false) {
            return Err(err);
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            vfs: self.clone(),
            synced_len: 0,
            len: 0,
            poisoned: false,
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if let Some(err) = self.metadata_fault(false) {
            return Err(err);
        }
        let len = self.inner.file_len(path)?;
        let inner = self.inner.open_rw(path)?;
        Ok(Box::new(FaultFile {
            inner,
            vfs: self.clone(),
            // A freshly opened file's on-disk bytes are as durable as
            // they will ever be: treat them as the synced baseline.
            synced_len: len,
            len,
            poisoned: false,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(err) = self.metadata_fault(true) {
            return Err(err);
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if let Some(err) = self.metadata_fault(false) {
            return Err(err);
        }
        self.inner.remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.fsync_fault() {
            return Err(io::Error::other("injected directory sync failure"));
        }
        self.inner.sync_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }
}

/// A scratch-dir helper shared by this crate's fault tests.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fdc_vfs_test_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_vfs_round_trips_files() {
        let dir = test_dir("std_round_trip");
        let vfs = StdVfs;
        let path = dir.join("file.bin");
        let mut file = vfs.create(&path).unwrap();
        file.write_all(b"hello ").unwrap();
        file.write_all(b"world").unwrap();
        file.sync_all().unwrap();
        drop(file);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        assert_eq!(vfs.file_len(&path).unwrap(), 11);
        assert!(vfs.exists(&path));
        let renamed = dir.join("renamed.bin");
        vfs.rename(&path, &renamed).unwrap();
        assert!(!vfs.exists(&path));
        assert_eq!(vfs.list(&dir).unwrap(), vec!["renamed.bin".to_owned()]);
        vfs.remove_file(&renamed).unwrap();
        assert!(vfs.list(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let dir = test_dir(&format!("determinism_{seed}"));
            let vfs = FaultVfs::over_std(FaultSchedule {
                seed,
                write_transient_per_mille: 200,
                torn_write_per_mille: 100,
                fsync_failure_per_mille: 150,
                ..FaultSchedule::default()
            });
            let mut file = vfs.create(&dir.join("f")).unwrap();
            for i in 0..200u8 {
                let _ = file.write_all(&[i; 16]);
                let _ = file.sync_data();
            }
            let counters = vfs.counters();
            fs::remove_dir_all(&dir).unwrap();
            counters
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same faults");
        assert!(
            a.transient_writes > 0 && a.torn_writes > 0 && a.fsync_failures > 0,
            "the schedule must actually fire: {a:?}"
        );
        assert_ne!(a, run(43), "different seed, different faults");
    }

    #[test]
    fn fsync_failure_drops_unsynced_bytes_and_later_syncs_lie() {
        let dir = test_dir("fsyncgate");
        let vfs = FaultVfs::over_std(FaultSchedule::quiet(7));
        let path = dir.join("f");
        let mut file = vfs.create(&path).unwrap();
        file.write_all(b"durable|").unwrap();
        file.sync_data().unwrap();
        file.write_all(b"doomed").unwrap();
        vfs.fail_permanently();
        assert!(file.sync_data().is_err(), "the dying fsync must error");
        vfs.heal();
        // Fsyncgate: the retried fsync *succeeds* but the unsynced
        // bytes are already gone.
        file.sync_data().unwrap();
        drop(file);
        assert_eq!(vfs.read(&path).unwrap(), b"durable|");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_leaves_a_prefix() {
        let dir = test_dir("torn");
        let vfs = FaultVfs::over_std(FaultSchedule {
            seed: 11,
            torn_write_per_mille: 1000,
            ..FaultSchedule::default()
        });
        let path = dir.join("f");
        let mut file = vfs.create(&path).unwrap();
        let err = file.write_all(&[0xAB; 64]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        drop(file);
        let on_disk = vfs.read(&path).unwrap();
        assert!(on_disk.len() < 64, "the write must be torn");
        assert!(on_disk.iter().all(|&b| b == 0xAB));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permanent_failure_rejects_writes_until_healed() {
        let dir = test_dir("permanent");
        let vfs = FaultVfs::over_std(FaultSchedule::quiet(3));
        let path = dir.join("f");
        let mut file = vfs.create(&path).unwrap();
        file.write_all(b"before").unwrap();
        file.sync_data().unwrap();
        vfs.fail_permanently();
        assert!(file.write_all(b"x").is_err());
        assert!(vfs.create(&dir.join("g")).is_err());
        assert!(vfs.rename(&path, &dir.join("h")).is_err());
        assert!(vfs.is_failed());
        // Reads keep serving from the dead disk's surviving bytes.
        assert_eq!(vfs.read(&path).unwrap(), b"before");
        vfs.heal();
        file.write_all(b"|after").unwrap();
        file.sync_data().unwrap();
        assert!(vfs.counters().permanent_rejections >= 3);
        drop(file);
        assert_eq!(vfs.read(&path).unwrap(), b"before|after");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_is_storage_full() {
        let dir = test_dir("enospc");
        let vfs = FaultVfs::over_std(FaultSchedule {
            seed: 5,
            enospc_per_mille: 1000,
            ..FaultSchedule::default()
        });
        let mut file = vfs.create(&dir.join("f")).unwrap();
        let err = file.write_all(b"data").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(vfs.counters().enospc, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rename_faults_fire_on_schedule() {
        let dir = test_dir("rename_fault");
        let vfs = FaultVfs::over_std(FaultSchedule {
            seed: 9,
            rename_failure_per_mille: 1000,
            ..FaultSchedule::default()
        });
        fs::write(dir.join("a"), b"x").unwrap();
        let err = vfs.rename(&dir.join("a"), &dir.join("b")).unwrap_err();
        assert!(err.to_string().contains("injected rename failure"));
        assert!(
            vfs.exists(&dir.join("a")),
            "a failed rename changes nothing"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
