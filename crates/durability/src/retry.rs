//! Bounded retry with exponential backoff and jitter, behind an
//! injectable clock so fault tests run instantly.
//!
//! The policy is deliberately narrow: it governs **transient** storage
//! errors only — `EINTR`-style interruptions where the kernel did
//! nothing and asking again is sound.  It explicitly does *not* govern
//! fsync failures: after a failed fsync the page cache may have dropped
//! the unsynced pages (fsyncgate), so "retry the fsync" can report
//! success over lost data.  The WAL's commit loop therefore recovers
//! from a failed fsync by *reopening the segment and rewriting* the
//! still-buffered bytes from the last known-synced offset — the backoff
//! schedule here only paces those recovery rounds, it never re-issues
//! the same fsync.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A source of "wait a bit" for backoff, injectable so tests never
/// actually sleep.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Blocks (or pretends to) for `duration`.
    fn sleep(&self, duration: Duration);
}

/// The production [`Clock`]: really sleeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// A test [`Clock`] that returns immediately and records how long it
/// *would* have slept, so backoff schedules are assertable without
/// slowing the suite down.
#[derive(Debug, Default)]
pub struct InstantClock {
    slept_micros: AtomicU64,
    sleeps: AtomicU64,
}

impl InstantClock {
    /// A fresh instant clock with zeroed counters.
    pub fn new() -> Self {
        InstantClock::default()
    }

    /// Total virtual time slept so far.
    pub fn slept(&self) -> Duration {
        Duration::from_micros(self.slept_micros.load(Ordering::Relaxed))
    }

    /// How many times [`sleep`](Clock::sleep) was called.
    pub fn sleep_count(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }
}

impl Clock for InstantClock {
    fn sleep(&self, duration: Duration) {
        self.slept_micros
            .fetch_add(duration.as_micros() as u64, Ordering::Relaxed);
        self.sleeps.fetch_add(1, Ordering::Relaxed);
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt `n` (zero-based) waits `base * 2^n`, capped at `max`, plus a
/// seeded pseudo-random jitter of up to half the capped delay — enough
/// spread to keep concurrent writers from thundering in lockstep, while
/// staying reproducible for a given `(jitter_seed, salt)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times to retry after the first failure (`0` disables
    /// retrying entirely).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay_micros: u64,
    /// Upper bound any single backoff is capped at.
    pub max_delay_micros: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay_micros: 1_000,
            max_delay_micros: 100_000,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every failure is final).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Whether `attempt` (zero-based count of failures so far, i.e. the
    /// first failure is attempt `0`) still has a retry left.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }

    /// The backoff before retry number `attempt` (zero-based).  `salt`
    /// lets independent retry sites draw different jitter from the same
    /// policy.
    pub fn delay_for(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_delay_micros
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay_micros);
        if exp == 0 {
            return Duration::ZERO;
        }
        // SplitMix64-style scramble: cheap, stateless, deterministic.
        let mut z = self
            .jitter_seed
            .wrapping_add(salt)
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = z % (exp / 2 + 1);
        Duration::from_micros(exp + jitter)
    }
}

/// Whether an I/O error is transient in the `EINTR` sense — the
/// operation did nothing and re-issuing it verbatim is sound.
///
/// Fsync failures never reach this predicate: the commit loop treats
/// them as "data possibly lost" and recovers by rewrite, not retry.
pub fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay_micros: 100,
            max_delay_micros: 1_000,
            jitter_seed: 1,
        };
        let base = |attempt| policy.delay_for(attempt, 0).as_micros() as u64;
        // Jitter adds at most half: delay is within [exp, 1.5 * exp].
        assert!((100..=150).contains(&base(0)));
        assert!((200..=300).contains(&base(1)));
        assert!((400..=600).contains(&base(2)));
        for attempt in 4..10 {
            assert!((1_000..=1_500).contains(&base(attempt)), "capped at max");
        }
    }

    #[test]
    fn jitter_is_deterministic_but_salt_sensitive() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.delay_for(2, 7), policy.delay_for(2, 7));
        assert_ne!(policy.delay_for(2, 7), policy.delay_for(2, 8));
    }

    #[test]
    fn none_never_retries() {
        let policy = RetryPolicy::none();
        assert!(!policy.should_retry(0));
    }

    #[test]
    fn transient_kinds_are_exactly_the_eintr_family() {
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::Interrupted,
            ""
        )));
        assert!(is_transient(&io::Error::new(io::ErrorKind::WouldBlock, "")));
        assert!(is_transient(&io::Error::new(io::ErrorKind::TimedOut, "")));
        assert!(!is_transient(&io::Error::new(
            io::ErrorKind::StorageFull,
            ""
        )));
        assert!(!is_transient(&io::Error::other("")));
    }

    #[test]
    fn instant_clock_records_instead_of_sleeping() {
        let clock = InstantClock::new();
        clock.sleep(Duration::from_micros(250));
        clock.sleep(Duration::from_micros(750));
        assert_eq!(clock.slept(), Duration::from_micros(1_000));
        assert_eq!(clock.sleep_count(), 2);
    }
}
