//! CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` variant), table-based.
//!
//! Every WAL record and every checkpoint file carries one of these
//! checksums; corruption anywhere in a payload flips the check and the
//! readers treat the record (or the whole checkpoint) as absent.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Incremental CRC-32 state.
///
/// ```
/// use fdc_durability::crc::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &byte in bytes {
            let idx = ((self.state ^ byte as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[idx];
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut crc = Crc32::new();
        crc.update(b"hello ");
        crc.update(b"world");
        assert_eq!(crc.finish(), crc32(b"hello world"));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let a = crc32(b"disclosure");
        let b = crc32(b"disclosurf");
        assert_ne!(a, b);
    }
}
