//! The write-ahead log: size-rotated segment files of length-prefixed,
//! CRC-checksummed, sequence-numbered records.
//!
//! # On-disk format
//!
//! A log is a directory of segment files named
//! `wal-<first_seq:020>.log` (zero-padded so lexicographic order is
//! sequence order).  Each segment is:
//!
//! ```text
//! header:  magic  b"FDCWAL01"          8 bytes
//!          version u32 LE  (= 1)       4 bytes
//!          first_seq u64 LE            8 bytes
//! records: [ len u32 LE                4 bytes   (payload length)
//!            crc u32 LE                4 bytes   (CRC-32 of seq ++ payload)
//!            seq u64 LE                8 bytes
//!            payload                   len bytes ] *
//! ```
//!
//! Sequence numbers are assigned by the writer, strictly increasing by
//! one across segment boundaries; the first record of a segment carries
//! the segment's `first_seq`.
//!
//! # Torn tails
//!
//! A crash can leave the last record half-written (or, with buffered
//! group commit, absent entirely).  [`read_log`] accepts that: it
//! returns every record whose frame, checksum and sequence number are
//! intact, **stopping at the first that is not**, reports where the
//! valid prefix ends as a [`TailPosition`] so a resuming [`WalWriter`]
//! can truncate the torn bytes and continue appending at the next
//! sequence number, and counts the discarded bytes and residual record
//! frames so recovery can tell a clean shutdown from a truncation.
//!
//! # Failure policy
//!
//! All I/O goes through a [`Vfs`], so the fault-injection suites can
//! exercise every failure path.  A commit that fails *transiently*
//! (`EINTR`-style write errors, torn writes, fsync failures) is retried
//! under the configured [`RetryPolicy`](crate::retry::RetryPolicy) — but never by re-issuing the
//! same syscall over unknown file state.  Each retry round **reopens
//! the segment, truncates it back to the last known-committed length,
//! and rewrites the still-buffered bytes** before syncing again; this
//! is the only sound recovery under fsyncgate semantics, where a failed
//! fsync may have dropped the unsynced pages for good.  `ENOSPC` and
//! exhausted retries are final: the writer poisons itself (best-effort
//! truncating any torn tail first) and the service layer degrades to
//! read-only serving instead of panicking.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crc::Crc32;
use crate::retry::{is_transient, Clock, SystemClock};
use crate::vfs::{StdVfs, Vfs, VfsFile};
use crate::DurabilityConfig;

/// Segment file magic: "FDC WAL format 01".
pub const SEGMENT_MAGIC: &[u8; 8] = b"FDCWAL01";
/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Bytes of segment header before the first record.
pub const SEGMENT_HEADER_LEN: u64 = 20;
/// Bytes of record framing before the payload (`len + crc + seq`).
pub const RECORD_HEADER_LEN: usize = 16;

/// Largest accepted record payload (a sanity bound for the reader — a
/// corrupt length prefix must not look like a plausible giant record).
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// Builds the file name of the segment whose first record is `first_seq`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// One intact record read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's sequence number.
    pub seq: u64,
    /// The record's payload, exactly as appended.
    pub payload: Vec<u8>,
}

/// Where the valid prefix of the log ends — the position a resuming
/// writer continues from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailPosition {
    /// The segment holding the last valid record and the byte length of
    /// its valid prefix (anything past it is torn and must be
    /// truncated), or `None` if the directory holds no segments.
    pub active_segment: Option<(PathBuf, u64)>,
    /// The sequence number the next appended record must carry.  `1`
    /// when the directory holds no segments at all (callers recovering
    /// from a checkpoint take the max of this and `checkpoint_seq + 1`).
    pub next_seq: u64,
}

/// Everything [`read_log`] found: the valid record prefix, the tail
/// position for a resuming writer, and how much was left behind.
#[derive(Debug)]
pub struct LogContents {
    /// All intact records, in sequence order.
    pub records: Vec<WalRecord>,
    /// Where the valid prefix ends.
    pub tail: TailPosition,
    /// Bytes past the valid prefix that the scan discarded: the torn
    /// tail of the active segment plus any unreachable later segments.
    /// `0` means the log was cleanly closed.
    pub discarded_bytes: u64,
    /// Residual record frames inside those discarded bytes (complete
    /// frames that failed their checksum or sequence check, plus one for
    /// a trailing partial frame).  A lower bound on lost records.
    pub discarded_records: u64,
}

/// Health counters of one [`WalWriter`], cheap enough to keep always-on
/// and surfaced through the service stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended (buffered; not necessarily yet committed).
    pub appends: u64,
    /// Successful group commits (write + optional fsync reached disk).
    pub commits: u64,
    /// Successful `sync_data` calls on segment files.
    pub fsyncs: u64,
    /// Failed `sync_data` calls (each one triggers reopen-and-rewrite
    /// recovery, never a naive re-fsync).
    pub fsync_failures: u64,
    /// Retry rounds taken by commits that eventually succeeded or died.
    pub retries: u64,
    /// Times a segment was reopened and truncated back to its committed
    /// length to recover from a failed write or fsync.
    pub segment_recoveries: u64,
    /// Records made durable by successful commits.
    pub records_committed: u64,
    /// Largest number of records a single successful commit flushed
    /// (the observed group-commit batch high-water mark).
    pub max_commit_records: u64,
}

impl WalStats {
    /// Folds another stats snapshot into this one (sums, except the
    /// batch high-water mark which takes the max).  The service layer
    /// uses this to carry counters across writer replacements.
    pub fn absorb(&mut self, other: WalStats) {
        self.appends += other.appends;
        self.commits += other.commits;
        self.fsyncs += other.fsyncs;
        self.fsync_failures += other.fsync_failures;
        self.retries += other.retries;
        self.segment_recoveries += other.segment_recoveries;
        self.records_committed += other.records_committed;
        self.max_commit_records = self.max_commit_records.max(other.max_commit_records);
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Lists segment files in `dir`, sorted by the `first_seq` encoded in
/// their names.
fn list_segments(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for name in vfs.list(dir)? {
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, dir.join(&name)));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Encodes one record frame (header + payload) into `out`.
fn encode_record(out: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    debug_assert!(payload.len() as u64 <= MAX_RECORD_LEN as u64);
    let mut crc = Crc32::new();
    crc.update(&seq.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scans one segment's bytes.  Returns the records that check out, the
/// byte length of the valid prefix, and whether the scan was `clean`
/// (reached end-of-file without meeting a torn or corrupt record).
///
/// `expected_seq` is the sequence number the first record must carry
/// (`None` lets the segment header decide).
fn scan_segment(
    bytes: &[u8],
    expected_first: Option<u64>,
    records: &mut Vec<WalRecord>,
) -> io::Result<(u64, bool, u64)> {
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return Err(invalid("segment shorter than its header".into()));
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return Err(invalid("bad segment magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SEGMENT_VERSION {
        return Err(invalid(format!("unsupported segment version {version}")));
    }
    let first_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if let Some(expected) = expected_first {
        if first_seq != expected {
            return Err(invalid(format!(
                "segment first_seq {first_seq} does not continue the log (expected {expected})"
            )));
        }
    }
    let mut pos = SEGMENT_HEADER_LEN as usize;
    let mut next_seq = first_seq;
    loop {
        if bytes.len() - pos < RECORD_HEADER_LEN {
            // End of file (clean) or a torn frame header (not clean).
            return Ok((pos as u64, bytes.len() == pos, next_seq));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8 bytes"));
        if len > MAX_RECORD_LEN || bytes.len() - pos - RECORD_HEADER_LEN < len as usize {
            return Ok((pos as u64, false, next_seq));
        }
        let payload = &bytes[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len as usize];
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(payload);
        if crc.finish() != stored_crc || seq != next_seq {
            return Ok((pos as u64, false, next_seq));
        }
        records.push(WalRecord {
            seq,
            payload: payload.to_vec(),
        });
        pos += RECORD_HEADER_LEN + len as usize;
        next_seq = seq + 1;
    }
}

/// Counts record frames in the discarded region starting at `pos`:
/// complete frames (whatever their checksum says) plus one for any
/// trailing partial frame.  A lower bound on records lost to the tear.
fn count_residual_frames(bytes: &[u8], mut pos: usize) -> u64 {
    let mut count = 0;
    while bytes.len().saturating_sub(pos) >= RECORD_HEADER_LEN {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break;
        }
        let frame = RECORD_HEADER_LEN + len as usize;
        if bytes.len() - pos < frame {
            break;
        }
        count += 1;
        pos += frame;
    }
    if pos < bytes.len() {
        count += 1;
    }
    count
}

/// Reads the whole log back: every intact record in order, stopping at
/// the first truncated or corrupt one (a *torn tail*), plus the
/// [`TailPosition`] a resuming writer continues from.
///
/// Records must be sequence-contiguous; a record whose number breaks the
/// chain (as a mid-log corruption would produce) also stops the scan.
/// Structural damage *before* any record — a missing header, wrong
/// magic, an impossible version — is reported as an error rather than an
/// empty log, so operator mistakes (pointing at the wrong directory)
/// are not silently "recovered" from.
///
/// Everything past the valid prefix is accounted in
/// [`LogContents::discarded_bytes`] and
/// [`LogContents::discarded_records`] rather than silently dropped.
pub fn read_log(dir: &Path) -> io::Result<LogContents> {
    read_log_in(&StdVfs, dir)
}

/// [`read_log`] through an explicit [`Vfs`].
pub fn read_log_in(vfs: &dyn Vfs, dir: &Path) -> io::Result<LogContents> {
    let segments = list_segments(vfs, dir)?;
    let mut records = Vec::new();
    let mut tail = TailPosition {
        active_segment: None,
        next_seq: 1,
    };
    let mut discarded_bytes = 0u64;
    let mut discarded_records = 0u64;
    let mut expected_first: Option<u64> = None;
    // Once the chain breaks, every later segment is unreachable: count
    // it as discarded instead of scanning it.
    let mut stopped = false;
    for (index, (_, path)) in segments.iter().enumerate() {
        if stopped {
            discarded_bytes += vfs.file_len(path).unwrap_or(0);
            continue;
        }
        let bytes = vfs.read(path)?;
        let scanned = scan_segment(&bytes, expected_first, &mut records);
        let (valid_len, clean, next_seq) = match scanned {
            Ok(result) => result,
            Err(err) if index == 0 && records.is_empty() => return Err(err),
            // A later segment that does not continue the chain is
            // unreachable past the valid prefix: stop at the previous
            // tail (already recorded below).
            Err(_) => {
                stopped = true;
                discarded_bytes += bytes.len() as u64;
                if bytes.len() as u64 > SEGMENT_HEADER_LEN {
                    discarded_records += count_residual_frames(&bytes, SEGMENT_HEADER_LEN as usize);
                }
                continue;
            }
        };
        tail = TailPosition {
            active_segment: Some((path.clone(), valid_len)),
            next_seq,
        };
        if !clean {
            stopped = true;
            discarded_bytes += bytes.len() as u64 - valid_len;
            discarded_records += count_residual_frames(&bytes, valid_len as usize);
            continue;
        }
        expected_first = Some(next_seq);
    }
    Ok(LogContents {
        records,
        tail,
        discarded_bytes,
        discarded_records,
    })
}

/// Deletes every segment made wholly redundant by a checkpoint at
/// `upto_seq`: segment `i` can go once a *later* segment exists whose
/// `first_seq <= upto_seq + 1` (every record the deleted segment holds
/// is then both below the checkpoint and not the replay start point).
pub fn prune_segments(dir: &Path, upto_seq: u64) -> io::Result<usize> {
    prune_segments_in(&StdVfs, dir, upto_seq)
}

/// [`prune_segments`] through an explicit [`Vfs`].
pub fn prune_segments_in(vfs: &dyn Vfs, dir: &Path, upto_seq: u64) -> io::Result<usize> {
    let segments = list_segments(vfs, dir)?;
    let mut removed = 0;
    for window in segments.windows(2) {
        let (_, ref path) = window[0];
        let (next_first, _) = window[1];
        if next_first <= upto_seq + 1 {
            vfs.remove_file(path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Which stage of a commit failed — the distinction matters because a
/// failed *write* may be retried after truncating back to known-good
/// state, while a failed *fsync* must additionally assume the unsynced
/// pages are gone (both recover via reopen-and-rewrite; neither ever
/// re-issues the failing call over unknown state).
enum FlushStage {
    Write,
    Sync,
}

/// The appending side of the log: group-committed, size-rotated, with
/// bounded retry-and-rewrite recovery on transient storage failures.
///
/// Appends buffer in memory and reach the file (and, if configured, the
/// disk) at *commit points*: automatically once
/// [`DurabilityConfig::group_commit`] appends accumulate, or explicitly
/// via [`commit`](WalWriter::commit).  Callers enforce the write-ahead
/// invariant by committing before applying the logged operations.
///
/// A commit that fails past its retry budget **poisons** the writer:
/// the buffered records are dropped (after a best-effort truncation of
/// any torn bytes), and every later call fails fast.  The service layer
/// responds by degrading to read-only serving and replacing the writer
/// once a checkpoint lands on a recovered disk.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    config: DurabilityConfig,
    vfs: Arc<dyn Vfs>,
    clock: Arc<dyn Clock>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Bytes of the current segment known committed (written, and synced
    /// when fsync is on).  Recovery truncates back to this offset.
    committed_len: u64,
    /// `committed_len` plus the bytes buffered in `buf` (what the
    /// segment will hold after the next successful commit) — the size
    /// rotation is decided on.
    segment_len: u64,
    next_seq: u64,
    buf: Vec<u8>,
    pending: usize,
    poisoned: bool,
    stats: WalStats,
}

impl WalWriter {
    /// Starts a fresh segment in `dir` (created if absent) whose first
    /// record will carry `first_seq`, on the production [`StdVfs`].
    pub fn create(dir: &Path, config: DurabilityConfig, first_seq: u64) -> io::Result<Self> {
        Self::create_in(
            Arc::new(StdVfs),
            Arc::new(SystemClock),
            dir,
            config,
            first_seq,
        )
    }

    /// [`create`](Self::create) through an explicit [`Vfs`] and
    /// [`Clock`].
    pub fn create_in(
        vfs: Arc<dyn Vfs>,
        clock: Arc<dyn Clock>,
        dir: &Path,
        config: DurabilityConfig,
        first_seq: u64,
    ) -> io::Result<Self> {
        vfs.create_dir_all(dir)?;
        let (file, path, segment_len, retries) =
            Self::new_segment(vfs.as_ref(), clock.as_ref(), &config, dir, first_seq)?;
        let stats = WalStats {
            retries,
            ..WalStats::default()
        };
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            config,
            vfs,
            clock,
            file,
            path,
            committed_len: segment_len,
            segment_len,
            next_seq: first_seq,
            buf: Vec::new(),
            pending: 0,
            poisoned: false,
            stats,
        })
    }

    /// Resumes appending after [`read_log`] on the production
    /// [`StdVfs`]: truncates the torn tail of the active segment (if
    /// any), removes any unreachable later segments, and continues at
    /// `tail.next_seq`.
    ///
    /// `min_next_seq` guards the case where every segment was pruned
    /// after a checkpoint: when the directory is empty the writer starts
    /// at `max(tail.next_seq, min_next_seq)` (callers pass
    /// `checkpoint_seq + 1`).
    pub fn resume(
        dir: &Path,
        config: DurabilityConfig,
        tail: &TailPosition,
        min_next_seq: u64,
    ) -> io::Result<Self> {
        Self::resume_in(
            Arc::new(StdVfs),
            Arc::new(SystemClock),
            dir,
            config,
            tail,
            min_next_seq,
        )
    }

    /// [`resume`](Self::resume) through an explicit [`Vfs`] and
    /// [`Clock`].
    pub fn resume_in(
        vfs: Arc<dyn Vfs>,
        clock: Arc<dyn Clock>,
        dir: &Path,
        config: DurabilityConfig,
        tail: &TailPosition,
        min_next_seq: u64,
    ) -> io::Result<Self> {
        vfs.create_dir_all(dir)?;
        let Some((path, valid_len)) = &tail.active_segment else {
            return Self::create_in(vfs, clock, dir, config, tail.next_seq.max(min_next_seq));
        };
        // Segments past the active one are unreachable (their records
        // sit beyond a torn or corrupt region): remove them so rotation
        // cannot collide with a stale file.
        for (first_seq, other) in list_segments(vfs.as_ref(), dir)? {
            if first_seq >= tail.next_seq && other != *path {
                vfs.remove_file(&other)?;
            }
        }
        let mut file = vfs.open_rw(path)?;
        file.set_len(*valid_len)?;
        file.seek_end()?;
        if config.fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            config,
            vfs,
            clock,
            file,
            path: path.clone(),
            committed_len: *valid_len,
            segment_len: *valid_len,
            next_seq: tail.next_seq,
            buf: Vec::new(),
            pending: 0,
            poisoned: false,
            stats: WalStats::default(),
        })
    }

    /// Creates the next segment file and writes its header, retrying
    /// transient failures by re-creating (which truncates any torn
    /// header bytes).  Returns the retry rounds taken alongside the
    /// handle so the caller can fold them into its stats.
    fn new_segment(
        vfs: &dyn Vfs,
        clock: &dyn Clock,
        config: &DurabilityConfig,
        dir: &Path,
        first_seq: u64,
    ) -> io::Result<(Box<dyn VfsFile>, PathBuf, u64, u64)> {
        let path = dir.join(segment_file_name(first_seq));
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&first_seq.to_le_bytes());
        let mut attempt = 0u32;
        loop {
            let attempted = vfs.create(&path).and_then(|mut file| {
                file.write_all(&header)?;
                Ok(file)
            });
            match attempted {
                Ok(file) => return Ok((file, path, SEGMENT_HEADER_LEN, u64::from(attempt))),
                Err(err) if is_transient(&err) && config.retry.should_retry(attempt) => {
                    clock.sleep(config.retry.delay_for(attempt, first_seq));
                    attempt += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// The sequence number the next [`append`](WalWriter::append) will
    /// return.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This writer's health counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Whether a fatal commit failure has poisoned this writer (every
    /// later append or commit fails fast until it is replaced).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn poisoned_err() -> io::Error {
        io::Error::other(
            "write-ahead log writer is poisoned by an earlier unrecoverable commit failure",
        )
    }

    /// Appends one record, returning its sequence number.  The record
    /// may still be buffered when this returns; it is on disk once the
    /// group-commit batch fills or [`commit`](WalWriter::commit) runs.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        assert!(
            payload.len() as u64 <= MAX_RECORD_LEN as u64,
            "WAL record payload exceeds MAX_RECORD_LEN"
        );
        if self.poisoned {
            return Err(Self::poisoned_err());
        }
        if let Some(limit) = self.config.rotate_at() {
            if self.segment_len >= limit {
                self.rotate()?;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let before = self.buf.len();
        encode_record(&mut self.buf, seq, payload);
        self.segment_len += (self.buf.len() - before) as u64;
        self.pending += 1;
        self.stats.appends += 1;
        if self.pending >= self.config.batch() {
            self.commit()?;
        }
        Ok(seq)
    }

    /// One flush attempt: write the buffered bytes, then (if configured)
    /// sync.  On failure reports which stage died — the caller recovers
    /// by reopen-and-rewrite, never by repeating the failed call.
    fn try_flush(&mut self) -> Result<(), (FlushStage, io::Error)> {
        self.file
            .write_all(&self.buf)
            .map_err(|err| (FlushStage::Write, err))?;
        if self.config.fsync {
            match self.file.sync_data() {
                Ok(()) => self.stats.fsyncs += 1,
                Err(err) => {
                    self.stats.fsync_failures += 1;
                    return Err((FlushStage::Sync, err));
                }
            }
        }
        Ok(())
    }

    /// Reopens the current segment, truncates it back to the committed
    /// length and positions at its end — the only sound way to retry
    /// after a torn write or a failed fsync (whose unsynced pages may be
    /// gone for good).
    fn reopen_segment(&mut self) -> io::Result<()> {
        let mut file = self.vfs.open_rw(&self.path)?;
        file.set_len(self.committed_len)?;
        file.seek_end()?;
        self.file = file;
        self.stats.segment_recoveries += 1;
        Ok(())
    }

    /// Flushes every buffered append to the file and (if
    /// [`DurabilityConfig::fsync`]) to disk: the group-commit point.
    ///
    /// Transient failures are retried under the configured
    /// [`RetryPolicy`](crate::retry::RetryPolicy), each round truncating back to the committed
    /// offset and rewriting the whole buffer.  A failure that exhausts
    /// the budget (or is final to begin with, like `ENOSPC`) poisons the
    /// writer and returns the error; the buffered records are dropped so
    /// an operation the caller rejected can never resurface on replay.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(Self::poisoned_err());
        }
        if self.buf.is_empty() {
            self.pending = 0;
            return Ok(());
        }
        let policy = self.config.retry;
        let mut attempt = 0u32;
        loop {
            let (stage, err) = match self.try_flush() {
                Ok(()) => {
                    self.committed_len += self.buf.len() as u64;
                    debug_assert_eq!(self.committed_len, self.segment_len);
                    self.buf.clear();
                    self.stats.commits += 1;
                    self.stats.records_committed += self.pending as u64;
                    self.stats.max_commit_records =
                        self.stats.max_commit_records.max(self.pending as u64);
                    self.pending = 0;
                    return Ok(());
                }
                Err(failure) => failure,
            };
            // A failed *write* left the file in an unknown state only if
            // it was transient/torn; `ENOSPC` and hard errors are final.
            // A failed *sync* is always recoverable-by-rewrite (the data
            // may be dropped, but the bytes are still in `buf`) — what
            // is never sound is re-issuing the same fsync.
            let recoverable = match stage {
                FlushStage::Write => is_transient(&err),
                FlushStage::Sync => true,
            };
            if recoverable && policy.should_retry(attempt) {
                self.stats.retries += 1;
                self.clock.sleep(policy.delay_for(attempt, self.next_seq));
                attempt += 1;
                match self.reopen_segment() {
                    Ok(()) => continue,
                    Err(reopen_err) => return self.poison(reopen_err),
                }
            }
            return self.poison(err);
        }
    }

    /// Fatal-failure path: best-effort truncation of any torn bytes (so
    /// a record the caller is about to reject cannot survive on disk),
    /// then drop the buffer and fail fast forever after.
    fn poison(&mut self, err: io::Error) -> io::Result<()> {
        if let Ok(mut file) = self.vfs.open_rw(&self.path) {
            let _ = file.set_len(self.committed_len);
        }
        self.segment_len = self.committed_len;
        self.buf.clear();
        self.pending = 0;
        self.poisoned = true;
        Err(err)
    }

    /// Closes the current segment and starts the next one at the current
    /// sequence position.  Commits first, so the old segment is complete
    /// on disk before the new one exists.  Checkpointing callers rotate
    /// right after writing a checkpoint so the covered segment becomes
    /// eligible for [`prune_segments`].
    pub fn rotate(&mut self) -> io::Result<()> {
        self.commit()?;
        let (file, path, segment_len, retries) = Self::new_segment(
            self.vfs.as_ref(),
            self.clock.as_ref(),
            &self.config,
            &self.dir,
            self.next_seq,
        )?;
        self.stats.retries += retries;
        self.file = file;
        self.path = path;
        self.committed_len = segment_len;
        self.segment_len = segment_len;
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort final flush; explicit `commit` is the durable path.
        if !self.poisoned {
            let _ = self.commit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::{InstantClock, RetryPolicy};
    use crate::vfs::{FaultSchedule, FaultVfs};
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdc_wal_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_fsync() -> DurabilityConfig {
        DurabilityConfig {
            fsync: false,
            ..DurabilityConfig::default()
        }
    }

    #[test]
    fn round_trips_records_in_order() {
        let dir = temp_dir("round_trip");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..10u8 {
            assert_eq!(writer.append(&[i; 3]).unwrap(), 1 + i as u64);
        }
        writer.commit().unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 10);
        assert_eq!(log.records[4].seq, 5);
        assert_eq!(log.records[4].payload, vec![4u8; 3]);
        assert_eq!(log.tail.next_seq, 11);
        assert_eq!(log.discarded_bytes, 0, "a clean log discards nothing");
        assert_eq!(log.discarded_records, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_batch_or_commit() {
        let dir = temp_dir("group_commit");
        let config = DurabilityConfig {
            group_commit: 4,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let mut writer = WalWriter::create(&dir, config, 1).unwrap();
        writer.append(b"a").unwrap();
        writer.append(b"b").unwrap();
        // Not yet at the batch size: nothing past the header on disk.
        assert_eq!(read_log(&dir).unwrap().records.len(), 0);
        writer.append(b"c").unwrap();
        writer.append(b"d").unwrap();
        // Fourth append hit the batch size: all four are on disk.
        assert_eq!(read_log(&dir).unwrap().records.len(), 4);
        writer.append(b"e").unwrap();
        writer.commit().unwrap();
        assert_eq!(read_log(&dir).unwrap().records.len(), 5);
        let stats = writer.stats();
        assert_eq!(stats.appends, 5);
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.records_committed, 5);
        assert_eq!(stats.max_commit_records, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_reader_spans_them() {
        let dir = temp_dir("rotation");
        let config = DurabilityConfig {
            group_commit: 1,
            segment_bytes: 64,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let mut writer = WalWriter::create(&dir, config, 1).unwrap();
        for i in 0..20u64 {
            writer.append(&i.to_le_bytes()).unwrap();
        }
        writer.commit().unwrap();
        assert!(list_segments(&StdVfs, &dir).unwrap().len() > 1);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 20);
        assert_eq!(log.tail.next_seq, 21);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_truncation_point() {
        let dir = temp_dir("torn_tail");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..5u8 {
            writer.append(&[i; 7]).unwrap();
        }
        writer.commit().unwrap();
        drop(writer);
        let path = dir.join(segment_file_name(1));
        let full = fs::read(&path).unwrap();
        for cut in (SEGMENT_HEADER_LEN as usize)..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let log = read_log(&dir).unwrap();
            let complete = (cut - SEGMENT_HEADER_LEN as usize) / (RECORD_HEADER_LEN + 7);
            assert_eq!(log.records.len(), complete, "cut at byte {cut}");
            assert_eq!(log.tail.next_seq, complete as u64 + 1);
            let valid = SEGMENT_HEADER_LEN + (complete * (RECORD_HEADER_LEN + 7)) as u64;
            assert_eq!(log.discarded_bytes, cut as u64 - valid, "cut at byte {cut}");
            assert_eq!(log.discarded_records, u64::from(cut as u64 != valid));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_the_scan_and_counts_the_residue() {
        let dir = temp_dir("corrupt");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..4u8 {
            writer.append(&[i; 8]).unwrap();
        }
        writer.commit().unwrap();
        drop(writer);
        let path = dir.join(segment_file_name(1));
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the third record.
        let record_len = RECORD_HEADER_LEN + 8;
        let offset = SEGMENT_HEADER_LEN as usize + 2 * record_len + RECORD_HEADER_LEN + 3;
        bytes[offset] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.tail.next_seq, 3);
        // The corrupt record and the (unreachable) intact one after it.
        assert_eq!(log.discarded_bytes, 2 * record_len as u64);
        assert_eq!(log.discarded_records, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_torn_tail_and_continues_the_sequence() {
        let dir = temp_dir("resume");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..3u8 {
            writer.append(&[i; 4]).unwrap();
        }
        writer.commit().unwrap();
        drop(writer);
        let path = dir.join(segment_file_name(1));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 2);
        let mut writer = WalWriter::resume(&dir, no_fsync(), &log.tail, 1).unwrap();
        assert_eq!(writer.next_seq(), 3);
        writer.append(b"resumed").unwrap();
        writer.commit().unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.records[2].payload, b"resumed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_on_empty_directory_honours_min_next_seq() {
        let dir = temp_dir("resume_empty");
        let log = read_log(&dir).unwrap();
        assert!(log.records.is_empty());
        let writer = WalWriter::resume(&dir, no_fsync(), &log.tail, 42).unwrap();
        assert_eq!(writer.next_seq(), 42);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_only_checkpoint_covered_segments() {
        let dir = temp_dir("prune");
        let config = DurabilityConfig {
            group_commit: 1,
            segment_bytes: 48,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let mut writer = WalWriter::create(&dir, config, 1).unwrap();
        for i in 0..12u64 {
            writer.append(&i.to_le_bytes()).unwrap();
        }
        writer.commit().unwrap();
        let before = list_segments(&StdVfs, &dir).unwrap();
        assert!(before.len() >= 3);
        // A checkpoint at the last record covers every non-final segment.
        let removed = prune_segments(&dir, 12).unwrap();
        assert_eq!(removed, before.len() - 1);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.tail.next_seq, 13);
        // A checkpoint below the first surviving record removes nothing.
        assert_eq!(prune_segments(&dir, 0).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_directory_is_an_error_not_an_empty_log() {
        let dir = temp_dir("wrong_dir");
        fs::write(dir.join(segment_file_name(1)), b"not a wal segment at all").unwrap();
        assert!(read_log(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A writer over a `FaultVfs` with instant backoff, for fault
    /// tests.  The segment is created under a quiet schedule; the real
    /// one is armed only once the writer exists, so each test exercises
    /// exactly the append/commit path it means to.
    fn fault_writer(
        dir: &Path,
        config: DurabilityConfig,
        schedule: FaultSchedule,
    ) -> (WalWriter, FaultVfs, Arc<InstantClock>) {
        let vfs = FaultVfs::over_std(FaultSchedule::quiet(schedule.seed));
        let clock = Arc::new(InstantClock::new());
        let writer =
            WalWriter::create_in(Arc::new(vfs.clone()), clock.clone(), dir, config, 1).unwrap();
        vfs.set_schedule(schedule);
        (writer, vfs, clock)
    }

    #[test]
    fn transient_write_errors_are_retried_to_success() {
        let dir = temp_dir("retry_transient");
        let config = DurabilityConfig {
            group_commit: 1,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let schedule = FaultSchedule {
            seed: 77,
            write_transient_per_mille: 300,
            ..FaultSchedule::default()
        };
        let (mut writer, vfs, clock) = fault_writer(&dir, config, schedule);
        for i in 0..200u64 {
            writer.append(&i.to_le_bytes()).unwrap();
        }
        writer.commit().unwrap();
        let stats = writer.stats();
        assert!(stats.retries > 0, "the schedule must have forced retries");
        assert_eq!(stats.retries, clock.sleep_count(), "each retry backs off");
        assert!(vfs.counters().transient_writes > 0);
        drop(writer);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 200, "every committed record survives");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_writes_recover_by_truncate_and_rewrite() {
        let dir = temp_dir("retry_torn");
        let config = DurabilityConfig {
            group_commit: 4,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let schedule = FaultSchedule {
            seed: 1234,
            torn_write_per_mille: 250,
            ..FaultSchedule::default()
        };
        let (mut writer, vfs, _clock) = fault_writer(&dir, config, schedule);
        for i in 0..200u64 {
            writer.append(&i.to_le_bytes()).unwrap();
        }
        writer.commit().unwrap();
        assert!(vfs.counters().torn_writes > 0);
        assert!(writer.stats().segment_recoveries > 0);
        drop(writer);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 200);
        for (i, record) in log.records.iter().enumerate() {
            assert_eq!(record.payload, (i as u64).to_le_bytes());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failures_recover_by_rewrite_not_refsync() {
        let dir = temp_dir("retry_fsync");
        let config = DurabilityConfig {
            group_commit: 1,
            fsync: true,
            ..DurabilityConfig::default()
        };
        let schedule = FaultSchedule {
            seed: 99,
            fsync_failure_per_mille: 250,
            ..FaultSchedule::default()
        };
        let (mut writer, vfs, _clock) = fault_writer(&dir, config, schedule);
        for i in 0..100u64 {
            writer.append(&i.to_le_bytes()).unwrap();
        }
        writer.commit().unwrap();
        let stats = writer.stats();
        assert!(stats.fsync_failures > 0, "the schedule must hit fsyncs");
        assert_eq!(stats.fsync_failures, vfs.counters().fsync_failures);
        assert!(
            stats.segment_recoveries >= stats.fsync_failures,
            "every failed fsync must reopen-and-rewrite, never re-fsync"
        );
        drop(writer);
        let log = read_log(&dir).unwrap();
        assert_eq!(
            log.records.len(),
            100,
            "fsyncgate loses no committed record"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dead_disk_poisons_the_writer_and_sheds_the_buffer() {
        let dir = temp_dir("dead_disk");
        let config = DurabilityConfig {
            group_commit: 1,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let (mut writer, vfs, _clock) = fault_writer(&dir, config, FaultSchedule::quiet(1));
        writer.append(b"acked").unwrap();
        writer.commit().unwrap();
        vfs.fail_permanently();
        let err = writer.append(b"doomed").unwrap_err();
        assert!(err.to_string().contains("injected permanent disk failure"));
        assert!(writer.is_poisoned());
        // Poisoned: even after the disk heals, this writer refuses.
        vfs.heal();
        assert!(writer.append(b"late").is_err());
        assert!(writer.commit().is_err());
        drop(writer);
        // Only the acknowledged record survives; the rejected one can
        // never resurface on replay.
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.records[0].payload, b"acked");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_is_final_not_retried() {
        let dir = temp_dir("enospc_final");
        let config = DurabilityConfig {
            group_commit: 1,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let schedule = FaultSchedule {
            seed: 6,
            enospc_per_mille: 1000,
            ..FaultSchedule::default()
        };
        let (mut writer, _vfs, clock) = fault_writer(&dir, config, schedule);
        let err = writer.append(b"wont fit").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(clock.sleep_count(), 0, "ENOSPC must not back off and retry");
        assert!(writer.is_poisoned());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_retries_poison_with_bounded_backoff() {
        let dir = temp_dir("exhausted");
        let retry = RetryPolicy {
            max_retries: 3,
            base_delay_micros: 100,
            max_delay_micros: 1_000,
            jitter_seed: 5,
        };
        let config = DurabilityConfig {
            group_commit: 1,
            fsync: false,
            retry,
            ..DurabilityConfig::default()
        };
        let schedule = FaultSchedule {
            seed: 21,
            write_transient_per_mille: 1000,
            ..FaultSchedule::default()
        };
        let (mut writer, _vfs, clock) = fault_writer(&dir, config, schedule);
        assert!(writer.append(b"never lands").is_err());
        assert_eq!(clock.sleep_count(), 3, "exactly max_retries backoffs");
        assert!(writer.is_poisoned());
        fs::remove_dir_all(&dir).unwrap();
    }
}
