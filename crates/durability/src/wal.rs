//! The write-ahead log: size-rotated segment files of length-prefixed,
//! CRC-checksummed, sequence-numbered records.
//!
//! # On-disk format
//!
//! A log is a directory of segment files named
//! `wal-<first_seq:020>.log` (zero-padded so lexicographic order is
//! sequence order).  Each segment is:
//!
//! ```text
//! header:  magic  b"FDCWAL01"          8 bytes
//!          version u32 LE  (= 1)       4 bytes
//!          first_seq u64 LE            8 bytes
//! records: [ len u32 LE                4 bytes   (payload length)
//!            crc u32 LE                4 bytes   (CRC-32 of seq ++ payload)
//!            seq u64 LE                8 bytes
//!            payload                   len bytes ] *
//! ```
//!
//! Sequence numbers are assigned by the writer, strictly increasing by
//! one across segment boundaries; the first record of a segment carries
//! the segment's `first_seq`.
//!
//! # Torn tails
//!
//! A crash can leave the last record half-written (or, with buffered
//! group commit, absent entirely).  [`read_log`] accepts that: it
//! returns every record whose frame, checksum and sequence number are
//! intact, **stopping at the first that is not**, and reports where the
//! valid prefix ends as a [`TailPosition`] so a resuming
//! [`WalWriter`] can truncate the torn bytes and continue appending at
//! the next sequence number.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::Crc32;
use crate::DurabilityConfig;

/// Segment file magic: "FDC WAL format 01".
pub const SEGMENT_MAGIC: &[u8; 8] = b"FDCWAL01";
/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Bytes of segment header before the first record.
pub const SEGMENT_HEADER_LEN: u64 = 20;
/// Bytes of record framing before the payload (`len + crc + seq`).
pub const RECORD_HEADER_LEN: usize = 16;

/// Largest accepted record payload (a sanity bound for the reader — a
/// corrupt length prefix must not look like a plausible giant record).
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// Builds the file name of the segment whose first record is `first_seq`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// One intact record read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's sequence number.
    pub seq: u64,
    /// The record's payload, exactly as appended.
    pub payload: Vec<u8>,
}

/// Where the valid prefix of the log ends — the position a resuming
/// writer continues from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailPosition {
    /// The segment holding the last valid record and the byte length of
    /// its valid prefix (anything past it is torn and must be
    /// truncated), or `None` if the directory holds no segments.
    pub active_segment: Option<(PathBuf, u64)>,
    /// The sequence number the next appended record must carry.  `1`
    /// when the directory holds no segments at all (callers recovering
    /// from a checkpoint take the max of this and `checkpoint_seq + 1`).
    pub next_seq: u64,
}

/// Everything [`read_log`] found: the valid record prefix plus the tail
/// position for a resuming writer.
#[derive(Debug)]
pub struct LogContents {
    /// All intact records, in sequence order.
    pub records: Vec<WalRecord>,
    /// Where the valid prefix ends.
    pub tail: TailPosition,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Lists segment files in `dir`, sorted by the `first_seq` encoded in
/// their names.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Encodes one record frame (header + payload) into `out`.
fn encode_record(out: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    debug_assert!(payload.len() as u64 <= MAX_RECORD_LEN as u64);
    let mut crc = Crc32::new();
    crc.update(&seq.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scans one segment's bytes.  Returns the records that check out, the
/// byte length of the valid prefix, and whether the scan was `clean`
/// (reached end-of-file without meeting a torn or corrupt record).
///
/// `expected_seq` is the sequence number the first record must carry
/// (`None` lets the segment header decide).
fn scan_segment(
    bytes: &[u8],
    expected_first: Option<u64>,
    records: &mut Vec<WalRecord>,
) -> io::Result<(u64, bool, u64)> {
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return Err(invalid("segment shorter than its header".into()));
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return Err(invalid("bad segment magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SEGMENT_VERSION {
        return Err(invalid(format!("unsupported segment version {version}")));
    }
    let first_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if let Some(expected) = expected_first {
        if first_seq != expected {
            return Err(invalid(format!(
                "segment first_seq {first_seq} does not continue the log (expected {expected})"
            )));
        }
    }
    let mut pos = SEGMENT_HEADER_LEN as usize;
    let mut next_seq = first_seq;
    loop {
        if bytes.len() - pos < RECORD_HEADER_LEN {
            // End of file (clean) or a torn frame header (not clean).
            return Ok((pos as u64, bytes.len() == pos, next_seq));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8 bytes"));
        if len > MAX_RECORD_LEN || bytes.len() - pos - RECORD_HEADER_LEN < len as usize {
            return Ok((pos as u64, false, next_seq));
        }
        let payload = &bytes[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len as usize];
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(payload);
        if crc.finish() != stored_crc || seq != next_seq {
            return Ok((pos as u64, false, next_seq));
        }
        records.push(WalRecord {
            seq,
            payload: payload.to_vec(),
        });
        pos += RECORD_HEADER_LEN + len as usize;
        next_seq = seq + 1;
    }
}

/// Reads the whole log back: every intact record in order, stopping at
/// the first truncated or corrupt one (a *torn tail*), plus the
/// [`TailPosition`] a resuming writer continues from.
///
/// Records must be sequence-contiguous; a record whose number breaks the
/// chain (as a mid-log corruption would produce) also stops the scan.
/// Structural damage *before* any record — a missing header, wrong
/// magic, an impossible version — is reported as an error rather than an
/// empty log, so operator mistakes (pointing at the wrong directory)
/// are not silently "recovered" from.
pub fn read_log(dir: &Path) -> io::Result<LogContents> {
    let segments = list_segments(dir)?;
    let mut records = Vec::new();
    let mut tail = TailPosition {
        active_segment: None,
        next_seq: 1,
    };
    let mut expected_first: Option<u64> = None;
    for (index, (_, path)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let scanned = scan_segment(&bytes, expected_first, &mut records);
        let (valid_len, clean, next_seq) = match scanned {
            Ok(result) => result,
            Err(err) if index == 0 && records.is_empty() => return Err(err),
            // A later segment that does not continue the chain is
            // unreachable past the valid prefix: stop at the previous
            // tail (already recorded below).
            Err(_) => break,
        };
        tail = TailPosition {
            active_segment: Some((path.clone(), valid_len)),
            next_seq,
        };
        if !clean {
            break;
        }
        expected_first = Some(next_seq);
    }
    Ok(LogContents { records, tail })
}

/// Deletes every segment made wholly redundant by a checkpoint at
/// `upto_seq`: segment `i` can go once a *later* segment exists whose
/// `first_seq <= upto_seq + 1` (every record the deleted segment holds
/// is then both below the checkpoint and not the replay start point).
pub fn prune_segments(dir: &Path, upto_seq: u64) -> io::Result<usize> {
    let segments = list_segments(dir)?;
    let mut removed = 0;
    for window in segments.windows(2) {
        let (_, ref path) = window[0];
        let (next_first, _) = window[1];
        if next_first <= upto_seq + 1 {
            fs::remove_file(path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// The appending side of the log: group-committed, size-rotated.
///
/// Appends buffer in memory and reach the file (and, if configured, the
/// disk) at *commit points*: automatically once
/// [`DurabilityConfig::group_commit`] appends accumulate, or explicitly
/// via [`commit`](WalWriter::commit).  Callers enforce the write-ahead
/// invariant by committing before applying the logged operations.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    config: DurabilityConfig,
    file: File,
    /// Bytes already in `file` plus bytes pending in `buf`.
    segment_len: u64,
    next_seq: u64,
    buf: Vec<u8>,
    pending: usize,
}

impl WalWriter {
    /// Starts a fresh segment in `dir` (created if absent) whose first
    /// record will carry `first_seq`.
    pub fn create(dir: &Path, config: DurabilityConfig, first_seq: u64) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let (file, segment_len) = Self::new_segment(dir, first_seq)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            config,
            file,
            segment_len,
            next_seq: first_seq,
            buf: Vec::new(),
            pending: 0,
        })
    }

    /// Resumes appending after [`read_log`]: truncates the torn tail of
    /// the active segment (if any), removes any unreachable later
    /// segments, and continues at `tail.next_seq`.
    ///
    /// `min_next_seq` guards the case where every segment was pruned
    /// after a checkpoint: when the directory is empty the writer starts
    /// at `max(tail.next_seq, min_next_seq)` (callers pass
    /// `checkpoint_seq + 1`).
    pub fn resume(
        dir: &Path,
        config: DurabilityConfig,
        tail: &TailPosition,
        min_next_seq: u64,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let Some((path, valid_len)) = &tail.active_segment else {
            return Self::create(dir, config, tail.next_seq.max(min_next_seq));
        };
        // Segments past the active one are unreachable (their records
        // sit beyond a torn or corrupt region): remove them so rotation
        // cannot collide with a stale file.
        for (first_seq, other) in list_segments(dir)? {
            if first_seq >= tail.next_seq && other != *path {
                fs::remove_file(&other)?;
            }
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(*valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        if config.fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            config,
            file,
            segment_len: *valid_len,
            next_seq: tail.next_seq,
            buf: Vec::new(),
            pending: 0,
        })
    }

    fn new_segment(dir: &Path, first_seq: u64) -> io::Result<(File, u64)> {
        let path = dir.join(segment_file_name(first_seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&first_seq.to_le_bytes());
        file.write_all(&header)?;
        Ok((file, SEGMENT_HEADER_LEN))
    }

    /// The sequence number the next [`append`](WalWriter::append) will
    /// return.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record, returning its sequence number.  The record
    /// may still be buffered when this returns; it is on disk once the
    /// group-commit batch fills or [`commit`](WalWriter::commit) runs.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        assert!(
            payload.len() as u64 <= MAX_RECORD_LEN as u64,
            "WAL record payload exceeds MAX_RECORD_LEN"
        );
        if let Some(limit) = self.config.rotate_at() {
            if self.segment_len >= limit {
                self.rotate()?;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let before = self.buf.len();
        encode_record(&mut self.buf, seq, payload);
        self.segment_len += (self.buf.len() - before) as u64;
        self.pending += 1;
        if self.pending >= self.config.batch() {
            self.commit()?;
        }
        Ok(seq)
    }

    /// Flushes every buffered append to the file and (if
    /// [`DurabilityConfig::fsync`]) to disk: the group-commit point.
    pub fn commit(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
            if self.config.fsync {
                self.file.sync_data()?;
            }
        }
        self.pending = 0;
        Ok(())
    }

    /// Closes the current segment and starts the next one at the current
    /// sequence position.  Commits first, so the old segment is complete
    /// on disk before the new one exists.  Checkpointing callers rotate
    /// right after writing a checkpoint so the covered segment becomes
    /// eligible for [`prune_segments`].
    pub fn rotate(&mut self) -> io::Result<()> {
        self.commit()?;
        let (file, segment_len) = Self::new_segment(&self.dir, self.next_seq)?;
        self.file = file;
        self.segment_len = segment_len;
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort final flush; explicit `commit` is the durable path.
        let _ = self.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdc_wal_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_fsync() -> DurabilityConfig {
        DurabilityConfig {
            fsync: false,
            ..DurabilityConfig::default()
        }
    }

    #[test]
    fn round_trips_records_in_order() {
        let dir = temp_dir("round_trip");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..10u8 {
            assert_eq!(writer.append(&[i; 3]).unwrap(), 1 + i as u64);
        }
        writer.commit().unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 10);
        assert_eq!(log.records[4].seq, 5);
        assert_eq!(log.records[4].payload, vec![4u8; 3]);
        assert_eq!(log.tail.next_seq, 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_batch_or_commit() {
        let dir = temp_dir("group_commit");
        let config = DurabilityConfig {
            group_commit: 4,
            fsync: false,
            ..DurabilityConfig::default()
        };
        let mut writer = WalWriter::create(&dir, config, 1).unwrap();
        writer.append(b"a").unwrap();
        writer.append(b"b").unwrap();
        // Not yet at the batch size: nothing past the header on disk.
        assert_eq!(read_log(&dir).unwrap().records.len(), 0);
        writer.append(b"c").unwrap();
        writer.append(b"d").unwrap();
        // Fourth append hit the batch size: all four are on disk.
        assert_eq!(read_log(&dir).unwrap().records.len(), 4);
        writer.append(b"e").unwrap();
        writer.commit().unwrap();
        assert_eq!(read_log(&dir).unwrap().records.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_reader_spans_them() {
        let dir = temp_dir("rotation");
        let config = DurabilityConfig {
            group_commit: 1,
            segment_bytes: 64,
            fsync: false,
        };
        let mut writer = WalWriter::create(&dir, config, 1).unwrap();
        for i in 0..20u64 {
            writer.append(&i.to_le_bytes()).unwrap();
        }
        writer.commit().unwrap();
        assert!(list_segments(&dir).unwrap().len() > 1);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 20);
        assert_eq!(log.tail.next_seq, 21);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_truncation_point() {
        let dir = temp_dir("torn_tail");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..5u8 {
            writer.append(&[i; 7]).unwrap();
        }
        writer.commit().unwrap();
        drop(writer);
        let path = dir.join(segment_file_name(1));
        let full = fs::read(&path).unwrap();
        for cut in (SEGMENT_HEADER_LEN as usize)..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let log = read_log(&dir).unwrap();
            let complete = (cut - SEGMENT_HEADER_LEN as usize) / (RECORD_HEADER_LEN + 7);
            assert_eq!(log.records.len(), complete, "cut at byte {cut}");
            assert_eq!(log.tail.next_seq, complete as u64 + 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_the_scan() {
        let dir = temp_dir("corrupt");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..4u8 {
            writer.append(&[i; 8]).unwrap();
        }
        writer.commit().unwrap();
        drop(writer);
        let path = dir.join(segment_file_name(1));
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the third record.
        let record_len = RECORD_HEADER_LEN + 8;
        let offset = SEGMENT_HEADER_LEN as usize + 2 * record_len + RECORD_HEADER_LEN + 3;
        bytes[offset] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.tail.next_seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_torn_tail_and_continues_the_sequence() {
        let dir = temp_dir("resume");
        let mut writer = WalWriter::create(&dir, no_fsync(), 1).unwrap();
        for i in 0..3u8 {
            writer.append(&[i; 4]).unwrap();
        }
        writer.commit().unwrap();
        drop(writer);
        let path = dir.join(segment_file_name(1));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 2);
        let mut writer = WalWriter::resume(&dir, no_fsync(), &log.tail, 1).unwrap();
        assert_eq!(writer.next_seq(), 3);
        writer.append(b"resumed").unwrap();
        writer.commit().unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.records[2].payload, b"resumed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_on_empty_directory_honours_min_next_seq() {
        let dir = temp_dir("resume_empty");
        let log = read_log(&dir).unwrap();
        assert!(log.records.is_empty());
        let writer = WalWriter::resume(&dir, no_fsync(), &log.tail, 42).unwrap();
        assert_eq!(writer.next_seq(), 42);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_only_checkpoint_covered_segments() {
        let dir = temp_dir("prune");
        let config = DurabilityConfig {
            group_commit: 1,
            segment_bytes: 48,
            fsync: false,
        };
        let mut writer = WalWriter::create(&dir, config, 1).unwrap();
        for i in 0..12u64 {
            writer.append(&i.to_le_bytes()).unwrap();
        }
        writer.commit().unwrap();
        let before = list_segments(&dir).unwrap();
        assert!(before.len() >= 3);
        // A checkpoint at the last record covers every non-final segment.
        let removed = prune_segments(&dir, 12).unwrap();
        assert_eq!(removed, before.len() - 1);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.tail.next_seq, 13);
        // A checkpoint below the first surviving record removes nothing.
        assert_eq!(prune_segments(&dir, 0).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_directory_is_an_error_not_an_empty_log() {
        let dir = temp_dir("wrong_dir");
        fs::write(dir.join(segment_file_name(1)), b"not a wal segment at all").unwrap();
        assert!(read_log(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
