//! Atomic, checksummed checkpoints.
//!
//! A checkpoint is an opaque payload (the upper layers serialize the
//! policy arena, per-principal records, view registry and interner into
//! it) stamped with the WAL sequence number it covers: recovery loads
//! the latest *valid* checkpoint and replays only the log records past
//! its sequence number.
//!
//! # On-disk format
//!
//! One file per checkpoint, named `ckpt-<seq:020>.ck`:
//!
//! ```text
//! magic    b"FDCCKPT1"       8 bytes
//! version  u32 LE  (= 1)     4 bytes
//! seq      u64 LE            8 bytes   (last WAL seq the payload covers)
//! len      u64 LE            8 bytes   (payload length)
//! payload                    len bytes
//! crc      u32 LE            4 bytes   (CRC-32 of everything above)
//! ```
//!
//! # Atomicity
//!
//! [`write_checkpoint`] writes to a `.tmp` sibling, syncs it, then
//! renames it into place — a crash mid-write leaves at worst a stray
//! temp file (swept by [`sweep_stale_temps`] on the next open), never a
//! half-written checkpoint under the real name.  The whole-file CRC
//! catches the remaining failure modes (partial rename targets on
//! non-atomic filesystems, bit rot), and [`latest_checkpoint`] simply
//! skips invalid files and falls back to the next-newest, so
//! checkpointing can never make recovery *worse*.
//!
//! All I/O goes through a [`Vfs`] (the `_in` variants; the plain names
//! bind the production [`StdVfs`]) so the fault-injection suites can
//! exercise fsync failures and failed renames on the checkpoint path
//! too.

use std::io;
use std::path::{Path, PathBuf};

use crate::crc::{crc32, Crc32};
use crate::vfs::{StdVfs, Vfs};

/// Checkpoint file magic: "FDC checkpoint format 1".
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"FDCCKPT1";
/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Fixed bytes before the payload.
pub const CHECKPOINT_HEADER_LEN: usize = 28;

/// Builds the file name of the checkpoint covering WAL sequence `seq`.
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.ck")
}

/// Lists checkpoint files in `dir`, sorted ascending by the sequence
/// number encoded in their names.
fn list_checkpoints(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut checkpoints = Vec::new();
    for name in vfs.list(dir)? {
        if let Some(seq) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".ck"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            checkpoints.push((seq, dir.join(&name)));
        }
    }
    checkpoints.sort();
    Ok(checkpoints)
}

/// Writes a checkpoint covering WAL sequence `seq` atomically into
/// `dir`, returning its final path.
///
/// `fsync` controls whether the temp file (and, on platforms where it
/// matters, the directory) is synced before and after the rename.
pub fn write_checkpoint(dir: &Path, seq: u64, payload: &[u8], fsync: bool) -> io::Result<PathBuf> {
    write_checkpoint_in(&StdVfs, dir, seq, payload, fsync)
}

/// [`write_checkpoint`] through an explicit [`Vfs`].
pub fn write_checkpoint_in(
    vfs: &dyn Vfs,
    dir: &Path,
    seq: u64,
    payload: &[u8],
    fsync: bool,
) -> io::Result<PathBuf> {
    vfs.create_dir_all(dir)?;
    let final_path = dir.join(checkpoint_file_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(seq)));
    let mut header = Vec::with_capacity(CHECKPOINT_HEADER_LEN);
    header.extend_from_slice(CHECKPOINT_MAGIC);
    header.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    header.extend_from_slice(&seq.to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&header);
    crc.update(payload);
    {
        let mut file = vfs.create(&tmp_path)?;
        file.write_all(&header)?;
        file.write_all(payload)?;
        file.write_all(&crc.finish().to_le_bytes())?;
        if fsync {
            file.sync_all()?;
        }
    }
    vfs.rename(&tmp_path, &final_path)?;
    if fsync {
        // Persist the rename itself where the platform allows syncing a
        // directory handle; failure is not actionable here.
        let _ = vfs.sync_dir(dir);
    }
    Ok(final_path)
}

/// Validates and decodes one checkpoint file.
fn load_checkpoint(vfs: &dyn Vfs, path: &Path) -> io::Result<(u64, Vec<u8>)> {
    let mut bytes = vfs.read(path)?;
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    if bytes.len() < CHECKPOINT_HEADER_LEN + 4 {
        return Err(invalid("checkpoint shorter than header + trailer"));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(invalid("bad checkpoint magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION {
        return Err(invalid("unsupported checkpoint version"));
    }
    let seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if bytes.len() as u64 != CHECKPOINT_HEADER_LEN as u64 + len + 4 {
        return Err(invalid("checkpoint length field disagrees with file size"));
    }
    let body_end = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(invalid("checkpoint checksum mismatch"));
    }
    bytes.truncate(body_end);
    bytes.drain(..CHECKPOINT_HEADER_LEN);
    Ok((seq, bytes))
}

/// Loads the newest checkpoint in `dir` that validates (magic, version,
/// length, whole-file CRC), returning `(covered_seq, payload)`.
/// Invalid or half-written files are skipped, not fatal; `None` means
/// no valid checkpoint exists and recovery must replay the log from the
/// beginning.
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
    latest_checkpoint_in(&StdVfs, dir)
}

/// [`latest_checkpoint`] through an explicit [`Vfs`].
pub fn latest_checkpoint_in(vfs: &dyn Vfs, dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
    if !vfs.exists(dir) {
        return Ok(None);
    }
    for (_, path) in list_checkpoints(vfs, dir)?.into_iter().rev() {
        if let Ok(loaded) = load_checkpoint(vfs, &path) {
            return Ok(Some(loaded));
        }
    }
    Ok(None)
}

/// Sequence numbers of the checkpoint files currently in `dir`,
/// ascending.  Validity is not checked — this lists what is on disk.
/// Callers pruning WAL segments prune up to the *oldest* listed
/// checkpoint, so that every retained checkpoint (not just the newest)
/// still has the log records past it, should it be the one recovery
/// falls back to.
pub fn checkpoint_seqs(dir: &Path) -> io::Result<Vec<u64>> {
    checkpoint_seqs_in(&StdVfs, dir)
}

/// [`checkpoint_seqs`] through an explicit [`Vfs`].
pub fn checkpoint_seqs_in(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<u64>> {
    Ok(list_checkpoints(vfs, dir)?
        .into_iter()
        .map(|(seq, _)| seq)
        .collect())
}

/// Sweeps stray `ckpt-*.tmp` files left by a crash (or a failed rename)
/// between temp-write and rename-into-place.  They are garbage by
/// construction — a completed checkpoint lives under its final name —
/// so recovery deletes them on open.  Returns how many were removed.
pub fn sweep_stale_temps(dir: &Path) -> io::Result<usize> {
    sweep_stale_temps_in(&StdVfs, dir)
}

/// [`sweep_stale_temps`] through an explicit [`Vfs`].
pub fn sweep_stale_temps_in(vfs: &dyn Vfs, dir: &Path) -> io::Result<usize> {
    if !vfs.exists(dir) {
        return Ok(0);
    }
    let mut removed = 0;
    for name in vfs.list(dir)? {
        if name.starts_with("ckpt-") && name.ends_with(".tmp") {
            vfs.remove_file(&dir.join(&name))?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Deletes old checkpoints, keeping the newest `keep` files (by the
/// sequence number in the name; `keep` is clamped to at least 1).
/// Validity is not re-checked, which is why the service keeps two:
/// even if the newest file is later found corrupt, its valid
/// predecessor is still on disk.  Also sweeps stray `.tmp` files from
/// interrupted writes.  Returns how many files were removed.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> io::Result<usize> {
    prune_checkpoints_in(&StdVfs, dir, keep)
}

/// [`prune_checkpoints`] through an explicit [`Vfs`].
pub fn prune_checkpoints_in(vfs: &dyn Vfs, dir: &Path, keep: usize) -> io::Result<usize> {
    let checkpoints = list_checkpoints(vfs, dir)?;
    let mut removed = 0;
    let cutoff = checkpoints.len().saturating_sub(keep.max(1));
    for (_, path) in &checkpoints[..cutoff] {
        vfs.remove_file(path)?;
        removed += 1;
    }
    removed += sweep_stale_temps_in(vfs, dir)?;
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::Arc;

    use crate::vfs::{FaultSchedule, FaultVfs};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdc_ckpt_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_payload_and_seq() {
        let dir = temp_dir("round_trip");
        write_checkpoint(&dir, 17, b"state bytes", false).unwrap();
        let (seq, payload) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(seq, 17);
        assert_eq!(payload, b"state bytes");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_wins_over_newer_corrupt() {
        let dir = temp_dir("latest_valid");
        write_checkpoint(&dir, 5, b"old good", false).unwrap();
        let newer = write_checkpoint(&dir, 9, b"new bad", false).unwrap();
        let mut bytes = fs::read(&newer).unwrap();
        let len = bytes.len();
        bytes[len - 10] ^= 0x55;
        fs::write(&newer, &bytes).unwrap();
        let (seq, payload) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(seq, 5);
        assert_eq!(payload, b"old good");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_checkpoint_is_skipped() {
        let dir = temp_dir("truncated");
        write_checkpoint(&dir, 3, b"good", false).unwrap();
        let newer = write_checkpoint(&dir, 8, b"will be cut", false).unwrap();
        let bytes = fs::read(&newer).unwrap();
        fs::write(&newer, &bytes[..bytes.len() / 2]).unwrap();
        let (seq, _) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_directory_yields_none() {
        let dir = temp_dir("empty");
        assert!(latest_checkpoint(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
        assert!(latest_checkpoint(&dir).unwrap().is_none());
    }

    #[test]
    fn prune_keeps_the_newest_and_sweeps_temp_files() {
        let dir = temp_dir("prune");
        for seq in [1u64, 4, 9, 12] {
            write_checkpoint(&dir, seq, b"x", false).unwrap();
        }
        fs::write(dir.join("ckpt-00000000000000000099.ck.tmp"), b"stray").unwrap();
        let removed = prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(removed, 3);
        let (seq, _) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(seq, 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_stale_temps() {
        let dir = temp_dir("sweep");
        write_checkpoint(&dir, 7, b"keep me", false).unwrap();
        fs::write(dir.join("ckpt-00000000000000000003.ck.tmp"), b"stray").unwrap();
        fs::write(dir.join("ckpt-00000000000000000009.ck.tmp"), b"stray").unwrap();
        fs::write(dir.join("unrelated.txt"), b"leave me").unwrap();
        assert_eq!(sweep_stale_temps(&dir).unwrap(), 2);
        assert!(dir.join(checkpoint_file_name(7)).exists());
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(sweep_stale_temps(&dir).unwrap(), 0, "sweep is idempotent");
        // A missing directory sweeps nothing rather than erroring.
        assert_eq!(sweep_stale_temps(&dir.join("absent")).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rename_leaves_temp_for_the_sweep_and_old_checkpoint_wins() {
        let dir = temp_dir("rename_fault");
        let vfs = FaultVfs::over_std(FaultSchedule {
            seed: 31,
            rename_failure_per_mille: 1000,
            ..FaultSchedule::default()
        });
        write_checkpoint_in(&vfs, &dir, 4, b"old good", false).unwrap_err();
        // Even the first write fails its rename under this schedule, so
        // install the baseline through a quiet vfs instead.
        let quiet: Arc<dyn Vfs> = Arc::new(StdVfs);
        write_checkpoint_in(quiet.as_ref(), &dir, 4, b"old good", false).unwrap();
        let err = write_checkpoint_in(&vfs, &dir, 9, b"never lands", false).unwrap_err();
        assert!(err.to_string().contains("injected rename failure"));
        // The failed install left a temp file and no ckpt-9: recovery
        // still sees the old checkpoint, and the sweep clears the stray.
        // (The quiet re-install of ckpt-4 reused — and so consumed — the
        // first failed attempt's temp file, leaving exactly one stray.)
        let (seq, payload) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(seq, 4);
        assert_eq!(payload, b"old good");
        assert!(dir.join("ckpt-00000000000000000009.ck.tmp").exists());
        assert_eq!(sweep_stale_temps(&dir).unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
