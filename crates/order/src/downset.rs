//! The `⇓` operator of Definition 3.2.
//!
//! `⇓W` is the set of all views in the universe whose answers can be
//! inferred from `W`: `{V ∈ U : {V} ⪯ W}`.  Down-sets are the elements of
//! the disclosure lattice (Theorem 3.3), and two sets of views reveal the
//! same information exactly when their down-sets coincide.

use crate::order::DisclosureOrder;
use crate::view::{ViewId, ViewSet};

/// Computes `⇓W = {V ∈ U : {V} ⪯ W}` for a finite universe.
pub fn downset<O: DisclosureOrder>(order: &O, w: ViewSet) -> ViewSet {
    let n = order.universe_size();
    let mut result = ViewSet::new();
    for i in 0..n {
        let v = ViewId(i as u32);
        if order.leq(ViewSet::singleton(v), w) {
            result.insert(v);
        }
    }
    result
}

/// The *information combination* of two sets of views: `⇓(W1 ∪ W2)`
/// (Section 3.2).
pub fn combine<O: DisclosureOrder>(order: &O, w1: ViewSet, w2: ViewSet) -> ViewSet {
    downset(order, w1.union(w2))
}

/// The *information overlap* of two sets of views: `(⇓W1) ∩ (⇓W2)`
/// (Section 3.2).
pub fn overlap<O: DisclosureOrder>(order: &O, w1: ViewSet, w2: ViewSet) -> ViewSet {
    downset(order, w1).intersection(downset(order, w2))
}

/// True if `W1 ⪯ W2` as witnessed by down-set inclusion.
///
/// Section 3.2 notes `W1 ⪯ W2` iff `⇓W1 ⊆ ⇓W2`; this helper exists so tests
/// can cross-check the two characterizations.
pub fn leq_via_downsets<O: DisclosureOrder>(order: &O, w1: ViewSet, w2: ViewSet) -> bool {
    downset(order, w1).is_subset_of(downset(order, w2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{check_disclosure_order_axioms, SingletonLiftedOrder, SubsetOrder};

    /// The Figure 3 universe: V0 = V1 (full Meetings view), V1 = V2 (first
    /// column), V2 = V4 (second column), V3 = V5 (nonemptiness), under a
    /// derivability relation mirroring equivalent view rewriting.
    fn figure3_order() -> impl crate::order::DisclosureOrder {
        SingletonLiftedOrder::new(4, |v: ViewId, w: ViewSet| {
            if w.contains(v) {
                return true;
            }
            match v.0 {
                0 => false,
                1 | 2 => w.contains(ViewId(0)),
                3 => !w.is_empty(),
                _ => false,
            }
        })
    }

    #[test]
    fn downsets_match_figure_3() {
        let order = figure3_order();
        check_disclosure_order_axioms(&order).unwrap();

        let full = ViewSet::singleton(ViewId(0));
        let col1 = ViewSet::singleton(ViewId(1));
        let col2 = ViewSet::singleton(ViewId(2));
        let nonempty = ViewSet::singleton(ViewId(3));

        // ⇓{V1} = everything: the top element of Figure 3.
        assert_eq!(downset(&order, full), ViewSet::full(4));
        // ⇓{V2} = {V2, V5}.
        assert_eq!(downset(&order, col1), col1.union(nonempty));
        // ⇓{V4} = {V4, V5}.
        assert_eq!(downset(&order, col2), col2.union(nonempty));
        // ⇓{V5} = {V5}.
        assert_eq!(downset(&order, nonempty), nonempty);
        // ⇓∅ = ∅ (bottom).
        assert_eq!(downset(&order, ViewSet::EMPTY), ViewSet::EMPTY);
    }

    #[test]
    fn combination_and_overlap_match_section_3_2() {
        let order = figure3_order();
        let col1 = ViewSet::singleton(ViewId(1));
        let col2 = ViewSet::singleton(ViewId(2));
        let nonempty = ViewSet::singleton(ViewId(3));

        // The overlap of the two projections is the nonemptiness view, even
        // though the sets themselves are disjoint -- the paper's motivating
        // example for why intersection is the wrong notion of overlap.
        assert_eq!(overlap(&order, col1, col2), nonempty);
        // Their combination does NOT recover the full view.
        let combined = combine(&order, col1, col2);
        assert!(!combined.contains(ViewId(0)));
        assert_eq!(combined, col1.union(col2).union(nonempty));
    }

    #[test]
    fn downset_inclusion_characterizes_the_order() {
        let order = figure3_order();
        let subsets: Vec<ViewSet> = ViewSet::all_subsets(4).collect();
        for &a in &subsets {
            for &b in &subsets {
                assert_eq!(
                    order.leq(a, b),
                    leq_via_downsets(&order, a, b),
                    "mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn subset_order_downsets_are_identity() {
        let order = SubsetOrder::new(5);
        for w in ViewSet::all_subsets(5) {
            assert_eq!(downset(&order, w), w);
        }
    }

    #[test]
    fn downset_is_monotone_and_extensive() {
        let order = figure3_order();
        let subsets: Vec<ViewSet> = ViewSet::all_subsets(4).collect();
        for &w in &subsets {
            // Extensive: W ⊆ ⇓W.
            assert!(w.is_subset_of(downset(&order, w)));
            // Idempotent: ⇓⇓W = ⇓W.
            assert_eq!(downset(&order, downset(&order, w)), downset(&order, w));
        }
        for &a in &subsets {
            for &b in &subsets {
                if a.is_subset_of(b) {
                    assert!(downset(&order, a).is_subset_of(downset(&order, b)));
                }
            }
        }
    }
}
