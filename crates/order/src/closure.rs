//! Closure operators on the disclosure lattice.
//!
//! The paper observes (after Definition 3.4) that the axioms of a disclosure
//! labeler "mirror those in the definition of an order-theoretic closure
//! operator": if `I` is the disclosure lattice of `U`, then the map
//! `X ↦ ⇓ℓ(X)` is a closure operator on `I` — extensive, monotone and
//! idempotent.  This module provides an executable check of that claim,
//! which the test suites of this crate and of `fdc-core` use to validate
//! labeler implementations.

use crate::downset::downset;
use crate::lattice::DisclosureLattice;
use crate::order::DisclosureOrder;
use crate::view::ViewSet;

/// Checks that `op` is a closure operator on the disclosure lattice of
/// `order`: extensive (`x ≤ op(x)`), monotone, and idempotent.
///
/// `op` receives and returns *down-sets* (lattice elements).  Returns a
/// description of the first violated law.
pub fn check_closure_operator<O, F>(
    order: &O,
    lattice: &DisclosureLattice,
    op: F,
) -> Result<(), String>
where
    O: DisclosureOrder,
    F: Fn(ViewSet) -> ViewSet,
{
    let elements = lattice.elements();
    // Extensive and idempotent.
    for &x in elements {
        let cx = op(x);
        if !x.is_subset_of(cx) {
            return Err(format!("not extensive: {x} ⊄ op({x}) = {cx}"));
        }
        let ccx = op(cx);
        if ccx != cx {
            return Err(format!(
                "not idempotent: op(op({x})) = {ccx} ≠ op({x}) = {cx}"
            ));
        }
        // The image must itself be a lattice element (a down-set).
        if downset(order, cx) != cx {
            return Err(format!("image is not a down-set: op({x}) = {cx}"));
        }
    }
    // Monotone.
    for &x in elements {
        for &y in elements {
            if x.is_subset_of(y) && !op(x).is_subset_of(op(y)) {
                return Err(format!(
                    "not monotone: {x} ⊆ {y} but op({x}) = {} ⊄ op({y}) = {}",
                    op(x),
                    op(y)
                ));
            }
        }
    }
    Ok(())
}

/// Builds the closure operator `X ↦ ⇓ℓ(X)` induced by a labeling function
/// and returns it as a boxed closure, for use with
/// [`check_closure_operator`].
pub fn labeler_closure<'a, O, L>(order: &'a O, label: L) -> impl Fn(ViewSet) -> ViewSet + 'a
where
    O: DisclosureOrder,
    L: Fn(ViewSet) -> ViewSet + 'a,
{
    move |x: ViewSet| downset(order, label(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeler::induced_labeler;
    use crate::order::{SingletonLiftedOrder, SubsetOrder};
    use crate::view::ViewId;

    fn figure3_order() -> impl DisclosureOrder {
        SingletonLiftedOrder::new(4, |v: ViewId, w: ViewSet| {
            if w.contains(v) {
                return true;
            }
            match v.0 {
                0 => false,
                1 | 2 => w.contains(ViewId(0)),
                3 => !w.is_empty(),
                _ => false,
            }
        })
    }

    fn s(ids: &[u32]) -> ViewSet {
        ids.iter().map(|&i| ViewId(i)).collect()
    }

    #[test]
    fn identity_is_a_closure_operator() {
        let order = SubsetOrder::new(3);
        let lattice = DisclosureLattice::build(&order);
        check_closure_operator(&order, &lattice, |x| x).unwrap();
    }

    #[test]
    fn induced_labelers_give_closure_operators() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[1, 2]), s(&[0])];
        let labeler = induced_labeler(&order, &f).unwrap();
        let op = labeler_closure(&order, |w| labeler.label_set(&order, w));
        check_closure_operator(&order, &lattice, op).unwrap();
    }

    #[test]
    fn coarse_labelers_are_still_closure_operators() {
        // The imprecise family from labeler::tests is still a labeler, hence
        // still a closure operator.
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[0])];
        let labeler = induced_labeler(&order, &f).unwrap();
        let op = labeler_closure(&order, |w| labeler.label_set(&order, w));
        check_closure_operator(&order, &lattice, op).unwrap();
    }

    #[test]
    fn the_checker_catches_non_extensive_maps() {
        let order = SubsetOrder::new(3);
        let lattice = DisclosureLattice::build(&order);
        let err = check_closure_operator(&order, &lattice, |_x| ViewSet::EMPTY).unwrap_err();
        assert!(err.contains("not extensive"));
    }

    #[test]
    fn the_checker_catches_non_monotone_maps() {
        let order = SubsetOrder::new(2);
        let lattice = DisclosureLattice::build(&order);
        // Map the empty set to the top but leave singletons alone: extensive
        // and idempotent? top maps to ... we force idempotence by mapping the
        // top to itself; the map is not monotone because ∅ ↦ ⊤ ⊄ op({V0}).
        let op = |x: ViewSet| {
            if x.is_empty() {
                ViewSet::full(2)
            } else {
                x
            }
        };
        let err = check_closure_operator(&order, &lattice, op).unwrap_err();
        assert!(err.contains("not monotone"));
    }
}
