//! View identifiers and sets of views over a finite universe.
//!
//! The abstract machinery of Sections 3 and 4 works with a finite universe
//! `U` of views.  Views are identified by dense [`ViewId`]s `0..n`; a
//! [`ViewSet`] is a bitset over those ids.  The bitset representation keeps
//! the lattice algorithms allocation-free and makes subset/GLB/LUB
//! operations single instructions, mirroring the bit-vector optimization the
//! paper applies to disclosure labels in Section 6.1.

use std::fmt;

/// Identifier of a view within a finite universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u32);

impl ViewId {
    /// Returns the id as a usize, convenient for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// Maximum number of views in a finite universe.
///
/// The abstract lattice machinery enumerates subsets of the universe, so it
/// is only ever used with small universes (the paper's examples have 4–16
/// views); 64 leaves plenty of headroom while keeping [`ViewSet`] a single
/// machine word.
pub const MAX_UNIVERSE: usize = 64;

/// A set of views over a finite universe, represented as a 64-bit bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ViewSet(u64);

impl ViewSet {
    /// The empty set.
    pub const EMPTY: ViewSet = ViewSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        ViewSet(0)
    }

    /// The full universe of `n` views.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_UNIVERSE`.
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_UNIVERSE, "universe too large for ViewSet");
        if n == MAX_UNIVERSE {
            ViewSet(u64::MAX)
        } else {
            ViewSet((1u64 << n) - 1)
        }
    }

    /// A singleton set.
    pub fn singleton(v: ViewId) -> Self {
        ViewSet(1u64 << v.index())
    }

    /// Builds a set from raw bits.
    pub const fn from_bits(bits: u64) -> Self {
        ViewSet(bits)
    }

    /// The raw bits of the set.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// True if the set has no elements.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of views in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if `v` is a member.
    pub fn contains(self, v: ViewId) -> bool {
        self.0 & (1u64 << v.index()) != 0
    }

    /// Adds a view, returning the new set.
    #[must_use]
    pub fn with(self, v: ViewId) -> Self {
        ViewSet(self.0 | (1u64 << v.index()))
    }

    /// Removes a view, returning the new set.
    #[must_use]
    pub fn without(self, v: ViewId) -> Self {
        ViewSet(self.0 & !(1u64 << v.index()))
    }

    /// Adds a view in place.
    pub fn insert(&mut self, v: ViewId) {
        self.0 |= 1u64 << v.index();
    }

    /// Removes a view in place.
    pub fn remove(&mut self, v: ViewId) {
        self.0 &= !(1u64 << v.index());
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ViewSet) -> Self {
        ViewSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ViewSet) -> Self {
        ViewSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(self, other: ViewSet) -> Self {
        ViewSet(self.0 & !other.0)
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(self, other: ViewSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if `self ⊂ other` (proper subset).
    pub fn is_proper_subset_of(self, other: ViewSet) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// Iterates over the members in increasing id order.
    pub fn iter(self) -> impl Iterator<Item = ViewId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                Some(ViewId(tz))
            }
        })
    }

    /// Enumerates every subset of the universe `0..n`.
    ///
    /// Used by the explicit lattice construction; exponential in `n` by
    /// nature, so callers keep `n` small (the paper's examples have at most
    /// 16 views per relation).
    pub fn all_subsets(n: usize) -> impl Iterator<Item = ViewSet> {
        assert!(
            n <= 24,
            "refusing to enumerate more than 2^24 subsets; use the generating-set machinery instead"
        );
        (0u64..(1u64 << n)).map(ViewSet)
    }
}

impl FromIterator<ViewId> for ViewSet {
    fn from_iter<I: IntoIterator<Item = ViewId>>(iter: I) -> Self {
        let mut s = ViewSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl fmt::Display for ViewSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_operations() {
        let a = ViewSet::new().with(ViewId(0)).with(ViewId(2));
        let b = ViewSet::singleton(ViewId(2)).with(ViewId(3));
        assert_eq!(a.len(), 2);
        assert!(a.contains(ViewId(0)));
        assert!(!a.contains(ViewId(1)));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), ViewSet::singleton(ViewId(2)));
        assert_eq!(a.difference(b), ViewSet::singleton(ViewId(0)));
        assert!(ViewSet::EMPTY.is_empty());
        assert!(!a.is_empty());
        assert_eq!(a.without(ViewId(0)), ViewSet::singleton(ViewId(2)));
    }

    #[test]
    fn subset_relations() {
        let small = ViewSet::singleton(ViewId(1));
        let big = small.with(ViewId(4));
        assert!(small.is_subset_of(big));
        assert!(small.is_proper_subset_of(big));
        assert!(big.is_subset_of(big));
        assert!(!big.is_proper_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(ViewSet::EMPTY.is_subset_of(small));
    }

    #[test]
    fn insertion_and_removal_in_place() {
        let mut s = ViewSet::new();
        s.insert(ViewId(5));
        s.insert(ViewId(5));
        assert_eq!(s.len(), 1);
        s.remove(ViewId(5));
        assert!(s.is_empty());
        s.remove(ViewId(5)); // removing an absent element is a no-op
        assert!(s.is_empty());
    }

    #[test]
    fn full_universe_and_iteration() {
        let full = ViewSet::full(4);
        assert_eq!(full.len(), 4);
        let ids: Vec<ViewId> = full.iter().collect();
        assert_eq!(ids, vec![ViewId(0), ViewId(1), ViewId(2), ViewId(3)]);
        assert_eq!(ViewSet::full(MAX_UNIVERSE).len(), MAX_UNIVERSE);
        assert_eq!(ViewSet::full(0), ViewSet::EMPTY);
    }

    #[test]
    #[should_panic(expected = "universe too large")]
    fn oversized_universe_panics() {
        let _ = ViewSet::full(65);
    }

    #[test]
    fn collect_and_display() {
        let s: ViewSet = [ViewId(0), ViewId(3)].into_iter().collect();
        assert_eq!(s.to_string(), "{V0, V3}");
        assert_eq!(ViewSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn all_subsets_enumerates_the_power_set() {
        let subsets: Vec<ViewSet> = ViewSet::all_subsets(3).collect();
        assert_eq!(subsets.len(), 8);
        assert!(subsets.contains(&ViewSet::EMPTY));
        assert!(subsets.contains(&ViewSet::full(3)));
        // No duplicates.
        let mut sorted = subsets.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn bits_round_trip() {
        let s = ViewSet::from_bits(0b1011);
        assert_eq!(s.bits(), 0b1011);
        assert_eq!(s.len(), 3);
    }
}
