//! Generating sets for label families (Section 4).
//!
//! The label family `F` used by a disclosure labeler can be huge (doubly
//! exponential in the schema for the all-projections example 4.1), so the
//! practical algorithms never materialize it.  Instead they work with
//!
//! * a **downward generating set** `Fd ⊆ F` (Definition 4.2): every element
//!   of `F` is equivalent to a GLB of elements of `Fd`;
//! * a **(full) generating set** `Fgen` (Definition 4.9): every element of
//!   `F` is equivalent to a union of GLBs of elements of `Fgen` — available
//!   when the universe is decomposable and the labeler is precise.
//!
//! This module implements those notions for finite universes, together with
//! the decomposability check of Definition 4.7 and the closure construction
//! of Theorem 4.5 (extending an arbitrary `G` to an `F` that induces a
//! labeler and has `G` as a downward generating set).

use crate::downset::downset;
use crate::order::DisclosureOrder;
use crate::view::ViewSet;

/// Is the universe decomposable (Definition 4.7)?
///
/// `U` is decomposable when `{V} ⪯ W1 ∪ W2` implies `{V} ⪯ W1` or
/// `{V} ⪯ W2`.  Exhaustive over subsets; keep the universe small.
pub fn is_decomposable<O: DisclosureOrder>(order: &O) -> bool {
    let n = order.universe_size();
    assert!(n <= 8, "decomposability check is exponential in |U|");
    let subsets: Vec<ViewSet> = ViewSet::all_subsets(n).collect();
    for i in 0..n {
        let v = ViewSet::singleton(crate::view::ViewId(i as u32));
        for &w1 in &subsets {
            for &w2 in &subsets {
                if order.leq(v, w1.union(w2)) && !order.leq(v, w1) && !order.leq(v, w2) {
                    return false;
                }
            }
        }
    }
    true
}

/// Does `F` induce a *precise* labeler (Definition 4.6)?
///
/// Requires `∅ ∈ F` (up to equivalence) and closure of `{⇓W : W ∈ F}` under
/// the lattice LUB `⇓(W1 ∪ W2)`.
pub fn induces_precise_labeler<O: DisclosureOrder>(order: &O, f: &[ViewSet]) -> bool {
    let k: Vec<ViewSet> = f.iter().map(|w| downset(order, *w)).collect();
    let bottom = downset(order, ViewSet::EMPTY);
    if !k.contains(&bottom) {
        return false;
    }
    for &a in &k {
        for &b in &k {
            let join = downset(order, a.union(b));
            if !k.contains(&join) {
                return false;
            }
        }
    }
    true
}

/// Closes `G` under GLB (down-set intersection), producing the family `F` of
/// Theorem 4.5: `F` induces a labeler and `G` is a downward generating set
/// for it.
///
/// The returned family is given by representative down-sets (one per
/// equivalence class), always includes the down-set of the full universe,
/// and is closed under intersection.
pub fn close_under_glb<O: DisclosureOrder>(order: &O, g: &[ViewSet]) -> Vec<ViewSet> {
    let mut closed: Vec<ViewSet> = Vec::new();
    let push_unique = |s: ViewSet, closed: &mut Vec<ViewSet>| {
        if !closed.contains(&s) {
            closed.push(s);
        }
    };
    // Theorem 4.5 requires G to contain the top element; we add it if absent
    // so the construction always succeeds.
    push_unique(downset(order, order.universe()), &mut closed);
    for w in g {
        push_unique(downset(order, *w), &mut closed);
    }
    loop {
        let mut added = false;
        let snapshot = closed.clone();
        for (i, &a) in snapshot.iter().enumerate() {
            for &b in &snapshot[i + 1..] {
                let meet = a.intersection(b);
                if !closed.contains(&meet) {
                    closed.push(meet);
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }
    closed.sort_by_key(|e| (e.len(), e.bits()));
    closed
}

/// Is `fd` a downward generating set for `f` (Definition 4.2)?
///
/// Every element of `f` must be equivalent to a GLB of elements of `fd`.
/// GLBs are computed on down-sets (intersection), and "equivalent" means
/// equal down-sets.
pub fn is_downward_generating<O: DisclosureOrder>(
    order: &O,
    fd: &[ViewSet],
    f: &[ViewSet],
) -> bool {
    let fd_downsets: Vec<ViewSet> = fd.iter().map(|w| downset(order, *w)).collect();
    f.iter().all(|w| {
        let target = downset(order, *w);
        // The GLB of the set of fd-elements that lie above `target` is the
        // best we can do; `w` is generated iff that GLB equals `target`.
        let mut meet = downset(order, order.universe());
        for d in &fd_downsets {
            if target.is_subset_of(*d) {
                meet = meet.intersection(*d);
            }
        }
        meet == target
    })
}

/// Computes the minimal downward generating set of `f` (Theorem 4.3).
///
/// Iteratively removes elements that are equivalent to the GLB of other
/// remaining elements; the result is unique up to equivalence.
pub fn minimal_downward_generating_set<O: DisclosureOrder>(
    order: &O,
    f: &[ViewSet],
) -> Vec<ViewSet> {
    let mut remaining: Vec<ViewSet> = f.to_vec();
    loop {
        let mut removed = false;
        for i in 0..remaining.len() {
            let candidate = remaining[i];
            let target = downset(order, candidate);
            // GLB of all *other* remaining elements above the candidate.
            let mut meet = downset(order, order.universe());
            let mut any_above = false;
            for (j, other) in remaining.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = downset(order, *other);
                if target.is_subset_of(d) {
                    meet = meet.intersection(d);
                    any_above = true;
                }
            }
            if any_above && meet == target {
                remaining.remove(i);
                removed = true;
                break;
            }
        }
        if !removed {
            break;
        }
    }
    remaining
}

/// Is `fgen` a (full) generating set for `f` (Definition 4.9)?
///
/// Every element of `f` must be equivalent to a union of GLBs of elements of
/// `fgen`.  For a decomposable universe the union of GLBs is evaluated as a
/// down-set union.
pub fn is_generating<O: DisclosureOrder>(order: &O, fgen: &[ViewSet], f: &[ViewSet]) -> bool {
    let gen_downsets: Vec<ViewSet> = fgen.iter().map(|w| downset(order, *w)).collect();
    f.iter().all(|w| {
        let target = downset(order, *w);
        // Greedy: for each view in the target, it must be covered by the GLB
        // of the fgen-elements above it; the union of those GLBs must equal
        // the target exactly.
        let mut covered = ViewSet::new();
        for v in target.iter() {
            let vd = downset(order, ViewSet::singleton(v));
            let mut meet = downset(order, order.universe());
            for d in &gen_downsets {
                if vd.is_subset_of(*d) {
                    meet = meet.intersection(*d);
                }
            }
            covered = covered.union(meet);
        }
        covered == target
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{DisclosureOrder, SingletonLiftedOrder, SubsetOrder};
    use crate::view::ViewId;

    /// A model of the Contacts projections from Figure 4 / Example 4.4,
    /// restricted to the projection views
    /// V0={xyz}, V1={xy}, V2={xz}, V3={yz}, V4={x}, V5={y}, V6={z}, V7={}.
    ///
    /// Derivability: a projection is derivable from any single projection
    /// whose column set is a superset of its own.
    fn contacts_projections_order() -> impl DisclosureOrder {
        const COLS: [u8; 8] = [0b111, 0b011, 0b101, 0b110, 0b001, 0b010, 0b100, 0b000];
        SingletonLiftedOrder::new(8, move |v: ViewId, w: ViewSet| {
            let need = COLS[v.index()];
            w.iter().any(|u| {
                let have = COLS[u.index()];
                need & !have == 0
            })
        })
    }

    fn s(ids: &[u32]) -> ViewSet {
        ids.iter().map(|&i| ViewId(i)).collect()
    }

    #[test]
    fn contacts_universe_is_decomposable() {
        let order = contacts_projections_order();
        assert!(is_decomposable(&order));
    }

    #[test]
    fn subset_order_is_decomposable_and_projection_example_4_4_holds() {
        // Example 4.4: the downward generating set for the all-projections F
        // is the power set of the two-column projections plus the full view,
        // because single-column projections and the boolean view arise as
        // GLBs: GLB({V1},{V2}) ≡ {V4} (= x), etc.
        let order = contacts_projections_order();
        // GLB of ⇓{xy} and ⇓{xz} is ⇓{x}.
        let g_xy = downset(&order, s(&[1]));
        let g_xz = downset(&order, s(&[2]));
        let g_x = downset(&order, s(&[4]));
        assert_eq!(g_xy.intersection(g_xz), g_x);
        // GLB of ⇓{xy} and ⇓{yz} is ⇓{y}.
        assert_eq!(
            downset(&order, s(&[1])).intersection(downset(&order, s(&[3]))),
            downset(&order, s(&[5]))
        );
        // GLB of the three two-column projections is ⇓{} (the boolean view).
        let all_three = downset(&order, s(&[1]))
            .intersection(downset(&order, s(&[2])))
            .intersection(downset(&order, s(&[3])));
        assert_eq!(all_three, downset(&order, s(&[7])));
    }

    #[test]
    fn singleton_family_generates_all_projection_labels() {
        // Example 4.10: Fgen = {{V3}, {V6}, {V7}, {V8}} (full view plus the
        // three two-column projections) generates every projection label.
        let order = contacts_projections_order();
        let fgen = vec![s(&[0]), s(&[1]), s(&[2]), s(&[3])];
        // F: every singleton projection label plus the empty label.
        let f: Vec<ViewSet> = (0..8).map(|i| s(&[i])).chain([ViewSet::EMPTY]).collect();
        assert!(is_generating(&order, &fgen, &f));
        assert!(is_downward_generating(&order, &fgen, &f[..8]));
        // The single-column projections alone do not generate the
        // two-column ones.
        let too_small = vec![s(&[4]), s(&[5]), s(&[6]), s(&[7])];
        assert!(!is_downward_generating(&order, &too_small, &f[..4]));
    }

    #[test]
    fn close_under_glb_builds_an_inducing_family() {
        let order = contacts_projections_order();
        let g = vec![s(&[1]), s(&[2]), s(&[3])];
        let f = close_under_glb(&order, &g);
        // The closure contains the generators, their pairwise GLBs (single
        // columns), the triple GLB (boolean view) and the top.
        assert!(crate::labeler::induces_labeler(&order, &f));
        assert!(is_downward_generating(&order, &g, &f));
        // 3 generators + 3 single columns + boolean + top = 8.
        assert_eq!(f.len(), 8);
    }

    #[test]
    fn minimal_downward_generating_set_drops_redundant_elements() {
        let order = contacts_projections_order();
        // F = all eight projection labels (as singletons).
        let f: Vec<ViewSet> = (0..8).map(|i| s(&[i])).collect();
        let fd = minimal_downward_generating_set(&order, &f);
        // The single-column projections and the boolean view are GLBs of the
        // two-column projections, so only the full view and the three
        // two-column projections survive.
        assert_eq!(fd.len(), 4);
        for kept in [0u32, 1, 2, 3] {
            assert!(fd.contains(&s(&[kept])), "expected V{kept} to be kept");
        }
        assert!(is_downward_generating(&order, &fd, &f));
    }

    #[test]
    fn precise_labeler_requires_lub_closure() {
        let order = contacts_projections_order();
        // The family of all projection labels plus ∅ is closed under both
        // GLB and LUB (any union of projections of one relation is
        // equivalent to ... ) -- actually unions of incomparable projections
        // like {xy} ∪ {yz} are NOT equivalent to a single projection, so the
        // singleton family is not precise.
        let singletons: Vec<ViewSet> = (0..8).map(|i| s(&[i])).chain([ViewSet::EMPTY]).collect();
        assert!(!induces_precise_labeler(&order, &singletons));
        // The full power-set family is precise.
        let all: Vec<ViewSet> = ViewSet::all_subsets(8).collect();
        assert!(induces_precise_labeler(&order, &all));
    }

    #[test]
    fn subset_order_decomposability() {
        assert!(is_decomposable(&SubsetOrder::new(5)));
    }

    #[test]
    fn non_decomposable_universe_is_detected() {
        // A contrived order in which view 2 is derivable from {0, 1} jointly
        // but from neither alone.
        let order = SingletonLiftedOrder::new(3, |v: ViewId, w: ViewSet| {
            if w.contains(v) {
                return true;
            }
            v == ViewId(2) && w.contains(ViewId(0)) && w.contains(ViewId(1))
        });
        assert!(!is_decomposable(&order));
    }
}
