//! The disclosure lattice (Theorem 3.3) for finite universes.
//!
//! Given a finite universe `U` and a disclosure order `⪯`, the family
//! `I = {⇓W : W ⊆ U}` ordered by inclusion is a bounded lattice with
//!
//! * LUB `(⇓W1) ⊔ (⇓W2) = ⇓(W1 ∪ W2)`,
//! * GLB `(⇓W1) ⊓ (⇓W2) = (⇓W1) ∩ (⇓W2)`,
//! * top `⇓U` and bottom `⇓∅`.
//!
//! [`DisclosureLattice`] materializes `I` by enumerating every subset of the
//! universe — exponential by nature, so it is reserved for the small
//! universes of the paper's worked examples, for validating the theory, and
//! for expressing formal security policies as lattice cuts
//! (`fdc-policy::lattice_policy`).  The production labelers in `fdc-core`
//! never materialize a lattice.

use std::collections::HashMap;
use std::fmt;

use crate::downset::downset;
use crate::order::DisclosureOrder;
use crate::view::ViewSet;

/// Index of an element (a distinct down-set) in a [`DisclosureLattice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub usize);

/// An explicit disclosure lattice over a small finite universe.
#[derive(Debug, Clone)]
pub struct DisclosureLattice {
    /// The distinct down-sets, sorted by (cardinality, bits) so that the
    /// bottom element is first and the top element is last.
    elements: Vec<ViewSet>,
    index: HashMap<ViewSet, ElementId>,
    universe_size: usize,
}

impl DisclosureLattice {
    /// Builds the disclosure lattice `I = {⇓W : W ⊆ U}` by enumeration.
    ///
    /// # Panics
    ///
    /// Panics if the universe has more than 20 views (the enumeration is
    /// exponential; the paper's examples need at most 16).
    pub fn build<O: DisclosureOrder>(order: &O) -> Self {
        let n = order.universe_size();
        assert!(
            n <= 20,
            "explicit lattice construction is exponential in |U|"
        );
        let mut elements: Vec<ViewSet> = Vec::new();
        let mut index: HashMap<ViewSet, ElementId> = HashMap::new();
        for w in ViewSet::all_subsets(n) {
            let d = downset(order, w);
            if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(d) {
                slot.insert(ElementId(usize::MAX)); // placeholder, re-assigned below
                elements.push(d);
            }
        }
        elements.sort_by_key(|e| (e.len(), e.bits()));
        index.clear();
        for (i, e) in elements.iter().enumerate() {
            index.insert(*e, ElementId(i));
        }
        DisclosureLattice {
            elements,
            index,
            universe_size: n,
        }
    }

    /// Number of distinct elements (information levels).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the lattice has no elements (never happens for a valid order).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The number of views in the underlying universe.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The down-set corresponding to an element.
    pub fn element(&self, id: ElementId) -> ViewSet {
        self.elements[id.0]
    }

    /// All elements in (cardinality, bits) order; bottom first, top last.
    pub fn elements(&self) -> &[ViewSet] {
        &self.elements
    }

    /// Looks up the element id of a down-set, if it is one of the lattice's
    /// elements.
    pub fn id_of(&self, downset: ViewSet) -> Option<ElementId> {
        self.index.get(&downset).copied()
    }

    /// The element representing the information disclosed by `w`
    /// (i.e. `⇓w`, resolved to an element id).
    pub fn classify<O: DisclosureOrder>(&self, order: &O, w: ViewSet) -> ElementId {
        let d = downset(order, w);
        self.id_of(d)
            .expect("⇓w is an element of the lattice by construction")
    }

    /// The bottom element `⊥ = ⇓∅`.
    pub fn bottom(&self) -> ElementId {
        ElementId(0)
    }

    /// The top element `⊤ = ⇓U`.
    pub fn top(&self) -> ElementId {
        ElementId(self.elements.len() - 1)
    }

    /// Partial-order test: `a ≤ b` (down-set inclusion).
    pub fn leq(&self, a: ElementId, b: ElementId) -> bool {
        self.element(a).is_subset_of(self.element(b))
    }

    /// Greatest lower bound (Theorem 3.3 (b)): intersection of down-sets.
    pub fn glb(&self, a: ElementId, b: ElementId) -> ElementId {
        let meet = self.element(a).intersection(self.element(b));
        self.id_of(meet)
            .expect("the intersection of two down-sets is a down-set (GLB closure)")
    }

    /// Least upper bound (Theorem 3.3 (a)): `⇓` of the union.
    pub fn lub<O: DisclosureOrder>(&self, order: &O, a: ElementId, b: ElementId) -> ElementId {
        let join = downset(order, self.element(a).union(self.element(b)));
        self.id_of(join)
            .expect("⇓ of a union of elements is an element")
    }

    /// True if the lattice is distributive
    /// (`a ⊓ (b ⊔ c) = (a ⊓ b) ⊔ (a ⊓ c)` for all elements).
    ///
    /// Theorem 4.8: decomposability of the universe implies distributivity.
    pub fn is_distributive<O: DisclosureOrder>(&self, order: &O) -> bool {
        let ids: Vec<ElementId> = (0..self.len()).map(ElementId).collect();
        for &a in &ids {
            for &b in &ids {
                for &c in &ids {
                    let lhs = self.glb(a, self.lub(order, b, c));
                    let rhs = self.lub(order, self.glb(a, b), self.glb(a, c));
                    if lhs != rhs {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The covering ("Hasse diagram") edges of the lattice: pairs `(a, b)`
    /// with `a < b` and no element strictly between them.
    pub fn hasse_edges(&self) -> Vec<(ElementId, ElementId)> {
        let mut edges = Vec::new();
        let ids: Vec<ElementId> = (0..self.len()).map(ElementId).collect();
        for &a in &ids {
            for &b in &ids {
                if a == b || !self.leq(a, b) {
                    continue;
                }
                let covered = ids
                    .iter()
                    .any(|&m| m != a && m != b && self.leq(a, m) && self.leq(m, b));
                if !covered {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Renders the Hasse diagram in Graphviz DOT format, labelling each node
    /// with its down-set through `label`.
    pub fn to_dot(&self, label: impl Fn(ViewSet) -> String) -> String {
        let mut out = String::from("digraph disclosure_lattice {\n  rankdir=BT;\n");
        for (i, e) in self.elements.iter().enumerate() {
            out.push_str(&format!("  n{} [label=\"{}\"];\n", i, label(*e)));
        }
        for (a, b) in self.hasse_edges() {
            out.push_str(&format!("  n{} -> n{};\n", a.0, b.0));
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for DisclosureLattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "disclosure lattice with {} elements:", self.len())?;
        for (i, e) in self.elements.iter().enumerate() {
            writeln!(f, "  [{i}] {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{SingletonLiftedOrder, SubsetOrder};
    use crate::view::ViewId;

    /// The Figure 3 universe (see `downset::tests`): V0 = full view,
    /// V1/V2 = column projections, V3 = nonemptiness.
    fn figure3_order() -> impl DisclosureOrder {
        SingletonLiftedOrder::new(4, |v: ViewId, w: ViewSet| {
            if w.contains(v) {
                return true;
            }
            match v.0 {
                0 => false,
                1 | 2 => w.contains(ViewId(0)),
                3 => !w.is_empty(),
                _ => false,
            }
        })
    }

    #[test]
    fn figure_3_lattice_has_six_elements() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        // Figure 3: ⊥, ⇓{V5}, ⇓{V2}, ⇓{V4}, ⇓{V2,V4}, ⊤.
        assert_eq!(lattice.len(), 6);
        assert!(!lattice.is_empty());
        assert_eq!(lattice.universe_size(), 4);
        assert_eq!(lattice.element(lattice.bottom()), ViewSet::EMPTY);
        assert_eq!(lattice.element(lattice.top()), ViewSet::full(4));
    }

    #[test]
    fn figure_3_glb_and_lub() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let col1 = lattice.classify(&order, ViewSet::singleton(ViewId(1)));
        let col2 = lattice.classify(&order, ViewSet::singleton(ViewId(2)));
        let nonempty = lattice.classify(&order, ViewSet::singleton(ViewId(3)));
        let both = lattice.classify(&order, ViewSet::singleton(ViewId(1)).with(ViewId(2)));
        let top = lattice.top();

        // "The GLB of ⇓{V2} and ⇓{V4} is ⇓{V5}."
        assert_eq!(lattice.glb(col1, col2), nonempty);
        // "Their LUB is not ⇓{V1} but another properly lower element."
        let lub = lattice.lub(&order, col1, col2);
        assert_eq!(lub, both);
        assert_ne!(lub, top);
        assert!(lattice.leq(lub, top));
        assert!(!lattice.leq(top, lub));
    }

    #[test]
    fn lattice_laws_hold() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let ids: Vec<ElementId> = (0..lattice.len()).map(ElementId).collect();
        for &a in &ids {
            // Idempotence and bounds.
            assert_eq!(lattice.glb(a, a), a);
            assert_eq!(lattice.lub(&order, a, a), a);
            assert_eq!(lattice.glb(a, lattice.top()), a);
            assert_eq!(lattice.lub(&order, a, lattice.bottom()), a);
            assert!(lattice.leq(lattice.bottom(), a));
            assert!(lattice.leq(a, lattice.top()));
            for &b in &ids {
                // Commutativity.
                assert_eq!(lattice.glb(a, b), lattice.glb(b, a));
                assert_eq!(lattice.lub(&order, a, b), lattice.lub(&order, b, a));
                // GLB is a lower bound, LUB an upper bound.
                assert!(lattice.leq(lattice.glb(a, b), a));
                assert!(lattice.leq(a, lattice.lub(&order, a, b)));
                // Absorption.
                assert_eq!(lattice.glb(a, lattice.lub(&order, a, b)), a);
                assert_eq!(lattice.lub(&order, a, lattice.glb(a, b)), a);
            }
        }
    }

    #[test]
    fn figure_3_lattice_is_distributive() {
        // The Figure 3 universe is decomposable (single-atom views), so by
        // Theorem 4.8 its lattice is distributive.
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        assert!(lattice.is_distributive(&order));
    }

    #[test]
    fn subset_order_gives_the_boolean_lattice() {
        let order = SubsetOrder::new(3);
        let lattice = DisclosureLattice::build(&order);
        assert_eq!(lattice.len(), 8);
        assert!(lattice.is_distributive(&order));
        // Hasse diagram of the boolean lattice on 3 atoms has 12 edges.
        assert_eq!(lattice.hasse_edges().len(), 12);
    }

    #[test]
    fn hasse_edges_of_figure_3() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let edges = lattice.hasse_edges();
        // Figure 3 shows exactly 6 covering edges:
        // ⊥→⇓{V5}, ⇓{V5}→⇓{V2}, ⇓{V5}→⇓{V4}, ⇓{V2}→⇓{V2,V4}, ⇓{V4}→⇓{V2,V4}, ⇓{V2,V4}→⊤.
        assert_eq!(edges.len(), 6);
        for (a, b) in &edges {
            assert!(lattice.leq(*a, *b));
            assert_ne!(a, b);
        }
    }

    #[test]
    fn classification_and_dot_export() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let id = lattice.classify(&order, ViewSet::singleton(ViewId(0)));
        assert_eq!(id, lattice.top());
        let dot = lattice.to_dot(|s| s.to_string());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.contains("{V0, V1, V2, V3}"));
        // Display lists every element.
        let shown = lattice.to_string();
        assert!(shown.contains("6 elements"));
    }
}
