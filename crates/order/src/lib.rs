//! Order-theory substrate for disclosure control.
//!
//! Section 3 of Bender et al. (*Fine-Grained Disclosure Control for App
//! Ecosystems*, SIGMOD 2013) grounds disclosure labeling in order theory:
//!
//! * a **disclosure order** (Definition 3.1) ranks sets of views by how much
//!   information they reveal;
//! * the **`⇓` operator** (Definition 3.2) maps a set of views to the set of
//!   all views derivable from it;
//! * the family of all such down-sets forms the **disclosure lattice**
//!   (Theorem 3.3);
//! * **disclosure labelers** (Definition 3.4) are closure-operator-like maps
//!   whose existence is characterized by Theorem 3.7;
//! * **downward generating sets** and **generating sets** (Section 4) are
//!   the compact representations the practical algorithms work with.
//!
//! This crate implements all of that machinery for *finite universes of
//! views*, identified by opaque [`ViewId`]s.  It is deliberately independent
//! of any query language: the conjunctive-query instantiation lives in
//! `fdc-core`, which plugs a concrete rewriting-based order into the
//! [`DisclosureOrder`] trait defined here.  The finite machinery is used to
//! validate the theory (every theorem in Sections 3 and 4 has executable
//! checks here), to drive the small lattice examples of the paper, and to
//! express formal security policies as lattice cuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod downset;
pub mod genset;
pub mod labeler;
pub mod lattice;
pub mod order;
pub mod view;

pub use downset::downset;
pub use labeler::{induced_labeler, induces_labeler, FiniteLabeler};
pub use lattice::DisclosureLattice;
pub use order::{DisclosureOrder, FnOrder, SubsetOrder};
pub use view::{ViewId, ViewSet};
