//! Disclosure orders (Definition 3.1) over finite universes of views.
//!
//! A disclosure order is a preorder `⪯` on sets of views such that
//!
//! * (a) `W1 ⊆ W2` implies `W1 ⪯ W2`, and
//! * (b) if every `W ∈ φ` satisfies `W ⪯ W0` then `⋃φ ⪯ W0`.
//!
//! The trait [`DisclosureOrder`] captures the comparison; implementors are
//! responsible for satisfying the axioms, and
//! [`check_disclosure_order_axioms`] provides an executable (exhaustive, for
//! small universes) check used by the test suite and by property tests.

use crate::view::{ViewId, ViewSet};

/// A disclosure order over a finite universe of views `0..universe_size()`.
pub trait DisclosureOrder {
    /// Number of views in the universe `U`.
    fn universe_size(&self) -> usize;

    /// The comparison `w1 ⪯ w2`: everything revealed by `w1` is revealed by `w2`.
    fn leq(&self, w1: ViewSet, w2: ViewSet) -> bool;

    /// The induced equivalence `w1 ≡ w2` (Section 3.1).
    fn equivalent(&self, w1: ViewSet, w2: ViewSet) -> bool {
        self.leq(w1, w2) && self.leq(w2, w1)
    }

    /// The full universe as a [`ViewSet`].
    fn universe(&self) -> ViewSet {
        ViewSet::full(self.universe_size())
    }
}

/// The subset order: `W1 ⪯ W2` iff `W1 ⊆ W2`.
///
/// The simplest disclosure order (mentioned in Section 3.1); useful as a
/// baseline and for tests.
#[derive(Debug, Clone, Copy)]
pub struct SubsetOrder {
    universe_size: usize,
}

impl SubsetOrder {
    /// A subset order over a universe of `n` views.
    pub fn new(universe_size: usize) -> Self {
        SubsetOrder { universe_size }
    }
}

impl DisclosureOrder for SubsetOrder {
    fn universe_size(&self) -> usize {
        self.universe_size
    }

    fn leq(&self, w1: ViewSet, w2: ViewSet) -> bool {
        w1.is_subset_of(w2)
    }
}

/// A disclosure order defined by an arbitrary comparison function.
///
/// The caller is responsible for the axioms of Definition 3.1; use
/// [`check_disclosure_order_axioms`] in tests.  The most common use is to
/// lift a *singleton* comparison ("view `v` is derivable from the set `w`")
/// into a full order with `FnOrder::from_singleton_leq`, which satisfies
/// the axioms by construction whenever the singleton comparison is monotone
/// in `w` and reflexive.
pub struct FnOrder<F>
where
    F: Fn(ViewSet, ViewSet) -> bool,
{
    universe_size: usize,
    leq: F,
}

impl<F> FnOrder<F>
where
    F: Fn(ViewSet, ViewSet) -> bool,
{
    /// Wraps a set-to-set comparison function.
    pub fn new(universe_size: usize, leq: F) -> Self {
        FnOrder { universe_size, leq }
    }
}

impl<F> DisclosureOrder for FnOrder<F>
where
    F: Fn(ViewSet, ViewSet) -> bool,
{
    fn universe_size(&self) -> usize {
        self.universe_size
    }

    fn leq(&self, w1: ViewSet, w2: ViewSet) -> bool {
        (self.leq)(w1, w2)
    }
}

/// A disclosure order derived from a singleton comparison
/// `derivable(v, w)` = "the single view `v` can be computed from the set `w`".
///
/// The set-level order is `W1 ⪯ W2` iff every `v ∈ W1` is derivable from
/// `W2`.  If `derivable` is reflexive-on-members (`v ∈ w ⇒ derivable(v, w)`)
/// and monotone in `w`, the result satisfies Definition 3.1:
///
/// * axiom (a) follows from reflexivity-on-members;
/// * axiom (b) holds because the definition quantifies over the members of
///   the left-hand set one at a time, so a union on the left changes nothing;
/// * transitivity requires the natural composition property
///   (`derivable(v, W)` and `W ⪯ W'` imply `derivable(v, W')`), which holds
///   for equivalent view rewriting and determinacy alike.
///
/// This mirrors how the paper's concrete orders (equivalent view rewriting,
/// determinacy) are evaluated in practice.
pub struct SingletonLiftedOrder<D>
where
    D: Fn(ViewId, ViewSet) -> bool,
{
    universe_size: usize,
    derivable: D,
}

impl<D> SingletonLiftedOrder<D>
where
    D: Fn(ViewId, ViewSet) -> bool,
{
    /// Lifts a singleton derivability predicate to a set-level order.
    pub fn new(universe_size: usize, derivable: D) -> Self {
        SingletonLiftedOrder {
            universe_size,
            derivable,
        }
    }
}

impl<D> DisclosureOrder for SingletonLiftedOrder<D>
where
    D: Fn(ViewId, ViewSet) -> bool,
{
    fn universe_size(&self) -> usize {
        self.universe_size
    }

    fn leq(&self, w1: ViewSet, w2: ViewSet) -> bool {
        w1.iter().all(|v| (self.derivable)(v, w2))
    }
}

/// Exhaustively checks the disclosure-order axioms of Definition 3.1 on a
/// small universe.
///
/// Checks reflexivity, transitivity, axiom (a) (`⊆` implies `⪯`) and axiom
/// (b) (closure of the left side under unions).  Exponential in the universe
/// size; intended for universes of at most ~6 views in tests.
///
/// Returns `Err` with a human-readable description of the first violated
/// axiom.
pub fn check_disclosure_order_axioms<O: DisclosureOrder>(order: &O) -> Result<(), String> {
    let n = order.universe_size();
    assert!(
        n <= 6,
        "exhaustive axiom checking is exponential; keep the universe small"
    );
    let subsets: Vec<ViewSet> = ViewSet::all_subsets(n).collect();

    // Reflexivity.
    for &w in &subsets {
        if !order.leq(w, w) {
            return Err(format!("reflexivity violated: {w} ⪯̸ {w}"));
        }
    }
    // Axiom (a): subset implies leq.
    for &w1 in &subsets {
        for &w2 in &subsets {
            if w1.is_subset_of(w2) && !order.leq(w1, w2) {
                return Err(format!("axiom (a) violated: {w1} ⊆ {w2} but {w1} ⪯̸ {w2}"));
            }
        }
    }
    // Transitivity.
    for &a in &subsets {
        for &b in &subsets {
            if !order.leq(a, b) {
                continue;
            }
            for &c in &subsets {
                if order.leq(b, c) && !order.leq(a, c) {
                    return Err(format!(
                        "transitivity violated: {a} ⪯ {b} ⪯ {c} but {a} ⪯̸ {c}"
                    ));
                }
            }
        }
    }
    // Axiom (b): if every member of a family is below w0, the union is too.
    // Pairwise unions suffice (general families follow by induction).
    for &w0 in &subsets {
        for &a in &subsets {
            if !order.leq(a, w0) {
                continue;
            }
            for &b in &subsets {
                if order.leq(b, w0) && !order.leq(a.union(b), w0) {
                    return Err(format!(
                        "axiom (b) violated: {a} ⪯ {w0} and {b} ⪯ {w0} but {} ⪯̸ {w0}",
                        a.union(b)
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_order_satisfies_the_axioms() {
        let order = SubsetOrder::new(4);
        assert_eq!(order.universe_size(), 4);
        assert_eq!(order.universe(), ViewSet::full(4));
        check_disclosure_order_axioms(&order).unwrap();
    }

    #[test]
    fn subset_order_comparisons() {
        let order = SubsetOrder::new(3);
        let a = ViewSet::singleton(ViewId(0));
        let ab = a.with(ViewId(1));
        assert!(order.leq(a, ab));
        assert!(!order.leq(ab, a));
        assert!(order.leq(ViewSet::EMPTY, a));
        assert!(order.equivalent(a, a));
        assert!(!order.equivalent(a, ab));
    }

    #[test]
    fn fn_order_wraps_arbitrary_comparisons() {
        // An order where everything is equivalent (the "no information"
        // order): a legal, if useless, disclosure order.
        let order = FnOrder::new(3, |_, _| true);
        check_disclosure_order_axioms(&order).unwrap();
        assert!(order.equivalent(ViewSet::EMPTY, ViewSet::full(3)));
    }

    #[test]
    fn singleton_lifted_order_mimics_projection_structure() {
        // Universe modelled on Figure 3: V0 = full Meetings view, V1 = first
        // column, V2 = second column, V3 = nonemptiness.
        // derivable(v, w): v is in w, or v can be computed from some member.
        let derivable = |v: ViewId, w: ViewSet| -> bool {
            if w.contains(v) {
                return true;
            }
            match v.0 {
                // The full view is only derivable from itself.
                0 => false,
                // A projection is derivable from the full view.
                1 | 2 => w.contains(ViewId(0)),
                // Nonemptiness is derivable from anything nonempty.
                3 => !w.is_empty(),
                _ => false,
            }
        };
        let order = SingletonLiftedOrder::new(4, derivable);
        check_disclosure_order_axioms(&order).unwrap();

        let full = ViewSet::singleton(ViewId(0));
        let proj1 = ViewSet::singleton(ViewId(1));
        let proj2 = ViewSet::singleton(ViewId(2));
        let nonempty = ViewSet::singleton(ViewId(3));

        assert!(order.leq(proj1, full));
        assert!(order.leq(proj2, full));
        assert!(order.leq(nonempty, proj1));
        assert!(!order.leq(full, proj1.union(proj2)));
        assert!(order.leq(proj1.union(proj2), full));
        assert!(!order.leq(proj1, proj2));
    }

    #[test]
    fn axiom_checker_catches_violations() {
        // "leq" that is not reflexive.
        let broken = FnOrder::new(2, |w1: ViewSet, w2: ViewSet| {
            w1 != w2 && w1.is_subset_of(w2)
        });
        let err = check_disclosure_order_axioms(&broken).unwrap_err();
        assert!(err.contains("reflexivity"));

        // An order that violates axiom (a): comparisons only between equal sets.
        let broken_a = FnOrder::new(2, |w1: ViewSet, w2: ViewSet| w1 == w2);
        let err = check_disclosure_order_axioms(&broken_a).unwrap_err();
        assert!(err.contains("axiom (a)"));
    }
}
