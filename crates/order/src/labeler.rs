//! Disclosure labelers over finite universes (Definitions 3.4–3.8).
//!
//! A disclosure labeler re-states the information revealed by an arbitrary
//! set of views in terms of a fixed family `F` of *disclosure labels*.  Not
//! every `F` admits a labeler: Theorem 3.7 shows that one exists exactly
//! when `K = {⇓W : W ∈ F}` is closed under GLB (intersection of down-sets)
//! and contains the top element; when it exists it is unique up to
//! equivalence.
//!
//! This module provides the executable version of that theory for finite
//! universes, together with the `NaïveLabel` algorithm of Section 3.3.  The
//! practical, query-language-specific labelers live in `fdc-core`.

use crate::downset::downset;
use crate::order::DisclosureOrder;
use crate::view::ViewSet;

/// Checks whether a family `F` of view sets induces a disclosure labeler
/// (Theorem 3.7): `K = {⇓W : W ∈ F}` must be closed under intersection and
/// contain `⇓U = U`.
pub fn induces_labeler<O: DisclosureOrder>(order: &O, f: &[ViewSet]) -> bool {
    let k: Vec<ViewSet> = f.iter().map(|w| downset(order, *w)).collect();
    let top = downset(order, order.universe());
    if !k.contains(&top) {
        return false;
    }
    for (i, &a) in k.iter().enumerate() {
        for &b in &k[i + 1..] {
            let meet = a.intersection(b);
            if !k.contains(&meet) {
                return false;
            }
        }
    }
    true
}

/// A disclosure labeler for a finite universe, induced by a family `F`
/// (Definition 3.8).
///
/// The labeler maps a set of views `W` to the (unique up to equivalence)
/// least-informative label of `F` that reveals at least as much as `W`.
#[derive(Debug, Clone)]
pub struct FiniteLabeler {
    /// The labels, exactly as supplied.
    labels: Vec<ViewSet>,
    /// `⇓` of each label, in the same order.
    label_downsets: Vec<ViewSet>,
}

impl FiniteLabeler {
    /// Number of labels in `F`.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// The labels of `F` in their original order.
    pub fn labels(&self) -> &[ViewSet] {
        &self.labels
    }

    /// Labels `W`: returns the index into `F` of the least label whose
    /// down-set contains `⇓W`.
    ///
    /// This is the `NaïveLabel` algorithm of Section 3.3, except that
    /// instead of pre-sorting `F` it scans for the minimum directly (the
    /// result is the same because the minimum is unique up to equivalence
    /// when `F` induces a labeler).
    pub fn label<O: DisclosureOrder>(&self, order: &O, w: ViewSet) -> usize {
        let target = downset(order, w);
        let mut best: Option<usize> = None;
        for (i, d) in self.label_downsets.iter().enumerate() {
            if target.is_subset_of(*d) {
                best = match best {
                    None => Some(i),
                    Some(j) if d.is_proper_subset_of(self.label_downsets[j]) => Some(i),
                    Some(j) => Some(j),
                };
            }
        }
        best.expect("F contains the top element, which is above everything")
    }

    /// Labels `W` and returns the label itself rather than its index.
    pub fn label_set<O: DisclosureOrder>(&self, order: &O, w: ViewSet) -> ViewSet {
        self.labels[self.label(order, w)]
    }

    /// The lattice of disclosure labels (Theorem 3.6): the distinct
    /// down-sets of the labels, ordered by inclusion.
    pub fn label_lattice_elements(&self) -> Vec<ViewSet> {
        let mut elems = self.label_downsets.clone();
        elems.sort_by_key(|e| (e.len(), e.bits()));
        elems.dedup();
        elems
    }

    /// Verifies the labeler axioms of Definition 3.4 by exhaustive
    /// enumeration of subsets of the universe.  Intended for tests on small
    /// universes; returns a description of the first violated axiom.
    pub fn check_axioms<O: DisclosureOrder>(&self, order: &O) -> Result<(), String> {
        let n = order.universe_size();
        assert!(n <= 10, "exhaustive axiom checking is exponential in |U|");
        for w in ViewSet::all_subsets(n) {
            let idx = self.label(order, w);
            let lw = self.labels[idx];
            // (a) the output is (equivalent to) an element of F: by
            // construction it *is* an element of F.
            // (b) fixpoint on F.
            if self.labels.contains(&w) && !order.equivalent(lw, w) {
                return Err(format!("axiom (b) violated: ℓ({w}) = {lw} is not ≡ {w}"));
            }
            // (c) never underestimates.
            if !order.leq(w, lw) {
                return Err(format!("axiom (c) violated: {w} ⪯̸ ℓ({w}) = {lw}"));
            }
        }
        // (d) monotonicity.
        for w1 in ViewSet::all_subsets(n) {
            for w2 in ViewSet::all_subsets(n) {
                if order.leq(w1, w2) {
                    let l1 = self.labels[self.label(order, w1)];
                    let l2 = self.labels[self.label(order, w2)];
                    if !order.leq(l1, l2) {
                        return Err(format!(
                            "axiom (d) violated: {w1} ⪯ {w2} but ℓ({w1}) = {l1} ⪯̸ ℓ({w2}) = {l2}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds the labeler induced by `F` (Definition 3.8), or `None` if `F` does
/// not induce one.
pub fn induced_labeler<O: DisclosureOrder>(order: &O, f: &[ViewSet]) -> Option<FiniteLabeler> {
    if !induces_labeler(order, f) {
        return None;
    }
    let label_downsets = f.iter().map(|w| downset(order, *w)).collect();
    Some(FiniteLabeler {
        labels: f.to_vec(),
        label_downsets,
    })
}

/// The `NaïveLabel` procedure of Section 3.3, literally: sorts `F` by
/// increasing disclosure and returns the first element that reveals at least
/// as much as `W`.
///
/// Provided mostly for documentation and cross-checking against
/// [`FiniteLabeler::label`]; the two agree up to equivalence whenever `F`
/// induces a labeler.
pub fn naive_label<O: DisclosureOrder>(order: &O, f: &[ViewSet], w: ViewSet) -> ViewSet {
    let mut sorted: Vec<ViewSet> = f.to_vec();
    // Sort so that if F[i] ⪯ F[j] then i ≤ j: order by down-set cardinality,
    // which is compatible with the disclosure order.
    sorted.sort_by_key(|x| downset(order, *x).len());
    for candidate in &sorted {
        if order.leq(w, *candidate) {
            return *candidate;
        }
    }
    order.universe()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::SingletonLiftedOrder;
    use crate::view::ViewId;

    /// Figure 3 universe: V0 full view, V1/V2 column projections, V3 nonemptiness.
    fn figure3_order() -> impl DisclosureOrder {
        SingletonLiftedOrder::new(4, |v: ViewId, w: ViewSet| {
            if w.contains(v) {
                return true;
            }
            match v.0 {
                0 => false,
                1 | 2 => w.contains(ViewId(0)),
                3 => !w.is_empty(),
                _ => false,
            }
        })
    }

    fn s(ids: &[u32]) -> ViewSet {
        ids.iter().map(|&i| ViewId(i)).collect()
    }

    #[test]
    fn example_3_5_no_labeler_without_the_bottom_between() {
        // F = {∅, {V2}, {V4}, {V2,V4}, ⊤} in the paper's notation, i.e.
        // {∅, {V1}, {V2}, {V1,V2}, {V0}} in ours.  The GLB of ⇓{V1} and
        // ⇓{V2} is ⇓{V3}, which is not represented, so no labeler exists.
        let order = figure3_order();
        let f = vec![s(&[]), s(&[1]), s(&[2]), s(&[1, 2]), s(&[0])];
        assert!(!induces_labeler(&order, &f));
        assert!(induced_labeler(&order, &f).is_none());
    }

    #[test]
    fn adding_the_overlap_view_restores_the_labeler() {
        // Adding {V3} (the paper's {V5}) closes F under GLB.
        let order = figure3_order();
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[1, 2]), s(&[0])];
        assert!(induces_labeler(&order, &f));
        let labeler = induced_labeler(&order, &f).unwrap();
        labeler.check_axioms(&order).unwrap();
        assert_eq!(labeler.num_labels(), 6);
        assert_eq!(labeler.labels().len(), 6);
    }

    #[test]
    fn labels_are_the_least_sufficient_elements() {
        let order = figure3_order();
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[1, 2]), s(&[0])];
        let labeler = induced_labeler(&order, &f).unwrap();

        // The nonemptiness view labels to itself.
        assert_eq!(labeler.label_set(&order, s(&[3])), s(&[3]));
        // A projection labels to itself, not to the full view.
        assert_eq!(labeler.label_set(&order, s(&[1])), s(&[1]));
        // Both projections together label to {V1, V2}.
        assert_eq!(labeler.label_set(&order, s(&[1, 2])), s(&[1, 2]));
        // The full view needs the top label.
        assert_eq!(labeler.label_set(&order, s(&[0])), s(&[0]));
        // The empty set labels to the bottom label.
        assert_eq!(labeler.label_set(&order, ViewSet::EMPTY), ViewSet::EMPTY);
    }

    #[test]
    fn missing_top_element_means_no_labeler() {
        let order = figure3_order();
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[1, 2])];
        assert!(!induces_labeler(&order, &f));
    }

    #[test]
    fn naive_label_agrees_with_the_induced_labeler() {
        let order = figure3_order();
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[1, 2]), s(&[0])];
        let labeler = induced_labeler(&order, &f).unwrap();
        for w in ViewSet::all_subsets(4) {
            let a = labeler.label_set(&order, w);
            let b = naive_label(&order, &f, w);
            assert!(
                order.equivalent(a, b),
                "disagreement on {w}: induced={a}, naive={b}"
            );
        }
    }

    #[test]
    fn imprecise_but_valid_labeler_from_a_coarse_f() {
        // F = {∅, {V3}, {V1}, {V2}, ⊤}: still GLB-closed and contains ⊤, but
        // the set {V1, V2} now labels all the way up to ⊤ (imprecision of the
        // kind discussed below Definition 4.6).
        let order = figure3_order();
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[0])];
        assert!(induces_labeler(&order, &f));
        let labeler = induced_labeler(&order, &f).unwrap();
        labeler.check_axioms(&order).unwrap();
        assert_eq!(labeler.label_set(&order, s(&[1, 2])), s(&[0]));
    }

    #[test]
    fn label_lattice_elements_are_the_distinct_downsets_of_f() {
        let order = figure3_order();
        let f = vec![s(&[]), s(&[3]), s(&[1]), s(&[2]), s(&[1, 2]), s(&[0])];
        let labeler = induced_labeler(&order, &f).unwrap();
        let lattice = labeler.label_lattice_elements();
        assert_eq!(lattice.len(), 6);
        // They are sorted from bottom to top.
        assert_eq!(lattice[0], ViewSet::EMPTY);
        assert_eq!(lattice[5], ViewSet::full(4));
    }
}
