//! The app-ecosystem simulator used by the evaluation (Section 7.2).
//!
//! The paper's experiments run against "eight different relations that
//! captured core functionality from the Facebook API", the largest being a
//! `User` relation with 34 attributes, each relation carrying an extra
//! column that records whether the owner of a tuple is a friend of the
//! querying principal (the denormalization the authors use in place of
//! joined security views).  Security views are per-relation projections —
//! 16 for `User`, about 3 for each of the others — chosen to support the
//! confidentiality policies of Facebook's developer documentation.
//!
//! This crate rebuilds that substrate:
//!
//! * [`schema`] — the eight-relation catalog;
//! * [`views`] — the per-relation security views and permission names;
//! * [`workload`] — the randomized query generator of Section 7.2
//!   (random relation, random attribute subset, self / friends /
//!   friends-of-friends / non-friend access, and the uid-join stress mode);
//! * [`policies`] — the random policy generator used by the Figure 6
//!   policy-checker experiment;
//! * [`churn`] — the mixed admission/mutation operation stream of the
//!   Figure 7 dynamic-service experiment;
//! * [`Ecosystem`] — a bundle of all of the above plus ready-made labelers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod ecosystem;
pub mod policies;
pub mod schema;
pub mod views;
pub mod workload;

pub use churn::{ChurnConfig, ChurnGenerator};
pub use ecosystem::Ecosystem;
pub use schema::facebook_catalog;
pub use views::facebook_security_views;
pub use workload::{Audience, WorkloadConfig, WorkloadGenerator};
