//! A ready-made bundle of the evaluation substrate.
//!
//! [`Ecosystem`] packages the Facebook-like schema, its security views, and
//! the three labeler variants, so that examples, integration tests and the
//! benchmark harness can set the whole system up with one call.

use fdc_core::{
    BaselineLabeler, BitVectorLabeler, DisclosureLabel, HashPartitionedLabeler, QueryLabeler,
    SecurityViews,
};
use fdc_cq::ConjunctiveQuery;

use crate::policies::{PolicyGenerator, PolicyGeneratorConfig};
use crate::schema::{facebook_catalog, FacebookSchema};
use crate::views::facebook_security_views;
use crate::workload::{WorkloadConfig, WorkloadGenerator};

/// The fully assembled evaluation ecosystem.
#[derive(Debug, Clone)]
pub struct Ecosystem {
    /// The eight-relation schema.
    pub schema: FacebookSchema,
    /// The 37 security views (16 for `User`, 3 per other relation).
    pub views: SecurityViews,
    /// The baseline labeler (Figure 5's "baseline" curve).
    pub baseline: BaselineLabeler,
    /// The hash-partitioned labeler (Figure 5's "hashing only" curve).
    pub hashed: HashPartitionedLabeler,
    /// The bit-vector labeler (Figure 5's "bit vectors + hashing" curve).
    pub bitvec: BitVectorLabeler,
}

impl Ecosystem {
    /// Builds the evaluation ecosystem.
    pub fn new() -> Self {
        let schema = facebook_catalog();
        let views = facebook_security_views(&schema);
        Ecosystem {
            baseline: BaselineLabeler::new(views.clone()),
            hashed: HashPartitionedLabeler::new(views.clone()),
            bitvec: BitVectorLabeler::new(views.clone()),
            schema,
            views,
        }
    }

    /// A workload generator over this ecosystem's schema.
    pub fn workload(&self, config: WorkloadConfig) -> WorkloadGenerator {
        WorkloadGenerator::new(self.schema.clone(), config)
    }

    /// A policy generator over this ecosystem's security views.
    pub fn policy_generator(&self, config: PolicyGeneratorConfig) -> PolicyGenerator {
        PolicyGenerator::new(&self.views, config)
    }

    /// Labels a query with the production (bit-vector) labeler.
    pub fn label(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        self.bitvec.label_query(query)
    }

    /// Labels a batch of queries with the production labeler, returning one
    /// label per query (the raw material of the Figure 6 experiment).
    pub fn label_batch(&self, queries: &[ConjunctiveQuery]) -> Vec<DisclosureLabel> {
        queries.iter().map(|q| self.label(q)).collect()
    }
}

impl Default for Ecosystem {
    fn default() -> Self {
        Ecosystem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ecosystem_assembles_consistently() {
        let eco = Ecosystem::default();
        assert_eq!(eco.schema.catalog.len(), 8);
        assert_eq!(eco.views.len(), 37);
        assert_eq!(eco.baseline.security_views().len(), eco.views.len());
        assert_eq!(eco.hashed.security_views().len(), eco.views.len());
        assert_eq!(eco.bitvec.security_views().len(), eco.views.len());
    }

    #[test]
    fn all_labelers_agree_on_a_workload_sample() {
        let eco = Ecosystem::new();
        let mut workload = eco.workload(WorkloadConfig::stress(2, 17));
        for query in workload.batch(150) {
            let a = eco.baseline.label_query(&query);
            let b = eco.hashed.label_query(&query);
            let c = eco.bitvec.label_query(&query);
            assert_eq!(a, b, "baseline vs hashed disagree on {query:?}");
            assert_eq!(a, c, "baseline vs bitvec disagree on {query:?}");
        }
    }

    #[test]
    fn label_batch_produces_one_label_per_query() {
        let eco = Ecosystem::new();
        let mut workload = eco.workload(WorkloadConfig::base(3));
        let queries = workload.batch(50);
        let labels = eco.label_batch(&queries);
        assert_eq!(labels.len(), queries.len());
        for label in &labels {
            assert!(!label.is_bottom());
            assert!(!label.contains_top());
        }
    }

    #[test]
    fn policy_generator_and_workload_compose() {
        use fdc_policy::PrincipalId;
        let eco = Ecosystem::new();
        let mut policies = eco.policy_generator(PolicyGeneratorConfig {
            max_partitions: 5,
            max_elements_per_partition: 20,
            seed: 4,
        });
        let mut store = policies.build_store(&eco.views, 100);
        let mut workload = eco.workload(WorkloadConfig::base(5));
        let labels = eco.label_batch(&workload.batch(200));
        let mut allowed = 0usize;
        let mut denied = 0usize;
        for (i, label) in labels.iter().enumerate() {
            let principal = PrincipalId((i % 100) as u32);
            if store.submit(principal, label).is_allow() {
                allowed += 1;
            } else {
                denied += 1;
            }
        }
        assert_eq!(allowed + denied, 200);
        // Random policies should neither allow nor deny everything.
        assert!(allowed > 0);
        assert!(denied > 0);
    }
}
