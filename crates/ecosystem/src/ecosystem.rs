//! A ready-made bundle of the evaluation substrate.
//!
//! [`Ecosystem`] packages the Facebook-like schema, its security views, and
//! the three labeler variants, so that examples, integration tests and the
//! benchmark harness can set the whole system up with one call.

use fdc_core::{
    BaselineLabeler, BitVectorLabeler, CachedLabeler, DisclosureLabel, HashPartitionedLabeler,
    PackedLabel, QueryLabeler, SecurityViews,
};
use fdc_cq::ConjunctiveQuery;
use fdc_service::{DisclosureService, ServiceConfig};

use crate::churn::{ChurnConfig, ChurnGenerator};
use crate::policies::{PolicyGenerator, PolicyGeneratorConfig};
use crate::schema::{facebook_catalog, FacebookSchema};
use crate::views::facebook_security_views;
use crate::workload::{WorkloadConfig, WorkloadGenerator};

/// The fully assembled evaluation ecosystem.
#[derive(Debug, Clone)]
pub struct Ecosystem {
    /// The eight-relation schema.
    pub schema: FacebookSchema,
    /// The 37 security views (16 for `User`, 3 per other relation).
    pub views: SecurityViews,
    /// The baseline labeler (Figure 5's "baseline" curve).
    pub baseline: BaselineLabeler,
    /// The hash-partitioned labeler (Figure 5's "hashing only" curve).
    pub hashed: HashPartitionedLabeler,
    /// The bit-vector labeler (Figure 5's "bit vectors + hashing" curve).
    pub bitvec: BitVectorLabeler,
    /// The canonical-form caching labeler (beyond the paper's variants —
    /// the high-throughput serving path).
    pub cached: CachedLabeler,
}

impl Ecosystem {
    /// Builds the evaluation ecosystem.
    pub fn new() -> Self {
        let schema = facebook_catalog();
        let views = facebook_security_views(&schema);
        Ecosystem {
            baseline: BaselineLabeler::new(views.clone()),
            hashed: HashPartitionedLabeler::new(views.clone()),
            bitvec: BitVectorLabeler::new(views.clone()),
            cached: CachedLabeler::new(views.clone()),
            schema,
            views,
        }
    }

    /// A workload generator over this ecosystem's schema.
    pub fn workload(&self, config: WorkloadConfig) -> WorkloadGenerator {
        WorkloadGenerator::new(self.schema.clone(), config)
    }

    /// A policy generator over this ecosystem's security views.
    pub fn policy_generator(&self, config: PolicyGeneratorConfig) -> PolicyGenerator {
        PolicyGenerator::new(&self.views, config)
    }

    /// Labels a query with the production (bit-vector) labeler.
    pub fn label(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        self.bitvec.label_query(query)
    }

    /// Labels a batch of queries with the production labeler, returning one
    /// label per query (the raw material of the Figure 6 experiment).
    pub fn label_batch(&self, queries: &[ConjunctiveQuery]) -> Vec<DisclosureLabel> {
        queries.iter().map(|q| self.label(q)).collect()
    }

    /// Labels a batch of queries on all cores through the caching labeler,
    /// returning one label per query in input order.
    pub fn label_batch_parallel(&self, queries: &[ConjunctiveQuery]) -> Vec<DisclosureLabel> {
        self.cached.label_batch(queries)
    }

    /// Labels a batch of queries on all cores and returns the packed 64-bit
    /// representation of every label — the form the policy stores consume
    /// directly.
    pub fn label_batch_packed(&self, queries: &[ConjunctiveQuery]) -> Vec<Vec<PackedLabel>> {
        self.cached.label_batch_packed(queries)
    }

    /// Builds a [`DisclosureService`] — the dynamic front door of the
    /// system (labeling, enforcement, mutation and audit behind one
    /// entry point) — with `num_principals` randomly generated policies.
    pub fn disclosure_service(
        &self,
        config: PolicyGeneratorConfig,
        num_principals: usize,
        service_config: ServiceConfig,
    ) -> DisclosureService {
        let mut service = DisclosureService::new(self.views.clone(), service_config);
        let mut policies = self.policy_generator(config);
        for _ in 0..num_principals {
            let policy = policies.next_policy(&self.views);
            service.register_principal(policy);
        }
        service
    }

    /// A churn-stream generator over this ecosystem's schema and views —
    /// the operation mix of the Figure 7 dynamic-service experiment.
    pub fn churn(&self, config: ChurnConfig) -> ChurnGenerator {
        ChurnGenerator::new(self.schema.clone(), &self.views, config)
    }
}

impl Default for Ecosystem {
    fn default() -> Self {
        Ecosystem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ecosystem_assembles_consistently() {
        let eco = Ecosystem::default();
        assert_eq!(eco.schema.catalog.len(), 8);
        assert_eq!(eco.views.len(), 37);
        assert_eq!(eco.baseline.security_views().len(), eco.views.len());
        assert_eq!(eco.hashed.security_views().len(), eco.views.len());
        assert_eq!(eco.bitvec.security_views().len(), eco.views.len());
        assert_eq!(eco.cached.security_views().len(), eco.views.len());
    }

    #[test]
    fn all_labelers_agree_on_a_workload_sample() {
        let eco = Ecosystem::new();
        let mut workload = eco.workload(WorkloadConfig::stress(2, 17));
        let queries = workload.batch(150);
        for query in &queries {
            let a = eco.baseline.label_query(query);
            let b = eco.hashed.label_query(query);
            let c = eco.bitvec.label_query(query);
            let d = eco.cached.label_query(query);
            assert_eq!(a, b, "baseline vs hashed disagree on {query:?}");
            assert_eq!(a, c, "baseline vs bitvec disagree on {query:?}");
            assert_eq!(a, d, "baseline vs cached disagree on {query:?}");
        }
        // Atoms recur across query shapes even within the first pass (the
        // Friend join atoms in particular), and a repeated batch — the
        // serving steady state — is answered entirely from the query cache.
        let cold = eco.cached.stats();
        assert!(cold.atom_hits > 0, "no atom-level sharing at all: {cold:?}");
        for query in &queries {
            eco.cached.label_query(query);
        }
        let warm = eco.cached.stats();
        assert_eq!(warm.misses, cold.misses, "second pass must not miss");
        assert!(warm.hits >= cold.hits + queries.len() as u64);
    }

    #[test]
    fn parallel_batch_labeling_matches_the_sequential_path() {
        let eco = Ecosystem::new();
        let mut workload = eco.workload(WorkloadConfig::stress(3, 23));
        let queries = workload.batch(200);
        assert_eq!(
            eco.label_batch_parallel(&queries),
            eco.label_batch(&queries)
        );
    }

    #[test]
    fn label_batch_produces_one_label_per_query() {
        let eco = Ecosystem::new();
        let mut workload = eco.workload(WorkloadConfig::base(3));
        let queries = workload.batch(50);
        let labels = eco.label_batch(&queries);
        assert_eq!(labels.len(), queries.len());
        for label in &labels {
            assert!(!label.is_bottom());
            assert!(!label.contains_top());
        }
    }

    #[test]
    fn policy_generator_and_workload_compose() {
        use fdc_policy::PrincipalId;
        let eco = Ecosystem::new();
        let mut policies = eco.policy_generator(PolicyGeneratorConfig {
            max_partitions: 5,
            max_elements_per_partition: 20,
            template_pool: 0,
            seed: 4,
        });
        let mut store = policies.build_store(&eco.views, 100);
        let mut workload = eco.workload(WorkloadConfig::base(5));
        let labels = eco.label_batch(&workload.batch(200));
        let mut allowed = 0usize;
        let mut denied = 0usize;
        for (i, label) in labels.iter().enumerate() {
            let principal = PrincipalId((i % 100) as u32);
            if store.submit(principal, label).is_allow() {
                allowed += 1;
            } else {
                denied += 1;
            }
        }
        assert_eq!(allowed + denied, 200);
        // Random policies should neither allow nor deny everything.
        assert!(allowed > 0);
        assert!(denied > 0);
    }

    #[test]
    fn packed_batch_labels_pack_the_unpacked_ones() {
        let eco = Ecosystem::new();
        let mut workload = eco.workload(WorkloadConfig::base(9));
        let queries = workload.batch(60);
        let unpacked = eco.label_batch(&queries);
        let packed = eco.label_batch_packed(&queries);
        assert_eq!(packed.len(), unpacked.len());
        for (p, u) in packed.iter().zip(&unpacked) {
            assert_eq!(p, &u.pack());
        }
    }

    #[test]
    fn the_disclosure_service_agrees_with_the_manual_two_stage_path() {
        use fdc_policy::PrincipalId;
        use fdc_service::Operation;
        let eco = Ecosystem::new();
        let config = PolicyGeneratorConfig {
            max_partitions: 5,
            max_elements_per_partition: 20,
            template_pool: 16,
            seed: 11,
        };
        let num_principals = 50;
        let mut service = eco.disclosure_service(config, num_principals, ServiceConfig::default());
        assert_eq!(service.num_principals(), num_principals);

        let mut flat = eco
            .policy_generator(config)
            .build_store(&eco.views, num_principals);
        let mut workload = eco.workload(WorkloadConfig::base(12));
        let queries = workload.batch(300);
        let ops: Vec<Operation> = queries
            .iter()
            .enumerate()
            .map(|(i, query)| Operation::Submit {
                principal: PrincipalId((i % num_principals) as u32),
                query: query.clone(),
            })
            .collect();
        let responses = service.run_batch(&ops);
        for (i, (query, response)) in queries.iter().zip(&responses).enumerate() {
            let p = PrincipalId((i % num_principals) as u32);
            let expected = flat.submit(p, &eco.label(query));
            assert_eq!(response.decision(), Some(expected), "query {i}");
        }
        assert_eq!(service.totals(), flat.totals());
    }
}
