//! Security views for the evaluation schema.
//!
//! Section 7.2: "For each relation, we selected a set of security views that
//! could support the confidentiality policies described in Facebook's
//! developer documentation.  The most complex relation, the User relation,
//! required us to define a generating set `Fgen` with 16 distinct security
//! views; most of the other relations we considered could be modeled using
//! just three views."
//!
//! We follow the same structure: the `User` relation gets 16 projection
//! views, one per permission-like attribute cluster (plus the full view),
//! and every other relation gets three views (full projection, a metadata
//! projection, and a presence view).  Every view exposes the `uid` and
//! `is_friend` columns so that audience-restricted queries remain
//! answerable from the view that grants the underlying attributes.

use fdc_core::{SecurityViewId, SecurityViews};
use fdc_cq::query::QueryBuilder;
use fdc_cq::{ConjunctiveQuery, RelId};

use crate::schema::FacebookSchema;

/// Builds a single-atom projection view over `relation` exposing exactly the
/// named columns (as distinguished variables); all other columns are
/// existential.
pub fn projection_view(
    schema: &FacebookSchema,
    relation: RelId,
    exposed: &[&str],
) -> ConjunctiveQuery {
    let rel_schema = schema.catalog.relation(relation);
    let mut builder = QueryBuilder::new();
    let args: Vec<fdc_cq::query::Arg> = rel_schema
        .attributes
        .iter()
        .map(|attr| {
            let var = if exposed.contains(&attr.as_str()) {
                builder.dvar(attr)
            } else {
                builder.evar(attr)
            };
            fdc_cq::query::Arg::Var(var)
        })
        .collect();
    builder.atom(relation, args);
    builder.build().expect("projection views are valid queries")
}

/// The 15 attribute clusters (permissions) of the `User` relation; together
/// with the full view they form the 16 `User` security views of the paper's
/// evaluation.
///
/// Every cluster implicitly also exposes `uid` and `is_friend`.
pub const USER_PERMISSION_CLUSTERS: [(&str, &[&str]); 15] = [
    (
        "public_profile",
        &[
            "name",
            "first_name",
            "middle_name",
            "last_name",
            "gender",
            "locale",
            "username",
            "verified",
        ],
    ),
    ("user_about_me", &["bio", "quotes"]),
    ("user_birthday", &["birthday"]),
    ("user_education_history", &["education"]),
    ("user_work_history", &["work"]),
    ("user_hometown", &["hometown"]),
    ("user_location", &["location"]),
    (
        "user_relationships",
        &["relationship_status", "significant_other", "interested_in"],
    ),
    ("user_religion_politics", &["religion", "political"]),
    ("user_website", &["website", "profile_url"]),
    (
        "user_likes",
        &["favorite_athletes", "favorite_teams", "languages"],
    ),
    ("user_picture", &["pic"]),
    ("user_status", &["updated_time"]),
    ("user_contact", &["email", "third_party_id"]),
    ("user_devices", &["devices", "timezone", "is_app_user"]),
];

/// Builds the full security-view registry for the evaluation schema:
/// 16 views for `User`, 3 for each of the other seven relations (37 total).
pub fn facebook_security_views(schema: &FacebookSchema) -> SecurityViews {
    let mut registry = SecurityViews::new(&schema.catalog);

    // --- User: 15 permission clusters + the full view -------------------
    let user = schema.user();
    for (name, cluster) in USER_PERMISSION_CLUSTERS {
        let mut exposed: Vec<&str> = vec!["uid", "is_friend"];
        exposed.extend_from_slice(cluster);
        let view = projection_view(schema, user, &exposed);
        registry
            .add(name, view)
            .expect("user cluster views are valid and uniquely named");
    }
    let all_user_columns: Vec<&str> = schema
        .catalog
        .relation(user)
        .attributes
        .iter()
        .map(String::as_str)
        .collect();
    registry
        .add(
            "user_full",
            projection_view(schema, user, &all_user_columns),
        )
        .expect("full user view is valid");

    // --- Every other relation: full / metadata / presence ---------------
    for (relation, rel_schema) in schema.catalog.iter() {
        if relation == user {
            continue;
        }
        let rel_name = rel_schema.name.to_lowercase();
        let all: Vec<&str> = rel_schema.attributes.iter().map(String::as_str).collect();
        registry
            .add(
                &format!("{rel_name}_full"),
                projection_view(schema, relation, &all),
            )
            .expect("full views are valid");

        // Metadata: uid, is_friend, plus up to two leading non-content
        // columns (ids / timestamps).
        let mut meta: Vec<&str> = vec!["uid", "is_friend"];
        for attr in &rel_schema.attributes {
            if meta.len() >= 4 {
                break;
            }
            if attr.ends_with("_id") || attr.ends_with("_time") {
                meta.push(attr);
            }
        }
        registry
            .add(
                &format!("{rel_name}_meta"),
                projection_view(schema, relation, &meta),
            )
            .expect("metadata views are valid");

        // Presence: only uid and is_friend.
        registry
            .add(
                &format!("{rel_name}_presence"),
                projection_view(schema, relation, &["uid", "is_friend"]),
            )
            .expect("presence views are valid");
    }

    registry
}

/// Convenience: the ids of every view defined over a relation.
pub fn views_of(registry: &SecurityViews, relation: RelId) -> Vec<SecurityViewId> {
    registry.views_for_relation(relation).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_catalog;
    use fdc_core::{BitVectorLabeler, QueryLabeler};
    use fdc_cq::parser::parse_query;

    #[test]
    fn view_counts_match_the_paper() {
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        // 16 User views + 3 views for each of the 7 other relations.
        assert_eq!(registry.len(), 16 + 7 * 3);
        assert_eq!(registry.views_for_relation(schema.user()).len(), 16);
        for (relation, _) in schema.catalog.iter() {
            if relation != schema.user() {
                assert_eq!(
                    registry.views_for_relation(relation).len(),
                    3,
                    "relation {} should have 3 views",
                    schema.catalog.name(relation)
                );
            }
        }
        assert_eq!(registry.num_relations_covered(), 8);
    }

    #[test]
    fn every_view_is_a_projection_of_its_relation() {
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        for (_, view) in registry.iter() {
            assert!(view.query.is_single_atom());
            assert!(view.query.validate(&schema.catalog).is_ok());
            assert!(!view.query.atoms()[0].has_constants());
            assert!(!view.query.atoms()[0].has_repeated_vars());
        }
    }

    #[test]
    fn cluster_attributes_exist_in_the_user_relation() {
        let schema = facebook_catalog();
        let user = schema.catalog.relation(schema.user());
        let mut covered: Vec<&str> = vec!["uid", "is_friend"];
        for (name, cluster) in USER_PERMISSION_CLUSTERS {
            assert!(!name.is_empty());
            for attr in cluster {
                assert!(
                    user.attribute_position(attr).is_some(),
                    "cluster {name} references unknown attribute {attr}"
                );
                covered.push(attr);
            }
        }
        // The clusters plus uid/is_friend cover every User attribute, so the
        // full view is the only view that is strictly above all of them.
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), user.arity());
    }

    #[test]
    fn labeling_recovers_the_expected_permission() {
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        let labeler = BitVectorLabeler::new(registry);
        let catalog = &schema.catalog;

        // Asking for a friend's birthday needs user_birthday (or the full
        // view), not the location cluster.
        let q = parse_query(
            catalog,
            "Q(u, b) :- User(u, n, fn, mn, ln, g, lo, la, un, tp, tz, ut, v, bio, b, d, e, em, h, ii, loc, p, fa, ft, pic, pu, q, rs, r, so, w, wo, ia, fr)",
        )
        .unwrap();
        let label = labeler.label_query(&q);
        let described = label.describe(labeler.security_views());
        assert!(described.contains("user_birthday"));
        assert!(described.contains("user_full"));
        assert!(!described.contains("user_location"));
    }

    #[test]
    fn presence_views_answer_uid_only_queries() {
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        let labeler = BitVectorLabeler::new(registry);
        let catalog = &schema.catalog;
        // Which of my friends have photos?  Only needs the photo presence view.
        let q = parse_query(catalog, "Q(u) :- Photo(pid, u, aid, c, pl, ct, l, fr)").unwrap();
        let label = labeler.label_query(&q);
        let described = label.describe(labeler.security_views());
        assert!(described.contains("photo_presence"));
        assert!(described.contains("photo_full"));
    }

    #[test]
    fn projection_view_helper_exposes_exactly_the_requested_columns() {
        let schema = facebook_catalog();
        let friend = schema.friend();
        let view = projection_view(&schema, friend, &["uid", "friend_uid"]);
        assert_eq!(view.distinguished_vars().count(), 2);
        assert_eq!(view.existential_vars().count(), 1);
        let names: Vec<&str> = view
            .distinguished_vars()
            .map(|v| view.var_name(v))
            .collect();
        assert_eq!(names, vec!["uid", "friend_uid"]);
    }

    #[test]
    fn views_of_lists_per_relation_views() {
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        let like = schema.catalog.resolve("Like").unwrap();
        let ids = views_of(&registry, like);
        assert_eq!(ids.len(), 3);
        let names: Vec<&str> = ids
            .iter()
            .map(|id| registry.view(*id).name.as_str())
            .collect();
        assert_eq!(names, vec!["like_full", "like_meta", "like_presence"]);
    }
}
