//! The Facebook-like evaluation schema (Section 7.2).
//!
//! Eight relations capturing core Facebook-API functionality.  The `User`
//! relation has 34 attributes; the others have between 3 and 10.  Every
//! relation carries
//!
//! * a `uid` column identifying the owning user — the join key used by the
//!   stress-test workload, and
//! * an `is_friend` column recording whether the owner is a friend of the
//!   querying principal — the denormalization the paper introduces because
//!   its security views are join-free ("we dealt with this issue by adding
//!   an extra column to each relation that indicated whether the owner of a
//!   given tuple was friends with the principal executing the query").

use fdc_cq::{Catalog, RelId};

/// Positions of the special columns of one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationInfo {
    /// The relation id in the catalog.
    pub relation: RelId,
    /// Column index of the owner `uid`.
    pub uid_column: usize,
    /// Column index of the `is_friend` denormalization flag.
    pub is_friend_column: usize,
}

/// The evaluation catalog plus per-relation metadata.
#[derive(Debug, Clone)]
pub struct FacebookSchema {
    /// The relational catalog (8 relations).
    pub catalog: Catalog,
    /// Metadata for every relation, in catalog order.
    pub relations: Vec<RelationInfo>,
}

impl FacebookSchema {
    /// Metadata for a given relation.
    ///
    /// # Panics
    ///
    /// Panics if the relation does not belong to this schema.
    pub fn info(&self, relation: RelId) -> RelationInfo {
        self.relations[relation.index()]
    }

    /// The `User` relation.
    pub fn user(&self) -> RelId {
        self.catalog.resolve("User").expect("User relation exists")
    }

    /// The `Friend` relation (used for friend / friend-of-friend joins).
    pub fn friend(&self) -> RelId {
        self.catalog
            .resolve("Friend")
            .expect("Friend relation exists")
    }
}

/// The 34 attributes of the `User` relation, modeled on the Facebook User
/// table of the Graph API / FQL documentation (2012–2013 era).
///
/// `uid` is first and `is_friend` is last; the 32 in between are the
/// documented profile fields reviewed in the Section 7.1 case study.
pub const USER_ATTRIBUTES: [&str; 34] = [
    "uid",
    "name",
    "first_name",
    "middle_name",
    "last_name",
    "gender",
    "locale",
    "languages",
    "username",
    "third_party_id",
    "timezone",
    "updated_time",
    "verified",
    "bio",
    "birthday",
    "devices",
    "education",
    "email",
    "hometown",
    "interested_in",
    "location",
    "political",
    "favorite_athletes",
    "favorite_teams",
    "pic",
    "profile_url",
    "quotes",
    "relationship_status",
    "religion",
    "significant_other",
    "website",
    "work",
    "is_app_user",
    "is_friend",
];

/// Builds the eight-relation evaluation catalog.
pub fn facebook_catalog() -> FacebookSchema {
    let mut catalog = Catalog::new();
    let mut relations = Vec::new();

    let add =
        |catalog: &mut Catalog, relations: &mut Vec<RelationInfo>, name: &str, attrs: &[&str]| {
            let relation = catalog
                .add_relation(name, attrs)
                .expect("evaluation schema has unique relation names");
            let uid_column = attrs
                .iter()
                .position(|a| *a == "uid")
                .expect("every relation has a uid column");
            let is_friend_column = attrs
                .iter()
                .position(|a| *a == "is_friend")
                .expect("every relation has an is_friend column");
            relations.push(RelationInfo {
                relation,
                uid_column,
                is_friend_column,
            });
            relation
        };

    // 1. User: 34 attributes.
    add(&mut catalog, &mut relations, "User", &USER_ATTRIBUTES);
    // 2. Friend: the friendship edge list (uid, friend_uid, is_friend).
    add(
        &mut catalog,
        &mut relations,
        "Friend",
        &["uid", "friend_uid", "is_friend"],
    );
    // 3. Photo.
    add(
        &mut catalog,
        &mut relations,
        "Photo",
        &[
            "photo_id",
            "uid",
            "album_id",
            "caption",
            "place",
            "created_time",
            "link",
            "is_friend",
        ],
    );
    // 4. Album.
    add(
        &mut catalog,
        &mut relations,
        "Album",
        &[
            "album_id",
            "uid",
            "name",
            "description",
            "size",
            "created_time",
            "is_friend",
        ],
    );
    // 5. Status.
    add(
        &mut catalog,
        &mut relations,
        "Status",
        &[
            "status_id",
            "uid",
            "message",
            "created_time",
            "place",
            "is_friend",
        ],
    );
    // 6. Checkin.
    add(
        &mut catalog,
        &mut relations,
        "Checkin",
        &[
            "checkin_id",
            "uid",
            "place",
            "message",
            "created_time",
            "coords",
            "is_friend",
        ],
    );
    // 7. Event.
    add(
        &mut catalog,
        &mut relations,
        "Event",
        &[
            "event_id",
            "uid",
            "name",
            "start_time",
            "end_time",
            "location",
            "rsvp_status",
            "description",
            "privacy",
            "is_friend",
        ],
    );
    // 8. Like.
    add(
        &mut catalog,
        &mut relations,
        "Like",
        &[
            "uid",
            "page_id",
            "category",
            "name",
            "created_time",
            "is_friend",
        ],
    );

    FacebookSchema { catalog, relations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_schema_matches_the_papers_description() {
        let schema = facebook_catalog();
        // Eight relations.
        assert_eq!(schema.catalog.len(), 8);
        // User has 34 attributes; the others between 3 and 10.
        assert_eq!(schema.catalog.arity(schema.user()), 34);
        for (id, rel) in schema.catalog.iter() {
            if id != schema.user() {
                assert!(
                    (3..=10).contains(&rel.arity()),
                    "{} has arity {}",
                    rel.name,
                    rel.arity()
                );
            }
        }
    }

    #[test]
    fn every_relation_has_uid_and_is_friend_columns() {
        let schema = facebook_catalog();
        for (id, rel) in schema.catalog.iter() {
            let info = schema.info(id);
            assert_eq!(info.relation, id);
            assert_eq!(rel.attributes[info.uid_column], "uid");
            assert_eq!(rel.attributes[info.is_friend_column], "is_friend");
        }
    }

    #[test]
    fn user_attribute_list_is_consistent() {
        assert_eq!(USER_ATTRIBUTES.len(), 34);
        // No duplicates.
        let mut sorted = USER_ATTRIBUTES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 34);
        // The case-study attributes of Table 2 are all present.
        for attr in [
            "pic",
            "timezone",
            "devices",
            "relationship_status",
            "quotes",
            "profile_url",
        ] {
            assert!(USER_ATTRIBUTES.contains(&attr), "missing {attr}");
        }
    }

    #[test]
    fn named_accessors_resolve() {
        let schema = facebook_catalog();
        assert_eq!(schema.catalog.name(schema.user()), "User");
        assert_eq!(schema.catalog.name(schema.friend()), "Friend");
        assert_eq!(schema.catalog.arity(schema.friend()), 3);
    }
}
