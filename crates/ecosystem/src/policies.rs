//! Random policy generation for the policy-checker experiment (Figure 6).
//!
//! Section 7.2: "we wrote a simple policy checker that maintained
//! information about the security policies of between 1,000 and 1,000,000
//! distinct principals.  Each principal's security policy was randomly
//! generated.  The maximum number of partitions per policy was set to either
//! 1 (a stateless security policy) or 5 (a fairly complex Chinese Wall
//! policy).  However, the actual number of partitions per policy could vary
//! between principals ...  Similarly, we allowed the maximum number of
//! elements (i.e., single-atom views) per partition to vary between 5 and
//! 50."

use fdc_core::{SecurityViewId, SecurityViews};
use fdc_policy::{PolicyPartition, PolicyStore, SecurityPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random policy generator.
#[derive(Debug, Clone, Copy)]
pub struct PolicyGeneratorConfig {
    /// Maximum number of partitions per policy (1 = stateless, 5 = the
    /// paper's "fairly complex Chinese Wall policy").
    pub max_partitions: usize,
    /// Maximum number of permitted views per partition (the paper sweeps
    /// this between 5 and 50).
    pub max_elements_per_partition: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PolicyGeneratorConfig {
    fn default() -> Self {
        PolicyGeneratorConfig {
            max_partitions: 1,
            max_elements_per_partition: 10,
            seed: 0xFDC_2013,
        }
    }
}

/// Generates random per-principal policies over a security-view registry.
#[derive(Debug, Clone)]
pub struct PolicyGenerator {
    config: PolicyGeneratorConfig,
    rng: SmallRng,
    all_views: Vec<SecurityViewId>,
}

impl PolicyGenerator {
    /// Creates a generator drawing views from `registry`.
    pub fn new(registry: &SecurityViews, config: PolicyGeneratorConfig) -> Self {
        PolicyGenerator {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            all_views: registry.iter().map(|(id, _)| id).collect(),
        }
    }

    /// Generates one random policy.
    ///
    /// The number of partitions is between 1 and the configured maximum, and
    /// each partition permits between 1 and `max_elements_per_partition`
    /// randomly chosen views (sampling with replacement, so the number of
    /// *distinct* permitted views may be smaller).
    pub fn next_policy(&mut self, registry: &SecurityViews) -> SecurityPolicy {
        let partitions = if self.config.max_partitions <= 1 {
            1
        } else {
            self.rng.gen_range(1..=self.config.max_partitions)
        };
        let mut policy = SecurityPolicy::new();
        for p in 0..partitions {
            let elements = self
                .rng
                .gen_range(1..=self.config.max_elements_per_partition.max(1));
            let mut partition = PolicyPartition::new(format!("partition-{p}"));
            for _ in 0..elements {
                let view = self.all_views[self.rng.gen_range(0..self.all_views.len())];
                partition.permit(registry, view);
            }
            policy.push(partition);
        }
        policy
    }

    /// Builds a [`PolicyStore`] with `num_principals` randomly generated
    /// policies — the state the Figure 6 experiment iterates over.
    pub fn build_store(&mut self, registry: &SecurityViews, num_principals: usize) -> PolicyStore {
        let mut store = PolicyStore::new();
        for _ in 0..num_principals {
            let policy = self.next_policy(registry);
            store.register(policy);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_catalog;
    use crate::views::facebook_security_views;

    fn registry() -> SecurityViews {
        facebook_security_views(&facebook_catalog())
    }

    #[test]
    fn stateless_config_generates_single_partition_policies() {
        let registry = registry();
        let mut generator = PolicyGenerator::new(
            &registry,
            PolicyGeneratorConfig {
                max_partitions: 1,
                max_elements_per_partition: 10,
                seed: 1,
            },
        );
        for _ in 0..50 {
            let policy = generator.next_policy(&registry);
            assert_eq!(policy.len(), 1);
            assert!(policy.is_stateless());
            assert!(policy.partitions()[0].num_permitted() >= 1);
            assert!(policy.partitions()[0].num_permitted() <= 10);
        }
    }

    #[test]
    fn chinese_wall_config_generates_varied_partition_counts() {
        let registry = registry();
        let mut generator = PolicyGenerator::new(
            &registry,
            PolicyGeneratorConfig {
                max_partitions: 5,
                max_elements_per_partition: 20,
                seed: 2,
            },
        );
        let mut counts = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let policy = generator.next_policy(&registry);
            assert!((1..=5).contains(&policy.len()));
            counts.insert(policy.len());
        }
        // The actual number of partitions varies between principals.
        assert!(counts.len() >= 3);
    }

    #[test]
    fn store_building_registers_the_requested_number_of_principals() {
        let registry = registry();
        let mut generator = PolicyGenerator::new(&registry, PolicyGeneratorConfig::default());
        let store = generator.build_store(&registry, 1000);
        assert_eq!(store.len(), 1000);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let registry = registry();
        let config = PolicyGeneratorConfig {
            max_partitions: 5,
            max_elements_per_partition: 15,
            seed: 99,
        };
        let mut a = PolicyGenerator::new(&registry, config);
        let mut b = PolicyGenerator::new(&registry, config);
        for _ in 0..20 {
            assert_eq!(a.next_policy(&registry), b.next_policy(&registry));
        }
    }
}
