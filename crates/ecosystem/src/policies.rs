//! Random policy generation for the policy-checker experiment (Figure 6).
//!
//! Section 7.2: "we wrote a simple policy checker that maintained
//! information about the security policies of between 1,000 and 1,000,000
//! distinct principals.  Each principal's security policy was randomly
//! generated.  The maximum number of partitions per policy was set to either
//! 1 (a stateless security policy) or 5 (a fairly complex Chinese Wall
//! policy).  However, the actual number of partitions per policy could vary
//! between principals ...  Similarly, we allowed the maximum number of
//! elements (i.e., single-atom views) per partition to vary between 5 and
//! 50."

use fdc_core::{SecurityViewId, SecurityViews};
use fdc_policy::{PolicyPartition, PolicyStore, SecurityPolicy, ShardedPolicyStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random policy generator.
#[derive(Debug, Clone, Copy)]
pub struct PolicyGeneratorConfig {
    /// Maximum number of partitions per policy (1 = stateless, 5 = the
    /// paper's "fairly complex Chinese Wall policy").
    pub max_partitions: usize,
    /// Maximum number of permitted views per partition (the paper sweeps
    /// this between 5 and 50).
    pub max_elements_per_partition: usize,
    /// Size of the template pool principals draw their policies from.
    ///
    /// `0` (the default, the paper's exact setup) gives every principal a
    /// freshly drawn random policy.  A positive value generates that many
    /// random *templates* and assigns each further principal a uniformly
    /// sampled template — the realistic regime for app ecosystems, where
    /// policies come from a bounded set of permission presets, and the one
    /// the interned [`PolicyStore`] deduplicates to a handful of arena
    /// entries.
    pub template_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PolicyGeneratorConfig {
    fn default() -> Self {
        PolicyGeneratorConfig {
            max_partitions: 1,
            max_elements_per_partition: 10,
            template_pool: 0,
            seed: 0xFDC_2013,
        }
    }
}

/// Generates random per-principal policies over a security-view registry.
#[derive(Debug, Clone)]
pub struct PolicyGenerator {
    config: PolicyGeneratorConfig,
    rng: SmallRng,
    all_views: Vec<SecurityViewId>,
    templates: Vec<SecurityPolicy>,
}

impl PolicyGenerator {
    /// Creates a generator drawing views from `registry`.
    pub fn new(registry: &SecurityViews, config: PolicyGeneratorConfig) -> Self {
        PolicyGenerator {
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            all_views: registry.iter().map(|(id, _)| id).collect(),
            templates: Vec::new(),
        }
    }

    /// Generates one random policy.
    ///
    /// The number of partitions is between 1 and the configured maximum, and
    /// each partition permits between 1 and `max_elements_per_partition`
    /// randomly chosen views (sampling with replacement, so the number of
    /// *distinct* permitted views may be smaller).  With a positive
    /// [`template_pool`](PolicyGeneratorConfig::template_pool), the first
    /// `template_pool` calls draw fresh policies that seed the pool and
    /// later calls return a uniformly sampled pooled template.
    pub fn next_policy(&mut self, registry: &SecurityViews) -> SecurityPolicy {
        let pool = self.config.template_pool;
        if pool > 0 && self.templates.len() >= pool {
            let i = self.rng.gen_range(0..self.templates.len());
            return self.templates[i].clone();
        }
        let policy = self.fresh_policy(registry);
        if pool > 0 {
            self.templates.push(policy.clone());
        }
        policy
    }

    /// Draws one fresh random policy, ignoring the template pool.
    fn fresh_policy(&mut self, registry: &SecurityViews) -> SecurityPolicy {
        let partitions = if self.config.max_partitions <= 1 {
            1
        } else {
            self.rng.gen_range(1..=self.config.max_partitions)
        };
        let mut policy = SecurityPolicy::new();
        for p in 0..partitions {
            let elements = self
                .rng
                .gen_range(1..=self.config.max_elements_per_partition.max(1));
            let mut partition = PolicyPartition::new(format!("partition-{p}"));
            for _ in 0..elements {
                let view = self.all_views[self.rng.gen_range(0..self.all_views.len())];
                partition.permit(registry, view);
            }
            policy.push(partition);
        }
        policy
    }

    /// Builds a [`PolicyStore`] with `num_principals` randomly generated
    /// policies — the state the Figure 6 experiment iterates over.  The
    /// store interns the policies, so with a template pool the arena holds
    /// at most `template_pool` compiled entries however many principals are
    /// registered.
    pub fn build_store(&mut self, registry: &SecurityViews, num_principals: usize) -> PolicyStore {
        let mut store = PolicyStore::new();
        for _ in 0..num_principals {
            let policy = self.next_policy(registry);
            store.register(policy);
        }
        store
    }

    /// Builds a [`ShardedPolicyStore`] with `num_principals` randomly
    /// generated policies over `num_shards` shards — the multi-core
    /// counterpart of [`build_store`](Self::build_store).  Called with the
    /// same seed and principal count, the two assign identical policies to
    /// identical principal ids.
    pub fn build_sharded_store(
        &mut self,
        registry: &SecurityViews,
        num_principals: usize,
        num_shards: usize,
    ) -> ShardedPolicyStore {
        let mut store = ShardedPolicyStore::new(num_shards);
        for _ in 0..num_principals {
            let policy = self.next_policy(registry);
            store.register(policy);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_catalog;
    use crate::views::facebook_security_views;

    fn registry() -> SecurityViews {
        facebook_security_views(&facebook_catalog())
    }

    #[test]
    fn stateless_config_generates_single_partition_policies() {
        let registry = registry();
        let mut generator = PolicyGenerator::new(
            &registry,
            PolicyGeneratorConfig {
                max_partitions: 1,
                max_elements_per_partition: 10,
                template_pool: 0,
                seed: 1,
            },
        );
        for _ in 0..50 {
            let policy = generator.next_policy(&registry);
            assert_eq!(policy.len(), 1);
            assert!(policy.is_stateless());
            assert!(policy.partitions()[0].num_permitted() >= 1);
            assert!(policy.partitions()[0].num_permitted() <= 10);
        }
    }

    #[test]
    fn chinese_wall_config_generates_varied_partition_counts() {
        let registry = registry();
        let mut generator = PolicyGenerator::new(
            &registry,
            PolicyGeneratorConfig {
                max_partitions: 5,
                max_elements_per_partition: 20,
                template_pool: 0,
                seed: 2,
            },
        );
        let mut counts = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let policy = generator.next_policy(&registry);
            assert!((1..=5).contains(&policy.len()));
            counts.insert(policy.len());
        }
        // The actual number of partitions varies between principals.
        assert!(counts.len() >= 3);
    }

    #[test]
    fn store_building_registers_the_requested_number_of_principals() {
        let registry = registry();
        let mut generator = PolicyGenerator::new(&registry, PolicyGeneratorConfig::default());
        let store = generator.build_store(&registry, 1000);
        assert_eq!(store.len(), 1000);
    }

    #[test]
    fn template_pools_bound_the_distinct_policy_count() {
        let registry = registry();
        let config = PolicyGeneratorConfig {
            max_partitions: 5,
            max_elements_per_partition: 25,
            template_pool: 16,
            seed: 7,
        };
        let mut generator = PolicyGenerator::new(&registry, config);
        let store = generator.build_store(&registry, 2_000);
        assert_eq!(store.len(), 2_000);
        // The interned arena collapses the pooled draws: at most 16 distinct
        // compiled policies (fewer if two templates collide structurally).
        assert!(
            store.unique_policies() <= 16,
            "expected ≤16 templates, got {}",
            store.unique_policies()
        );
        assert!(store.arena().hits() >= 2_000 - 16);
        // Pooling is deterministic per seed.
        let mut again = PolicyGenerator::new(&registry, config);
        let mut reference = PolicyGenerator::new(&registry, config);
        for _ in 0..50 {
            assert_eq!(
                reference.next_policy(&registry),
                again.next_policy(&registry)
            );
        }
    }

    #[test]
    fn sharded_builder_assigns_the_same_policies_as_the_flat_one() {
        let registry = registry();
        let config = PolicyGeneratorConfig {
            max_partitions: 5,
            max_elements_per_partition: 10,
            template_pool: 8,
            seed: 21,
        };
        let flat = PolicyGenerator::new(&registry, config).build_store(&registry, 100);
        let sharded =
            PolicyGenerator::new(&registry, config).build_sharded_store(&registry, 100, 4);
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.num_shards(), 4);
        for i in 0..100 {
            let p = fdc_policy::PrincipalId(i);
            assert_eq!(sharded.policy(p), flat.policy(p), "principal {i}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let registry = registry();
        let config = PolicyGeneratorConfig {
            max_partitions: 5,
            max_elements_per_partition: 15,
            template_pool: 0,
            seed: 99,
        };
        let mut a = PolicyGenerator::new(&registry, config);
        let mut b = PolicyGenerator::new(&registry, config);
        for _ in 0..20 {
            assert_eq!(a.next_policy(&registry), b.next_policy(&registry));
        }
    }
}
