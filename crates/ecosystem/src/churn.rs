//! The churn workload: a mixed operation stream for the dynamic service.
//!
//! The Figure 5/6 workloads freeze the world — fixed views, fixed policies —
//! but a live app ecosystem mutates while queries keep arriving: users grant
//! and revoke permissions, administrators evolve `Fgen`.  The
//! [`ChurnGenerator`] reproduces that regime as a randomized stream of
//! [`fdc_service::Operation`]s with a **configurable mutation:query ratio**:
//! most operations are admissions drawn from the Section 7.2 query
//! generator, and a configurable fraction are mutations — `GrantView` /
//! `RevokeView` on random principals and, for a sub-share, `AddSecurityView`
//! registering a fresh random projection view (capacity permitting: each
//! relation's view budget is the 32-bit packed mask).
//!
//! The Figure 7 benchmark (`fig7_json`) drives two identically seeded
//! streams through an incremental service and a flush-on-mutation service
//! to measure the payoff of epoch-based invalidation.

use fdc_core::security_views::MAX_PACKED_VIEWS_PER_RELATION;
use fdc_core::SecurityViews;
use fdc_cq::RelId;
use fdc_service::Operation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::schema::FacebookSchema;
use crate::views::projection_view;
use crate::workload::{WorkloadConfig, WorkloadGenerator};

/// Configuration of the churn stream.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Fraction of operations that are mutations (0.0 reproduces the static
    /// Figure 5/6 regime; the Figure 7 sweep uses 0, 0.001, 0.01 and 0.1).
    pub mutation_ratio: f64,
    /// Fraction of *mutations* that add a new security view (the rest split
    /// evenly between grants and revokes).  View additions degrade to
    /// grants once every relation's 32-view packed budget is full.
    pub add_view_share: f64,
    /// Fraction of *admissions* that are pure checks instead of submits.
    pub check_share: f64,
    /// Size of the query template pool admissions draw from.
    ///
    /// `0` gives every admission a freshly generated random query (the
    /// paper's exact Section 7.2 setup — maximal shape diversity).  A
    /// positive value caps the stream at that many distinct query shapes:
    /// the first `query_pool` admissions generate fresh queries that seed
    /// the pool, later admissions resample it — the realistic serving
    /// regime, where apps issue the same parameterized query shapes over
    /// and over and the canonical-form cache reaches a hit-dominated steady
    /// state (mirroring `PolicyGeneratorConfig::template_pool`).
    pub query_pool: usize,
    /// Number of registered principals mutations and admissions target.
    pub num_principals: usize,
    /// RNG seed (also splits off the query-generator seed).
    pub seed: u64,
    /// Configuration of the underlying Section 7.2 query generator.
    pub workload: WorkloadConfig,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            mutation_ratio: 0.01,
            add_view_share: 0.1,
            check_share: 0.0,
            query_pool: 0,
            num_principals: 1_000,
            seed: 0xF17,
            workload: WorkloadConfig::default(),
        }
    }
}

/// Generates the mixed operation stream of the Figure 7 experiment.
///
/// The generator tracks the view universe it has grown so far (names and
/// per-relation counts), so grants and revokes always target views that
/// exist by the time the operation is applied — provided the stream is
/// applied in order to a service seeded with the same registry.
#[derive(Debug, Clone)]
pub struct ChurnGenerator {
    schema: FacebookSchema,
    queries: WorkloadGenerator,
    rng: SmallRng,
    config: ChurnConfig,
    /// Names of every view grantable so far (registry views + churn adds).
    view_names: Vec<String>,
    /// Per-relation view counts, indexed by relation id, tracking the
    /// 32-view packed budget.
    view_counts: Vec<usize>,
    /// Number of views added by this generator (for unique naming).
    added: usize,
    /// The query template pool (see [`ChurnConfig::query_pool`]).
    pool: Vec<fdc_cq::ConjunctiveQuery>,
}

impl ChurnGenerator {
    /// Creates a generator over a schema and the registry the target
    /// service starts from.
    pub fn new(schema: FacebookSchema, registry: &SecurityViews, config: ChurnConfig) -> Self {
        let queries = WorkloadGenerator::new(schema.clone(), config.workload);
        let view_names = registry.iter().map(|(_, v)| v.name.clone()).collect();
        let view_counts = (0..schema.catalog.len())
            .map(|r| registry.views_for_relation(RelId(r as u32)).len())
            .collect();
        ChurnGenerator {
            schema,
            queries,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5EED_C4A9),
            config,
            view_names,
            view_counts,
            added: 0,
            pool: Vec::new(),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> ChurnConfig {
        self.config
    }

    /// Number of `AddSecurityView` operations generated so far.
    pub fn views_added(&self) -> usize {
        self.added
    }

    /// Draws true with probability `p`.
    fn draw(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // Parts-per-million resolution is plenty for the swept ratios.
        self.rng.gen_range(0u64..1_000_000) < (p * 1_000_000.0) as u64
    }

    fn random_principal(&mut self) -> fdc_policy::PrincipalId {
        fdc_policy::PrincipalId(self.rng.gen_range(0..self.config.num_principals.max(1)) as u32)
    }

    /// The next admission query: fresh from the Section 7.2 generator, or
    /// resampled from the template pool once it is seeded.
    fn next_admission_query(&mut self) -> fdc_cq::ConjunctiveQuery {
        if self.config.query_pool == 0 {
            return self.queries.next_query();
        }
        if self.pool.len() < self.config.query_pool {
            let query = self.queries.next_query();
            self.pool.push(query.clone());
            return query;
        }
        self.pool[self.rng.gen_range(0..self.pool.len())].clone()
    }

    /// Generates one pure admission operation (no mutation draw) — used to
    /// produce warmup prefixes that seed the query pool and the label cache
    /// before a measured churn stream begins.
    pub fn next_admission(&mut self) -> Operation {
        let principal = self.random_principal();
        let query = self.next_admission_query();
        if self.draw(self.config.check_share) {
            Operation::Check { principal, query }
        } else {
            Operation::Submit { principal, query }
        }
    }

    /// Generates the next operation of the stream.
    pub fn next_op(&mut self) -> Operation {
        if self.draw(self.config.mutation_ratio) {
            return self.next_mutation();
        }
        self.next_admission()
    }

    /// Generates a batch of operations.
    pub fn ops(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Generates a batch of pure admissions (see
    /// [`next_admission`](Self::next_admission)).
    pub fn admissions(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_admission()).collect()
    }

    fn next_mutation(&mut self) -> Operation {
        if self.draw(self.config.add_view_share) {
            if let Some(op) = self.next_add_view() {
                return op;
            }
            // Every relation's view budget is full: degrade to a grant so
            // the configured mutation ratio is preserved.
        }
        let principal = self.random_principal();
        let view = self.view_names[self.rng.gen_range(0..self.view_names.len())].clone();
        if self.rng.gen_range(0u32..2) == 0 {
            Operation::GrantView { principal, view }
        } else {
            Operation::RevokeView { principal, view }
        }
    }

    /// Builds an `AddSecurityView` for a random relation with remaining
    /// budget, or `None` if every relation is full.
    fn next_add_view(&mut self) -> Option<Operation> {
        let num_relations = self.view_counts.len();
        let start = self.rng.gen_range(0..num_relations);
        let relation = (0..num_relations)
            .map(|offset| (start + offset) % num_relations)
            .find(|&r| self.view_counts[r] < MAX_PACKED_VIEWS_PER_RELATION)?;
        let rel_id = RelId(relation as u32);
        let rel_schema = self.schema.catalog.relation(rel_id);
        let info = self.schema.info(rel_id);
        // A random projection view: the uid and is_friend anchors (so
        // audience-restricted queries stay answerable, mirroring the
        // registry's construction) plus a random subset of the attributes.
        let mut exposed: Vec<&str> = Vec::new();
        for (col, attr) in rel_schema.attributes.iter().enumerate() {
            let anchor = col == info.uid_column || col == info.is_friend_column;
            if anchor || self.rng.gen_range(0u32..3) == 0 {
                exposed.push(attr.as_str());
            }
        }
        let query = projection_view(&self.schema, rel_id, &exposed);
        let name = format!("churn_view_{}", self.added);
        self.added += 1;
        self.view_counts[relation] += 1;
        self.view_names.push(name.clone());
        Some(Operation::AddSecurityView { name, query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_catalog;
    use crate::views::facebook_security_views;

    fn generator(config: ChurnConfig) -> ChurnGenerator {
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        ChurnGenerator::new(schema, &registry, config)
    }

    #[test]
    fn a_zero_ratio_stream_is_pure_admissions() {
        let mut churn = generator(ChurnConfig {
            mutation_ratio: 0.0,
            ..ChurnConfig::default()
        });
        for op in churn.ops(500) {
            assert!(op.is_admission());
        }
        assert_eq!(churn.views_added(), 0);
    }

    #[test]
    fn the_mutation_ratio_is_approximately_respected() {
        let mut churn = generator(ChurnConfig {
            mutation_ratio: 0.1,
            num_principals: 50,
            ..ChurnConfig::default()
        });
        let ops = churn.ops(5_000);
        let mutations = ops.iter().filter(|op| op.is_mutation()).count();
        // 10% ±3% over 5000 draws.
        assert!(
            (350..=650).contains(&mutations),
            "expected ~500 mutations, got {mutations}"
        );
        // Grants, revokes and view additions all occur.
        assert!(ops
            .iter()
            .any(|op| matches!(op, Operation::GrantView { .. })));
        assert!(ops
            .iter()
            .any(|op| matches!(op, Operation::RevokeView { .. })));
        assert!(churn.views_added() > 0);
    }

    #[test]
    fn the_query_pool_bounds_shape_diversity() {
        use fdc_cq::canonical::query_key;
        let mut pooled = generator(ChurnConfig {
            mutation_ratio: 0.0,
            query_pool: 16,
            ..ChurnConfig::default()
        });
        let mut shapes = std::collections::HashSet::new();
        for op in pooled.ops(400) {
            let Operation::Submit { query, .. } = op else {
                panic!("pure admission stream");
            };
            shapes.insert(query_key(&query));
        }
        assert!(
            shapes.len() <= 16,
            "expected <= 16 distinct shapes, got {}",
            shapes.len()
        );
        // admissions() fills the same pool ops() samples from.
        let mut warmed = generator(ChurnConfig {
            mutation_ratio: 1.0, // every measured op would be a mutation...
            query_pool: 8,
            ..ChurnConfig::default()
        });
        let warmup = warmed.admissions(50);
        assert_eq!(warmup.len(), 50);
        assert!(warmup.iter().all(|op| op.is_admission()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = ChurnConfig {
            mutation_ratio: 0.05,
            ..ChurnConfig::default()
        };
        let a = generator(config).ops(300);
        let b = generator(config).ops(300);
        for (x, y) in a.iter().zip(&b) {
            // Operation does not implement PartialEq (queries are heavy);
            // compare the debug forms.
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn generated_streams_apply_cleanly_to_a_service() {
        use fdc_ecosystem_service_smoke::build_service;
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        let mut churn = ChurnGenerator::new(
            schema,
            &registry,
            ChurnConfig {
                mutation_ratio: 0.2,
                add_view_share: 0.3,
                check_share: 0.1,
                num_principals: 20,
                ..ChurnConfig::default()
            },
        );
        let mut service = build_service(&registry, 20);
        let ops = churn.ops(1_000);
        let responses = service.run_batch(&ops);
        assert_eq!(responses.len(), ops.len());
        // Every operation of a well-formed stream is accepted: grants and
        // revokes only name views that exist by their stream position, and
        // view additions respect the per-relation budget.
        for (op, response) in ops.iter().zip(&responses) {
            assert!(!response.is_rejected(), "{op:?} -> {response:?}");
        }
        assert!(service.labeler().stats().invalidations >= churn.views_added() as u64);
    }

    /// Tiny helper namespace so the test above reads naturally.
    mod fdc_ecosystem_service_smoke {
        use fdc_core::SecurityViews;
        use fdc_policy::{PolicyPartition, SecurityPolicy};
        use fdc_service::DisclosureService;

        pub fn build_service(registry: &SecurityViews, principals: usize) -> DisclosureService {
            let mut service = DisclosureService::with_defaults(registry.clone());
            let all: Vec<_> = registry.iter().map(|(id, _)| id).collect();
            for i in 0..principals {
                // A mix of permissive and narrow single-partition policies.
                let views = all.iter().copied().filter(|id| id.index() % (i + 1) == 0);
                service.register_principal(SecurityPolicy::stateless(PolicyPartition::from_views(
                    format!("p{i}"),
                    registry,
                    views,
                )));
            }
            service
        }
    }
}
