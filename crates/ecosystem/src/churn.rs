//! The churn workload: a mixed operation stream for the dynamic service.
//!
//! The Figure 5/6 workloads freeze the world — fixed views, fixed policies —
//! but a live app ecosystem mutates while queries keep arriving: users grant
//! and revoke permissions, administrators evolve `Fgen`.  The
//! [`ChurnGenerator`] reproduces that regime as a randomized stream of
//! [`fdc_service::Operation`]s with a **configurable mutation:query ratio**:
//! most operations are admissions drawn from the Section 7.2 query
//! generator, and a configurable fraction are mutations — `GrantView` /
//! `RevokeView` on random principals and, for a sub-share, `AddSecurityView`
//! registering a fresh random projection view (capacity permitting: each
//! relation's view budget is the 32-bit packed mask).
//!
//! The Figure 7 benchmark (`fig7_json`) drives two identically seeded
//! streams through an incremental service and a flush-on-mutation service
//! to measure the payoff of epoch-based invalidation.

use fdc_core::security_views::MAX_PACKED_VIEWS_PER_RELATION;
use fdc_core::{SecurityViews, SharedQueryInterner};
use fdc_cq::intern::QueryId;
use fdc_cq::RelId;
use fdc_service::Operation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::schema::FacebookSchema;
use crate::views::projection_view;
use crate::workload::{WorkloadConfig, WorkloadGenerator};

/// Configuration of the churn stream.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Fraction of operations that are mutations (0.0 reproduces the static
    /// Figure 5/6 regime; the Figure 7 sweep uses 0, 0.001, 0.01 and 0.1).
    pub mutation_ratio: f64,
    /// Fraction of *mutations* that add a new security view (the rest split
    /// evenly between grants and revokes).  View additions degrade to
    /// grants once every relation's 32-view packed budget is full.
    pub add_view_share: f64,
    /// Fraction of *admissions* that are pure checks instead of submits.
    pub check_share: f64,
    /// Size of the query template pool admissions draw from.
    ///
    /// `0` gives every admission a freshly generated random query (the
    /// paper's exact Section 7.2 setup — maximal shape diversity).  A
    /// positive value caps the stream at that many distinct query shapes:
    /// the first `query_pool` admissions generate fresh queries that seed
    /// the pool, later admissions resample it — the realistic serving
    /// regime, where apps issue the same parameterized query shapes over
    /// and over and the canonical-form cache reaches a hit-dominated steady
    /// state (mirroring `PolicyGeneratorConfig::template_pool`).
    pub query_pool: usize,
    /// Number of registered principals mutations and admissions target.
    pub num_principals: usize,
    /// RNG seed (also splits off the query-generator seed).
    pub seed: u64,
    /// Configuration of the underlying Section 7.2 query generator.
    pub workload: WorkloadConfig,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            mutation_ratio: 0.01,
            add_view_share: 0.1,
            check_share: 0.0,
            query_pool: 0,
            num_principals: 1_000,
            seed: 0xF17,
            workload: WorkloadConfig::default(),
        }
    }
}

/// One admission draw from the template pool or the fresh generator: the
/// bare interned id when an interner is attached, the boxed query otherwise.
enum AdmissionDraw {
    Boxed(fdc_cq::ConjunctiveQuery),
    Interned(QueryId),
}

/// Generates the mixed operation stream of the Figure 7 experiment.
///
/// The generator tracks the view universe it has grown so far (names and
/// per-relation counts), so grants and revokes always target views that
/// exist by the time the operation is applied — provided the stream is
/// applied in order to a service seeded with the same registry.
#[derive(Debug, Clone)]
pub struct ChurnGenerator {
    schema: FacebookSchema,
    queries: WorkloadGenerator,
    rng: SmallRng,
    config: ChurnConfig,
    /// Names of every view grantable so far (registry views + churn adds).
    view_names: Vec<String>,
    /// Per-relation view counts, indexed by relation id, tracking the
    /// 32-view packed budget.
    view_counts: Vec<usize>,
    /// Number of views added by this generator (for unique naming).
    added: usize,
    /// The query template pool (see [`ChurnConfig::query_pool`]), each entry
    /// paired with its interned id once an interner is attached.
    pool: Vec<(fdc_cq::ConjunctiveQuery, Option<QueryId>)>,
    /// The target service's interner, once attached — admissions then carry
    /// 8-byte `QueryId`s (`SubmitInterned` / `CheckInterned`) instead of
    /// boxed queries.
    interner: Option<SharedQueryInterner>,
}

impl ChurnGenerator {
    /// Creates a generator over a schema and the registry the target
    /// service starts from.
    pub fn new(schema: FacebookSchema, registry: &SecurityViews, config: ChurnConfig) -> Self {
        let queries = WorkloadGenerator::new(schema.clone(), config.workload);
        let view_names = registry.iter().map(|(_, v)| v.name.clone()).collect();
        let view_counts = (0..schema.catalog.len())
            .map(|r| registry.views_for_relation(RelId(r as u32)).len())
            .collect();
        ChurnGenerator {
            schema,
            queries,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5EED_C4A9),
            config,
            view_names,
            view_counts,
            added: 0,
            pool: Vec::new(),
            interner: None,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> ChurnConfig {
        self.config
    }

    /// Attaches the target service's interner
    /// ([`DisclosureService::interner`](fdc_service::DisclosureService::interner)):
    /// the template pool is **interned once** — entries seeded so far
    /// immediately, later ones as they are generated — and every subsequent
    /// admission is emitted as `SubmitInterned` / `CheckInterned` carrying a
    /// dense [`QueryId`] instead of a boxed query.
    ///
    /// The interned stream decides identically to the boxed stream on the
    /// same service (asserted by the test suite); it just skips the
    /// per-operation canonicalization at the service boundary.
    ///
    /// Re-attaching (e.g. pointing the same generator at a second service)
    /// re-interns the whole pool through the **new** interner — ids from a
    /// previously attached interner are never carried over, since they
    /// would silently resolve to unrelated queries there.
    pub fn attach_interner(&mut self, interner: SharedQueryInterner) {
        {
            let mut guard = interner.write().unwrap_or_else(|e| e.into_inner());
            for (query, id) in &mut self.pool {
                *id = Some(guard.intern(query));
            }
        }
        self.interner = Some(interner);
    }

    /// Number of `AddSecurityView` operations generated so far.
    pub fn views_added(&self) -> usize {
        self.added
    }

    /// Draws true with probability `p`.
    fn draw(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // Parts-per-million resolution is plenty for the swept ratios.
        self.rng.gen_range(0u64..1_000_000) < (p * 1_000_000.0) as u64
    }

    fn random_principal(&mut self) -> fdc_policy::PrincipalId {
        fdc_policy::PrincipalId(self.rng.gen_range(0..self.config.num_principals.max(1)) as u32)
    }

    /// Interns a freshly generated query, if an interner is attached.
    fn intern_now(&self, query: &fdc_cq::ConjunctiveQuery) -> Option<QueryId> {
        self.interner.as_ref().map(|handle| {
            handle
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .intern(query)
        })
    }

    /// The next admission query: fresh from the Section 7.2 generator, or
    /// resampled from the template pool once it is seeded.  With an
    /// interner attached the draw is the bare 8-byte id — pooled boxed
    /// queries are never cloned onto the stream.
    fn next_admission_query(&mut self) -> AdmissionDraw {
        if self.config.query_pool == 0 {
            let query = self.queries.next_query();
            return match self.intern_now(&query) {
                Some(id) => AdmissionDraw::Interned(id),
                None => AdmissionDraw::Boxed(query),
            };
        }
        if self.pool.len() < self.config.query_pool {
            let query = self.queries.next_query();
            let id = self.intern_now(&query);
            let draw = match id {
                Some(id) => AdmissionDraw::Interned(id),
                None => AdmissionDraw::Boxed(query.clone()),
            };
            self.pool.push((query, id));
            return draw;
        }
        let (query, id) = &self.pool[self.rng.gen_range(0..self.pool.len())];
        match id {
            Some(id) => AdmissionDraw::Interned(*id),
            None => AdmissionDraw::Boxed(query.clone()),
        }
    }

    /// Generates one pure admission operation (no mutation draw) — used to
    /// produce warmup prefixes that seed the query pool and the label cache
    /// before a measured churn stream begins.
    pub fn next_admission(&mut self) -> Operation {
        let principal = self.random_principal();
        let draw = self.next_admission_query();
        let check = self.draw(self.config.check_share);
        match (draw, check) {
            (AdmissionDraw::Interned(query), true) => Operation::CheckInterned { principal, query },
            (AdmissionDraw::Interned(query), false) => {
                Operation::SubmitInterned { principal, query }
            }
            (AdmissionDraw::Boxed(query), true) => Operation::Check { principal, query },
            (AdmissionDraw::Boxed(query), false) => Operation::Submit { principal, query },
        }
    }

    /// Generates the next operation of the stream.
    pub fn next_op(&mut self) -> Operation {
        if self.draw(self.config.mutation_ratio) {
            return self.next_mutation();
        }
        self.next_admission()
    }

    /// Generates a batch of operations.
    pub fn ops(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Generates a batch of pure admissions (see
    /// [`next_admission`](Self::next_admission)).
    pub fn admissions(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_admission()).collect()
    }

    fn next_mutation(&mut self) -> Operation {
        if self.draw(self.config.add_view_share) {
            if let Some(op) = self.next_add_view() {
                return op;
            }
            // Every relation's view budget is full: degrade to a grant so
            // the configured mutation ratio is preserved.
        }
        let principal = self.random_principal();
        let view = self.view_names[self.rng.gen_range(0..self.view_names.len())].clone();
        if self.rng.gen_range(0u32..2) == 0 {
            Operation::GrantView { principal, view }
        } else {
            Operation::RevokeView { principal, view }
        }
    }

    /// Builds an `AddSecurityView` for a random relation with remaining
    /// budget, or `None` if every relation is full.
    fn next_add_view(&mut self) -> Option<Operation> {
        let num_relations = self.view_counts.len();
        let start = self.rng.gen_range(0..num_relations);
        let relation = (0..num_relations)
            .map(|offset| (start + offset) % num_relations)
            .find(|&r| self.view_counts[r] < MAX_PACKED_VIEWS_PER_RELATION)?;
        let rel_id = RelId(relation as u32);
        let rel_schema = self.schema.catalog.relation(rel_id);
        let info = self.schema.info(rel_id);
        // A random projection view: the uid and is_friend anchors (so
        // audience-restricted queries stay answerable, mirroring the
        // registry's construction) plus a random subset of the attributes.
        let mut exposed: Vec<&str> = Vec::new();
        for (col, attr) in rel_schema.attributes.iter().enumerate() {
            let anchor = col == info.uid_column || col == info.is_friend_column;
            if anchor || self.rng.gen_range(0u32..3) == 0 {
                exposed.push(attr.as_str());
            }
        }
        let query = projection_view(&self.schema, rel_id, &exposed);
        let name = format!("churn_view_{}", self.added);
        self.added += 1;
        self.view_counts[relation] += 1;
        self.view_names.push(name.clone());
        Some(Operation::AddSecurityView { name, query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_catalog;
    use crate::views::facebook_security_views;

    fn generator(config: ChurnConfig) -> ChurnGenerator {
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        ChurnGenerator::new(schema, &registry, config)
    }

    #[test]
    fn a_zero_ratio_stream_is_pure_admissions() {
        let mut churn = generator(ChurnConfig {
            mutation_ratio: 0.0,
            ..ChurnConfig::default()
        });
        for op in churn.ops(500) {
            assert!(op.is_admission());
        }
        assert_eq!(churn.views_added(), 0);
    }

    #[test]
    fn the_mutation_ratio_is_approximately_respected() {
        let mut churn = generator(ChurnConfig {
            mutation_ratio: 0.1,
            num_principals: 50,
            ..ChurnConfig::default()
        });
        let ops = churn.ops(5_000);
        let mutations = ops.iter().filter(|op| op.is_mutation()).count();
        // 10% ±3% over 5000 draws.
        assert!(
            (350..=650).contains(&mutations),
            "expected ~500 mutations, got {mutations}"
        );
        // Grants, revokes and view additions all occur.
        assert!(ops
            .iter()
            .any(|op| matches!(op, Operation::GrantView { .. })));
        assert!(ops
            .iter()
            .any(|op| matches!(op, Operation::RevokeView { .. })));
        assert!(churn.views_added() > 0);
    }

    #[test]
    fn the_query_pool_bounds_shape_diversity() {
        use fdc_cq::intern::QueryInterner;
        let mut pooled = generator(ChurnConfig {
            mutation_ratio: 0.0,
            query_pool: 16,
            ..ChurnConfig::default()
        });
        // Interning canonicalizes, so the interner's size after the stream
        // is exactly the number of distinct shapes.
        let mut shapes = QueryInterner::new();
        for op in pooled.ops(400) {
            let Operation::Submit { query, .. } = op else {
                panic!("pure admission stream");
            };
            shapes.intern(&query);
        }
        assert!(
            shapes.len() <= 16,
            "expected <= 16 distinct shapes, got {}",
            shapes.len()
        );
        // admissions() fills the same pool ops() samples from.
        let mut warmed = generator(ChurnConfig {
            mutation_ratio: 1.0, // every measured op would be a mutation...
            query_pool: 8,
            ..ChurnConfig::default()
        });
        let warmup = warmed.admissions(50);
        assert_eq!(warmup.len(), 50);
        assert!(warmup.iter().all(|op| op.is_admission()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = ChurnConfig {
            mutation_ratio: 0.05,
            ..ChurnConfig::default()
        };
        let a = generator(config).ops(300);
        let b = generator(config).ops(300);
        for (x, y) in a.iter().zip(&b) {
            // Operation does not implement PartialEq (queries are heavy);
            // compare the debug forms.
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn generated_streams_apply_cleanly_to_a_service() {
        use fdc_ecosystem_service_smoke::build_service;
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        let mut churn = ChurnGenerator::new(
            schema,
            &registry,
            ChurnConfig {
                mutation_ratio: 0.2,
                add_view_share: 0.3,
                check_share: 0.1,
                num_principals: 20,
                ..ChurnConfig::default()
            },
        );
        let mut service = build_service(&registry, 20);
        let ops = churn.ops(1_000);
        let responses = service.run_batch(&ops);
        assert_eq!(responses.len(), ops.len());
        // Every operation of a well-formed stream is accepted: grants and
        // revokes only name views that exist by their stream position, and
        // view additions respect the per-relation budget.
        for (op, response) in ops.iter().zip(&responses) {
            assert!(!response.is_rejected(), "{op:?} -> {response:?}");
        }
        assert!(service.labeler().stats().invalidations >= churn.views_added() as u64);
    }

    #[test]
    fn pipelined_execution_matches_batched_execution_on_churn_streams() {
        // The wiring behind the fig7 `pipelined` series: identical generated
        // streams through `run_batch` and `run_pipelined` must produce
        // identical responses and per-principal state, across mutation
        // ratios (including heavy churn) and for interned streams.
        use fdc_ecosystem_service_smoke::build_service;
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        for mutation_ratio in [0.0, 0.05, 0.3] {
            let config = ChurnConfig {
                mutation_ratio,
                add_view_share: 0.25,
                check_share: 0.15,
                query_pool: 24,
                num_principals: 12,
                ..ChurnConfig::default()
            };
            let mut batched_churn = ChurnGenerator::new(schema.clone(), &registry, config);
            let mut pipelined_churn = ChurnGenerator::new(schema.clone(), &registry, config);
            let mut batched = build_service(&registry, 12);
            let mut pipelined = build_service(&registry, 12);
            pipelined_churn.attach_interner(pipelined.interner());
            batched_churn.attach_interner(batched.interner());
            let ops = batched_churn.ops(700);
            let pipelined_ops = pipelined_churn.ops(700);
            assert_eq!(
                batched.run_batch(&ops),
                pipelined.run_pipelined(&pipelined_ops),
                "at mutation ratio {mutation_ratio}"
            );
            assert_eq!(batched.totals(), pipelined.totals());
            for i in 0..12 {
                let p = fdc_policy::PrincipalId(i);
                assert_eq!(
                    batched.store().consistency_bits(p),
                    pipelined.store().consistency_bits(p)
                );
                assert_eq!(batched.store().stats(p), pipelined.store().stats(p));
            }
        }
    }

    #[test]
    fn interned_streams_decide_identically_to_boxed_streams() {
        use fdc_ecosystem_service_smoke::build_service;
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        let config = ChurnConfig {
            mutation_ratio: 0.05,
            add_view_share: 0.2,
            check_share: 0.2,
            query_pool: 12,
            num_principals: 15,
            ..ChurnConfig::default()
        };
        // Boxed reference stream.
        let mut boxed_churn = ChurnGenerator::new(schema.clone(), &registry, config);
        let mut boxed_service = build_service(&registry, 15);
        let boxed_ops = boxed_churn.ops(600);
        let boxed_responses = boxed_service.run_batch(&boxed_ops);
        // Same seed, but attached to the target service's interner: the
        // pool is interned once and admissions stream as 8-byte ids.
        let mut interned_churn = ChurnGenerator::new(schema, &registry, config);
        let mut interned_service = build_service(&registry, 15);
        interned_churn.attach_interner(interned_service.interner());
        let interned_ops = interned_churn.ops(600);
        assert!(interned_ops
            .iter()
            .all(|op| !matches!(op, Operation::Submit { .. } | Operation::Check { .. })));
        assert!(interned_ops
            .iter()
            .any(|op| matches!(op, Operation::SubmitInterned { .. })));
        let interned_responses = interned_service.run_batch(&interned_ops);
        assert_eq!(boxed_responses, interned_responses);
        assert_eq!(boxed_service.totals(), interned_service.totals());
        // Attaching mid-stream interns the already-seeded pool exactly once.
        let pool_size = interned_service.interner().read().unwrap().len();
        assert!(
            pool_size >= 12,
            "the pool was interned ({pool_size} shapes)"
        );

        // Re-attaching to a *different* service re-interns the pool through
        // the new interner — stale ids from the first service must never
        // leak into the second (they would resolve to unrelated queries).
        let mut boxed_third = build_service(&registry, 15);
        let mut interned_third = build_service(&registry, 15);
        interned_churn.attach_interner(interned_third.interner());
        let boxed_more = boxed_churn.ops(150);
        let interned_more = interned_churn.ops(150);
        assert_eq!(
            boxed_third.run_batch(&boxed_more),
            interned_third.run_batch(&interned_more)
        );
        assert_eq!(boxed_third.totals(), interned_third.totals());
    }

    #[test]
    fn every_loggable_churn_op_round_trips_through_the_wal_codec() {
        // The durable service logs churn streams verbatim; every loggable
        // operation the generator can emit — submits over generated
        // queries, grants/revokes on registry and churn-added view names,
        // view additions with fresh projection definitions — must encode
        // to a WAL payload that decodes back to the identical [`WalOp`]
        // against the same catalog.
        use fdc_service::durable::{decode_wal_op, WalOp};
        let schema = facebook_catalog();
        let registry = facebook_security_views(&schema);
        let catalog = registry.catalog().clone();
        let mut churn = generator(ChurnConfig {
            mutation_ratio: 0.4,
            add_view_share: 0.4,
            num_principals: 10,
            ..ChurnConfig::default()
        });
        let mut round_tripped = 0;
        for op in churn.ops(400) {
            let wal_op = match op {
                Operation::Submit { principal, query } => WalOp::Submit { principal, query },
                Operation::GrantView { principal, view } => WalOp::GrantView { principal, view },
                Operation::RevokeView { principal, view } => WalOp::RevokeView { principal, view },
                Operation::AddSecurityView { name, query } => {
                    WalOp::AddSecurityView { name, query }
                }
                _ => continue,
            };
            let mut payload = Vec::new();
            wal_op.encode_into(&mut payload);
            let decoded = decode_wal_op(&catalog, &payload).expect("churn ops are encodable");
            assert_eq!(decoded, wal_op);
            round_tripped += 1;
        }
        assert!(round_tripped > 100, "only {round_tripped} loggable ops");
    }

    /// Tiny helper namespace so the test above reads naturally.
    mod fdc_ecosystem_service_smoke {
        use fdc_core::SecurityViews;
        use fdc_policy::{PolicyPartition, SecurityPolicy};
        use fdc_service::DisclosureService;

        pub fn build_service(registry: &SecurityViews, principals: usize) -> DisclosureService {
            let mut service = DisclosureService::with_defaults(registry.clone());
            let all: Vec<_> = registry.iter().map(|(id, _)| id).collect();
            for i in 0..principals {
                // A mix of permissive and narrow single-partition policies.
                let views = all.iter().copied().filter(|id| id.index() % (i + 1) == 0);
                service.register_principal(SecurityPolicy::stateless(PolicyPartition::from_views(
                    format!("p{i}"),
                    registry,
                    views,
                )));
            }
            service
        }
    }
}
