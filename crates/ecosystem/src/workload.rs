//! The randomized query workload of Section 7.2.
//!
//! "After examining a number of sample Facebook applications, we decided to
//! use a workload of queries that were randomly generated with the following
//! process:
//!
//! 1. Select a random relation from the schema.
//! 2. Select a random subset of its attributes.
//! 3. Randomly request these attributes for either (i) the current user,
//!    (ii) friends of the current user, (iii) friends of friends of the
//!    current user, or (iv) a non-friend."
//!
//! Option (ii) adds one join with the `Friend` relation and option (iii)
//! two, so base queries contain between one and three body atoms.  The
//! stress-test extension repeats the process up to five times and joins the
//! resulting subqueries on the `uid` attribute, which appears in every
//! relation.

use fdc_cq::intern::{QueryId, QueryInterner};
use fdc_cq::query::{Arg, QueryBuilder};
use fdc_cq::{ConjunctiveQuery, RelId};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::schema::FacebookSchema;

/// Whose data the generated query requests (step 3 of the workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Audience {
    /// The current user's own data: `uid = 'me'`.
    CurrentUser,
    /// Data of the current user's friends: one join with `Friend`.
    Friends,
    /// Data of friends of friends: two joins with `Friend`.
    FriendsOfFriends,
    /// Data of an unrelated user: `uid = 'other'`.
    NonFriend,
}

impl Audience {
    /// All audiences, in the order the generator samples them.
    pub const ALL: [Audience; 4] = [
        Audience::CurrentUser,
        Audience::Friends,
        Audience::FriendsOfFriends,
        Audience::NonFriend,
    ];

    /// Number of `Friend` joins this audience adds to a subquery.
    pub fn friend_joins(self) -> usize {
        match self {
            Audience::Friends => 1,
            Audience::FriendsOfFriends => 2,
            Audience::CurrentUser | Audience::NonFriend => 0,
        }
    }
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Maximum number of subqueries joined on `uid` (1 reproduces the base
    /// workload of 1–3 atoms; 5 is the paper's stress test of up to 15
    /// atoms).
    pub max_subqueries: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            max_subqueries: 1,
            seed: 0xFDC_2013,
        }
    }
}

impl WorkloadConfig {
    /// The base workload: one subquery, 1–3 atoms per query.
    pub fn base(seed: u64) -> Self {
        WorkloadConfig {
            max_subqueries: 1,
            seed,
        }
    }

    /// The stress workload with up to `max_subqueries` uid-joined subqueries.
    pub fn stress(max_subqueries: usize, seed: u64) -> Self {
        WorkloadConfig {
            max_subqueries: max_subqueries.max(1),
            seed,
        }
    }

    /// Maximum number of body atoms a generated query can have
    /// (each subquery contributes 1 target atom plus up to 2 Friend joins).
    pub fn max_atoms(&self) -> usize {
        self.max_subqueries * 3
    }
}

/// The random query generator of Section 7.2.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    schema: FacebookSchema,
    config: WorkloadConfig,
    rng: SmallRng,
    relation_dist: Uniform<usize>,
}

impl WorkloadGenerator {
    /// Creates a generator over the evaluation schema.
    pub fn new(schema: FacebookSchema, config: WorkloadConfig) -> Self {
        let relation_dist = Uniform::new(0, schema.catalog.len());
        WorkloadGenerator {
            schema,
            config,
            rng: SmallRng::seed_from_u64(config.seed),
            relation_dist,
        }
    }

    /// The schema the generator draws relations from.
    pub fn schema(&self) -> &FacebookSchema {
        &self.schema
    }

    /// The generator's configuration.
    pub fn config(&self) -> WorkloadConfig {
        self.config
    }

    /// Generates the next random query.
    pub fn next_query(&mut self) -> ConjunctiveQuery {
        let num_subqueries = if self.config.max_subqueries <= 1 {
            1
        } else {
            self.rng.gen_range(1..=self.config.max_subqueries)
        };

        let mut builder = QueryBuilder::new();
        for subquery in 0..num_subqueries {
            self.add_subquery(&mut builder, subquery);
        }
        builder
            .build()
            .expect("generated queries are valid by construction")
    }

    /// Generates a batch of queries.
    pub fn batch(&mut self, n: usize) -> Vec<ConjunctiveQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }

    /// Generates a batch and interns every query in one pass, returning the
    /// dense [`QueryId`]s — the setup step of an interned serving workload
    /// (the `interned` series of the Figure 5 benchmark): the template pool
    /// is interned **once**, then the hot loop streams 8-byte ids.
    ///
    /// Alpha-equivalent shapes intern to one id, so the returned vector may
    /// contain repeats — exactly what a cache-hit-dominated steady state
    /// looks like.
    pub fn interned_batch(&mut self, n: usize, interner: &mut QueryInterner) -> Vec<QueryId> {
        (0..n)
            .map(|_| interner.intern(&self.next_query()))
            .collect()
    }

    fn add_subquery(&mut self, builder: &mut QueryBuilder, index: usize) {
        // Step 1: a random relation.
        let relation = RelId(self.relation_dist.sample(&mut self.rng) as u32);
        let info = self.schema.info(relation);
        let rel_schema = self.schema.catalog.relation(relation);
        let arity = rel_schema.arity();

        // Step 3 (chosen before building the atom so we know what the owner
        // uid column must be): the audience.
        let audience = Audience::ALL[self.rng.gen_range(0..Audience::ALL.len())];

        // The owner uid term of the target atom depends on the audience.
        // Friend-based audiences bind the shared `uid` variable, which is
        // also the join key of the stress-test subqueries.
        let owner: Arg = match audience {
            Audience::CurrentUser => Arg::from("me"),
            Audience::NonFriend => Arg::from("other"),
            Audience::Friends | Audience::FriendsOfFriends => Arg::Var(builder.dvar("uid")),
        };

        // Step 2: a random subset of attributes to request (distinguished).
        // At least one attribute is always requested.
        let mut requested = vec![false; arity];
        let num_requested = self.rng.gen_range(1..=arity.min(8));
        for _ in 0..num_requested {
            let col = self.rng.gen_range(0..arity);
            requested[col] = true;
        }

        // Build the target atom.
        let args: Vec<Arg> = (0..arity)
            .map(|col| {
                if col == info.uid_column {
                    owner.clone()
                } else if requested[col] {
                    Arg::Var(builder.dvar(&format!("s{index}_{}", rel_schema.attributes[col])))
                } else {
                    Arg::Var(builder.evar(&format!("s{index}_e{col}")))
                }
            })
            .collect();
        builder.atom(relation, args);

        // The Friend joins for options (ii) and (iii).
        let friend = self.schema.friend();
        match audience {
            Audience::Friends => {
                // Friend('me', uid, _)
                let uid = builder.dvar("uid");
                let flag = builder.evar(&format!("s{index}_ff0"));
                builder.atom(friend, ["me".into(), Arg::Var(uid), Arg::Var(flag)]);
            }
            Audience::FriendsOfFriends => {
                // Friend('me', hop, _) ∧ Friend(hop, uid, _)
                let uid = builder.dvar("uid");
                let hop = builder.dvar(&format!("s{index}_hop"));
                let flag0 = builder.evar(&format!("s{index}_ff0"));
                let flag1 = builder.evar(&format!("s{index}_ff1"));
                builder.atom(friend, ["me".into(), Arg::Var(hop), Arg::Var(flag0)]);
                builder.atom(friend, [Arg::Var(hop), Arg::Var(uid), Arg::Var(flag1)]);
            }
            Audience::CurrentUser | Audience::NonFriend => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::facebook_catalog;

    fn generator(config: WorkloadConfig) -> WorkloadGenerator {
        WorkloadGenerator::new(facebook_catalog(), config)
    }

    #[test]
    fn base_workload_queries_have_one_to_three_atoms() {
        let mut generator = generator(WorkloadConfig::base(7));
        let mut seen = [false; 4];
        for _ in 0..500 {
            let q = generator.next_query();
            assert!(
                (1..=3).contains(&q.num_atoms()),
                "unexpected atom count {}",
                q.num_atoms()
            );
            assert!(q.validate(&generator.schema.catalog).is_ok());
            seen[q.num_atoms()] = true;
        }
        // One-atom (self / non-friend), two-atom (friends) and three-atom
        // (friends of friends) queries all appear.
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn stress_workload_produces_wider_queries() {
        let config = WorkloadConfig::stress(5, 11);
        assert_eq!(config.max_atoms(), 15);
        let mut generator = generator(config);
        let mut max_seen = 0;
        for _ in 0..500 {
            let q = generator.next_query();
            max_seen = max_seen.max(q.num_atoms());
            assert!(q.num_atoms() <= 15);
            assert!(q.validate(&generator.schema.catalog).is_ok());
        }
        assert!(
            max_seen > 4,
            "stress workload should produce multi-subquery joins (max seen {max_seen})"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = generator(WorkloadConfig::base(42));
        let mut b = generator(WorkloadConfig::base(42));
        for _ in 0..50 {
            assert_eq!(a.next_query(), b.next_query());
        }
        let mut c = generator(WorkloadConfig::base(43));
        let batch_a: Vec<_> = a.batch(50);
        let batch_c: Vec<_> = c.batch(50);
        assert_ne!(batch_a, batch_c);
    }

    #[test]
    fn every_audience_appears_in_a_large_sample() {
        let mut generator = generator(WorkloadConfig::base(3));
        let friend = generator.schema.friend();
        let mut joins_seen = [false; 3]; // 0, 1, 2 Friend joins
        for _ in 0..300 {
            let q = generator.next_query();
            let friend_atoms = q.atoms().iter().filter(|a| a.relation == friend).count();
            // The anchor join for constant-audience single-subquery queries
            // also targets Friend, so clamp at 2.
            joins_seen[friend_atoms.min(2)] = true;
        }
        assert!(joins_seen.iter().filter(|s| **s).count() >= 2);
    }

    #[test]
    fn audience_helpers() {
        assert_eq!(Audience::CurrentUser.friend_joins(), 0);
        assert_eq!(Audience::Friends.friend_joins(), 1);
        assert_eq!(Audience::FriendsOfFriends.friend_joins(), 2);
        assert_eq!(Audience::NonFriend.friend_joins(), 0);
        assert_eq!(Audience::ALL.len(), 4);
    }

    #[test]
    fn default_config_is_the_base_workload() {
        let config = WorkloadConfig::default();
        assert_eq!(config.max_subqueries, 1);
        assert_eq!(config.max_atoms(), 3);
        let stress = WorkloadConfig::stress(0, 1);
        assert_eq!(
            stress.max_subqueries, 1,
            "stress clamps to at least one subquery"
        );
    }

    #[test]
    fn generated_queries_are_labelable() {
        use fdc_core::{BitVectorLabeler, QueryLabeler};
        let schema = facebook_catalog();
        let registry = crate::views::facebook_security_views(&schema);
        let labeler = BitVectorLabeler::new(registry);
        let mut generator = WorkloadGenerator::new(schema, WorkloadConfig::stress(3, 5));
        for _ in 0..200 {
            let q = generator.next_query();
            let label = labeler.label_query(&q);
            assert!(!label.is_bottom());
            // Every atom of the evaluation schema is answerable by at least
            // the relation's full view, so no ⊤ labels appear.
            assert!(!label.contains_top(), "query {q:?} produced a ⊤ label");
        }
    }
}
