//! Ablation — the packed bit-vector label representation of Section 6.1.
//!
//! The paper stores `ℓ⁺` sets as bit masks packed into 64-bit words and
//! compares labels with mask operations.  This ablation quantifies that
//! design choice by comparing label-comparison throughput against a
//! straightforward set-of-view-names representation (what a naive
//! implementation of Definition 3.4 would use).

use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fdc_bench::labeling_workload;
use fdc_core::{DisclosureLabel, QueryLabeler};

/// The naive representation: one set of view names per atom.
fn to_name_sets(
    label: &DisclosureLabel,
    registry: &fdc_core::SecurityViews,
) -> Vec<BTreeSet<String>> {
    label
        .atoms()
        .iter()
        .map(|atom| {
            atom.views(registry)
                .into_iter()
                .map(|id| registry.view(id).name.clone())
                .collect()
        })
        .collect()
}

/// Label comparison under the naive representation
/// (`a ⪯ b` iff every atom set of `a` is a superset of some atom set of `b`).
fn name_sets_leq(a: &[BTreeSet<String>], b: &[BTreeSet<String>]) -> bool {
    a.iter().all(|x| b.iter().any(|y| x.is_superset(y)))
}

fn ablation(c: &mut Criterion) {
    let workload = labeling_workload(3, 1_000);
    let registry = workload.ecosystem.views.clone();
    let labels: Vec<DisclosureLabel> = workload
        .queries
        .iter()
        .map(|q| workload.ecosystem.bitvec.label_query(q))
        .collect();
    let name_sets: Vec<Vec<BTreeSet<String>>> =
        labels.iter().map(|l| to_name_sets(l, &registry)).collect();
    let pairs = labels.len();

    let mut group = c.benchmark_group("ablation_label_repr");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(pairs as u64));

    group.bench_function("packed_bitmask_leq", |b| {
        b.iter(|| {
            let mut below = 0usize;
            for i in 0..pairs {
                let j = (i * 7 + 1) % pairs;
                if labels[i].leq(&labels[j]) {
                    below += 1;
                }
            }
            black_box(below)
        })
    });

    group.bench_function("name_set_leq", |b| {
        b.iter(|| {
            let mut below = 0usize;
            for i in 0..pairs {
                let j = (i * 7 + 1) % pairs;
                if name_sets_leq(&name_sets[i], &name_sets[j]) {
                    below += 1;
                }
            }
            black_box(below)
        })
    });

    // Sanity: the two representations agree on every compared pair.
    for i in 0..pairs {
        let j = (i * 7 + 1) % pairs;
        assert_eq!(
            labels[i].leq(&labels[j]),
            name_sets_leq(&name_sets[i], &name_sets[j]),
            "representations disagree on pair ({i}, {j})"
        );
    }

    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
