//! Table 2 — the FQL vs Graph API documentation review.
//!
//! The case study itself is qualitative (six inconsistencies out of 42
//! views); this bench keeps it regenerable from `cargo bench` alongside the
//! figures and additionally measures the cost of the automatic-labeling
//! counterfactual, which is the quantitative claim behind it (labels can be
//! recomputed from view definitions cheaply enough to never go stale).

use criterion::{criterion_group, criterion_main, Criterion};
use fdc_casestudy::autolabel::autolabel_report;
use fdc_casestudy::review_documentation;
use std::hint::black_box;
use std::time::Duration;

fn table2(c: &mut Criterion) {
    // Print the regenerated table once so `cargo bench` output contains the
    // Table 2 reproduction itself.
    let report = review_documentation();
    println!("\n{}", report.to_table());
    assert_eq!(report.views_compared, 42);
    assert_eq!(report.discrepancies.len(), 6);

    let mut group = c.benchmark_group("table2_casestudy");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("documentation_review", |b| {
        b.iter(|| black_box(review_documentation()))
    });
    group.bench_function("automatic_relabeling", |b| {
        b.iter(|| black_box(autolabel_report()))
    });
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
