//! Ablation — the cost of `Dissect` (query folding + atom splitting).
//!
//! The complexity analysis in Section 6.1 points out that the folding step
//! of `Dissect` is the only super-polynomial component of the labeling
//! pipeline (query folding is NP-hard; the implementation is a brute-force
//! search).  This ablation separates the dissection cost from the per-atom
//! `ℓ⁺` computation, and shows how redundancy in the input query (duplicate
//! atoms that folding must remove) affects it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdc_bench::labeling_workload;
use fdc_core::dissect::dissect;
use fdc_core::QueryLabeler;
use fdc_cq::{Atom, ConjunctiveQuery};
use std::hint::black_box;
use std::time::Duration;

/// Duplicates every atom of the query `copies` times (a worst-ish case for
/// folding: all the duplicates are redundant and must be folded away).
fn add_redundancy(query: &ConjunctiveQuery, copies: usize) -> ConjunctiveQuery {
    let mut atoms: Vec<Atom> = Vec::new();
    for _ in 0..=copies {
        atoms.extend_from_slice(query.atoms());
    }
    ConjunctiveQuery::from_parts(
        atoms,
        query.var_kinds().to_vec(),
        (0..query.num_vars())
            .map(|i| query.var_name(fdc_cq::VarId(i as u32)).to_owned())
            .collect(),
    )
    .expect("duplicating atoms preserves validity")
}

fn ablation(c: &mut Criterion) {
    let workload = labeling_workload(6, 200);

    let mut group = c.benchmark_group("ablation_dissect");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(workload.queries.len() as u64));

    // Dissection alone, with increasing redundancy.
    for copies in [0usize, 1, 2] {
        let queries: Vec<ConjunctiveQuery> = workload
            .queries
            .iter()
            .map(|q| add_redundancy(q, copies))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("dissect_only", format!("{copies}x_redundant")),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        black_box(dissect(q));
                    }
                })
            },
        );
    }

    // Full labeling vs dissection alone on the clean workload, to show the
    // split between dissection and ℓ⁺ computation.
    group.bench_function("full_labeling_clean", |b| {
        b.iter(|| {
            for q in &workload.queries {
                black_box(workload.ecosystem.bitvec.label_query(q));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
