//! Figure 5 — disclosure labeler performance.
//!
//! The paper plots the time to analyze one million randomly generated
//! queries against the maximum number of atoms per query (3–15), for four
//! configurations: query generation only, the baseline `LabelGen`
//! adaptation, hash partitioning, and hash partitioning plus bit-vector
//! labels.  This bench measures the same four series as throughput
//! (queries/second); multiply out to recover the per-million-queries time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdc_bench::{labeling_workload, BATCH_SIZE};
use fdc_core::QueryLabeler;
use fdc_ecosystem::{Ecosystem, WorkloadConfig};
use std::hint::black_box;
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_labeler");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for max_atoms in [3usize, 6, 9, 12, 15] {
        let workload = labeling_workload(max_atoms, BATCH_SIZE);
        group.throughput(Throughput::Elements(workload.queries.len() as u64));

        // Series 1: query generation only.
        group.bench_with_input(
            BenchmarkId::new("generation_only", max_atoms),
            &max_atoms,
            |b, &max_atoms| {
                let ecosystem = Ecosystem::new();
                let max_subqueries = (max_atoms / 3).max(1);
                b.iter(|| {
                    let mut generator =
                        ecosystem.workload(WorkloadConfig::stress(max_subqueries, 0xBEEF));
                    black_box(generator.batch(BATCH_SIZE))
                });
            },
        );

        // Series 2: baseline (LabelGen, linear scan over all views).
        group.bench_with_input(
            BenchmarkId::new("baseline", max_atoms),
            &workload,
            |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        black_box(w.ecosystem.baseline.label_query(q));
                    }
                });
            },
        );

        // Series 3: hashing only.
        group.bench_with_input(
            BenchmarkId::new("hashing_only", max_atoms),
            &workload,
            |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        black_box(w.ecosystem.hashed.label_query(q));
                    }
                });
            },
        );

        // Series 4: bit vectors + hashing.
        group.bench_with_input(
            BenchmarkId::new("bitvectors_hashing", max_atoms),
            &workload,
            |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        black_box(w.ecosystem.bitvec.label_query(q));
                    }
                });
            },
        );

        // Series 5 (beyond the paper): canonical-form label cache.
        group.bench_with_input(BenchmarkId::new("cached", max_atoms), &workload, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    black_box(w.ecosystem.cached.label_query(q));
                }
            });
        });

        // Series 6 (beyond the paper): cache + parallel batch sharding.
        group.bench_with_input(
            BenchmarkId::new("cached_parallel_batch", max_atoms),
            &workload,
            |b, w| {
                b.iter(|| black_box(w.ecosystem.cached.label_queries_batch(&w.queries)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
