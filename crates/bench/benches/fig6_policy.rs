//! Figure 6 — policy checker performance.
//!
//! The paper plots the time to analyze one million disclosure labels against
//! the maximum number of elements (single-atom views) per policy partition,
//! for six configurations: {1-way, 5-way partitions} × {1K, 50K, 1M
//! principals}.  This bench measures the same grid as throughput
//! (labels/second) for the compiled/interned store, on the unpacked and the
//! packed submission path.  The full grid (including the 1M-principal axis,
//! now the default) runs under `cargo bench`; under `cargo test` the sweep
//! shrinks to its smallest point so the measurement path stays a fast smoke
//! test.  For the sharded series and the seed-store baseline see the
//! `fig6_json` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdc_bench::{fig6_principal_counts, policy_workload};
use fdc_policy::PrincipalId;
use std::hint::black_box;
use std::time::Duration;

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_policy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Only `cargo bench` passes --bench; anything else (cargo test runs the
    // body once as a smoke test) gets the smallest grid so the heavyweight
    // workload setup does not dominate the test suite.
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let (principal_counts, label_batch, element_sweep): (Vec<usize>, usize, &[usize]) =
        if bench_mode {
            (fig6_principal_counts(), 10_000, &[5, 25, 50])
        } else {
            (vec![1_000], 1_000, &[5])
        };

    for &num_principals in &principal_counts {
        for &max_partitions in &[1usize, 5] {
            for &max_elements in element_sweep {
                let workload =
                    policy_workload(num_principals, max_partitions, max_elements, label_batch);
                group.throughput(Throughput::Elements(workload.labels.len() as u64));
                let id = format!("{max_partitions}way_{num_principals}principals");
                // The store is mutated across iterations (as a long-running
                // reference monitor would be); the per-label cost is the
                // same whether or not the consistency bits have already
                // converged, and per-principal state is 24 bytes, so the
                // one-time clone is cheap even at a million principals.
                let mut store = workload.store.clone();
                group.bench_with_input(BenchmarkId::new(&id, max_elements), &workload, |b, w| {
                    b.iter(|| {
                        for (i, label) in w.labels.iter().enumerate() {
                            let principal = PrincipalId((i % w.num_principals) as u32);
                            black_box(store.submit(principal, label));
                        }
                    });
                });
                let mut packed_store = workload.store.clone();
                group.bench_with_input(
                    BenchmarkId::new(format!("{id}_packed"), max_elements),
                    &workload,
                    |b, w| {
                        b.iter(|| {
                            for (i, packed) in w.packed.iter().enumerate() {
                                let principal = PrincipalId((i % w.num_principals) as u32);
                                black_box(packed_store.submit_packed(principal, packed));
                            }
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
