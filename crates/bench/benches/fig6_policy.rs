//! Figure 6 — policy checker performance.
//!
//! The paper plots the time to analyze one million disclosure labels against
//! the maximum number of elements (single-atom views) per policy partition,
//! for six configurations: {1-way, 5-way partitions} × {1K, 50K, 1M
//! principals}.  This bench measures the same grid as throughput
//! (labels/second).  Set `FDC_FIG6_FULL=1` to run the full 1M-principal
//! axis; the default largest point is 250K principals (same shape, smaller
//! memory footprint).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdc_bench::{fig6_principal_counts, policy_workload};
use fdc_policy::PrincipalId;
use std::hint::black_box;
use std::time::Duration;

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_policy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let label_batch = 10_000usize;
    for &num_principals in &fig6_principal_counts() {
        for &max_partitions in &[1usize, 5] {
            for &max_elements in &[5usize, 25, 50] {
                let workload =
                    policy_workload(num_principals, max_partitions, max_elements, label_batch);
                group.throughput(Throughput::Elements(workload.labels.len() as u64));
                let id = format!("{max_partitions}way_{num_principals}principals");
                group.bench_with_input(BenchmarkId::new(id, max_elements), &workload, |b, w| {
                    // The store is mutated across iterations (as a
                    // long-running reference monitor would be); the
                    // per-label cost is the same whether or not the
                    // consistency bits have already converged, and
                    // avoiding a per-iteration clone of up to a million
                    // principal states keeps the measurement honest.
                    let mut store = w.store.clone();
                    b.iter(|| {
                        for (i, label) in w.labels.iter().enumerate() {
                            let principal = PrincipalId((i % w.num_principals) as u32);
                            black_box(store.submit(principal, label));
                        }
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
