//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench target in `benches/` regenerates one table or figure
//! of the paper's evaluation (Section 7); this library crate holds the
//! set-up code they share so that the per-bench files stay focused on the
//! measurement itself.
//!
//! | Bench target          | Regenerates                                   |
//! |------------------------|----------------------------------------------|
//! | `fig5_labeler`         | Figure 5 — disclosure labeler performance     |
//! | `fig6_policy`          | Figure 6 — policy checker performance         |
//! | `table2_casestudy`     | Table 2 — FQL vs Graph API review             |
//! | `ablation_label_repr`  | Section 6.1 ablation — packed vs set labels   |
//! | `ablation_dissect`     | Section 6.1 ablation — folding / dissect cost |
//!
//! The `fig5_json` / `fig6_json` binaries emit the same measurements as
//! machine-readable trajectories (`BENCH_fig5.json` / `BENCH_fig6.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fdc_core::{DisclosureLabel, PackedLabel};
use fdc_ecosystem::policies::PolicyGeneratorConfig;
use fdc_ecosystem::{ChurnConfig, Ecosystem, WorkloadConfig};
use fdc_policy::{PolicyStore, ShardedPolicyStore};
use fdc_service::{DisclosureService, InvalidationMode, Operation, ServiceConfig};

pub mod seed_store;

pub use seed_store::SeedPolicyStore;

/// Number of queries per pre-generated benchmark batch.
///
/// The paper measures the time to analyze one million queries; Criterion
/// instead measures throughput on a smaller batch and reports
/// queries/second, from which the per-million figure follows directly.
pub const BATCH_SIZE: usize = 500;

/// Template-pool size used by the Figure 6 workloads: principals draw their
/// random policies from this many distinct presets (the realistic app
/// ecosystem regime; the interned store deduplicates them into the arena).
pub const FIG6_TEMPLATE_POOL: usize = 1_000;

/// A pre-generated labeling workload for one Figure 5 configuration.
pub struct LabelingWorkload {
    /// The assembled ecosystem (schema, views, labelers).
    pub ecosystem: Ecosystem,
    /// The generated queries.
    pub queries: Vec<fdc_cq::ConjunctiveQuery>,
    /// The same queries interned once through the cached labeler's
    /// interner, index-aligned with [`queries`](Self::queries) — the
    /// operand of the `interned` Figure 5 series (labeling by dense
    /// `QueryId`, no per-request canonical hashing).
    pub interned: Vec<fdc_cq::intern::QueryId>,
    /// Maximum number of atoms per query in this configuration.
    pub max_atoms: usize,
}

/// Builds the Figure 5 workload for a given maximum number of atoms per
/// query (3, 6, 9, 12 or 15 in the paper).
///
/// The batch is interned **once** through the ecosystem's cached labeler —
/// the setup cost an interned serving deployment pays per distinct shape,
/// not per request.
pub fn labeling_workload(max_atoms: usize, batch: usize) -> LabelingWorkload {
    let ecosystem = Ecosystem::new();
    let max_subqueries = (max_atoms / 3).max(1);
    let mut generator = ecosystem.workload(WorkloadConfig::stress(
        max_subqueries,
        0xF15 + max_atoms as u64,
    ));
    let queries = generator.batch(batch);
    let interner = ecosystem.cached.interner();
    let interned = {
        let mut interner = interner.write().unwrap_or_else(|e| e.into_inner());
        queries.iter().map(|q| interner.intern(q)).collect()
    };
    LabelingWorkload {
        ecosystem,
        queries,
        interned,
        max_atoms,
    }
}

/// A pre-generated policy-checking workload for one Figure 6 configuration.
pub struct PolicyWorkload {
    /// The multi-principal policy store (compiled + interned).
    pub store: PolicyStore,
    /// Pre-labeled queries, round-robined across principals.
    pub labels: Vec<DisclosureLabel>,
    /// The packed 64-bit form of [`labels`](Self::labels), index-aligned.
    pub packed: Vec<Vec<PackedLabel>>,
    /// Number of principals in the store.
    pub num_principals: usize,
}

/// The policy-generator configuration of one Figure 6 grid point.
pub fn fig6_policy_config(
    max_partitions: usize,
    max_elements_per_partition: usize,
) -> PolicyGeneratorConfig {
    PolicyGeneratorConfig {
        max_partitions,
        max_elements_per_partition,
        template_pool: FIG6_TEMPLATE_POOL,
        seed: 0xF16,
    }
}

/// Builds the Figure 6 workload: `num_principals` random policies with the
/// given maximum partitions (1 or 5) and maximum elements per partition
/// (5–50), plus a batch of labeled queries to push through the checker.
///
/// Labels are produced by the cached batch labeler on all cores (the
/// serving path), so workload setup no longer dominates smoke runs.
pub fn policy_workload(
    num_principals: usize,
    max_partitions: usize,
    max_elements_per_partition: usize,
    label_batch: usize,
) -> PolicyWorkload {
    let ecosystem = Ecosystem::new();
    let mut policies = ecosystem.policy_generator(fig6_policy_config(
        max_partitions,
        max_elements_per_partition,
    ));
    let store = policies.build_store(&ecosystem.views, num_principals);
    let mut generator = ecosystem.workload(WorkloadConfig::base(0xF16F));
    let labels = ecosystem.label_batch_parallel(&generator.batch(label_batch));
    let packed = labels.iter().map(DisclosureLabel::pack).collect();
    PolicyWorkload {
        store,
        labels,
        packed,
        num_principals,
    }
}

/// Builds the sharded counterpart of [`policy_workload`]'s store: the same
/// seed and configuration (hence the same per-principal policies) spread
/// over `num_shards` shards.
pub fn sharded_policy_store(
    num_principals: usize,
    max_partitions: usize,
    max_elements_per_partition: usize,
    num_shards: usize,
) -> ShardedPolicyStore {
    let ecosystem = Ecosystem::new();
    ecosystem
        .policy_generator(fig6_policy_config(
            max_partitions,
            max_elements_per_partition,
        ))
        .build_sharded_store(&ecosystem.views, num_principals, num_shards)
}

/// Builds the seed revision's uncompiled store over the same policies as
/// [`policy_workload`] — the baseline the fig6 trajectory is measured
/// against.  O(num_principals) `SecurityPolicy` clones: keep the principal
/// count moderate (the seed hid its 1M point behind `FDC_FIG6_FULL` for a
/// reason).
pub fn seed_policy_store(
    num_principals: usize,
    max_partitions: usize,
    max_elements_per_partition: usize,
) -> SeedPolicyStore {
    let ecosystem = Ecosystem::new();
    let mut policies = ecosystem.policy_generator(fig6_policy_config(
        max_partitions,
        max_elements_per_partition,
    ));
    let mut store = SeedPolicyStore::new();
    for _ in 0..num_principals {
        store.register(policies.next_policy(&ecosystem.views));
    }
    store
}

/// The policy-generator configuration of the Figure 7 churn experiment:
/// the paper's "fairly complex Chinese Wall" regime (up to 5 partitions,
/// up to 25 elements each) over the template pool.
pub fn fig7_policy_config() -> PolicyGeneratorConfig {
    fig6_policy_config(5, 25)
}

/// Builds the Figure 7 service under test: `num_principals` pooled random
/// policies behind a [`DisclosureService`] in the given invalidation mode.
///
/// Audit history is disabled (the churn stream contains no audits), so the
/// measured path is admissions + mutations only.
pub fn fig7_service(num_principals: usize, invalidation: InvalidationMode) -> DisclosureService {
    fig7_service_with_workers(num_principals, invalidation, 0)
}

/// [`fig7_service`] with an explicit worker-pool width — the knob behind
/// the `thread_scaling` series of `fig7_json` (`pipelined_x{1,2,4}`).
/// `0` keeps the default (the host's available parallelism); `1` serves
/// inline with no pool.
pub fn fig7_service_with_workers(
    num_principals: usize,
    invalidation: InvalidationMode,
    workers: usize,
) -> DisclosureService {
    let ecosystem = Ecosystem::new();
    ecosystem.disclosure_service(
        fig7_policy_config(),
        num_principals,
        ServiceConfig {
            history_cap: 0,
            invalidation,
            workers,
            ..ServiceConfig::default()
        },
    )
}

/// Query-template-pool size of the Figure 7 churn workload: admissions
/// draw from this many distinct query shapes (the serving steady state,
/// mirroring [`FIG6_TEMPLATE_POOL`] on the policy side).
pub const FIG7_QUERY_POOL: usize = 2_000;

/// Generates the Figure 7 operation stream: `ops` mixed operations at the
/// given mutation:query ratio, preceded by `warmup` pure admissions that
/// seed the query pool and bring the label cache to steady state before
/// timing starts.
///
/// Both streams come from one deterministic generator, so the incremental
/// and flush-on-mutation services measure identical work.
pub fn fig7_streams(
    num_principals: usize,
    mutation_ratio: f64,
    warmup: usize,
    ops: usize,
) -> (Vec<Operation>, Vec<Operation>) {
    let ecosystem = Ecosystem::new();
    let mut churn = ecosystem.churn(ChurnConfig {
        mutation_ratio,
        add_view_share: 0.1,
        check_share: 0.0,
        query_pool: FIG7_QUERY_POOL,
        num_principals,
        seed: 0xF17_BBBB,
        // The stress workload (up to 2 uid-joined subqueries, ≤6 atoms):
        // folding/dissection dominate a cold labeling, which is exactly the
        // work the flush-on-mutation baseline keeps redoing.
        workload: WorkloadConfig::stress(2, 0xF17_0002),
    });
    (churn.admissions(warmup), churn.ops(ops))
}

/// The principal counts swept by the Figure 6 benchmark.
///
/// The paper sweeps 1K, 50K and 1M principals, and since the store interns
/// compiled policies (24 bytes per principal), the full 1M axis is the
/// default.  Set `FDC_FIG6_FULL=0` to shrink the largest point to 250K on
/// memory-constrained machines; `FDC_FIG6_FULL=1` remains accepted as the
/// (now default) full axis.
pub fn fig6_principal_counts() -> Vec<usize> {
    if std::env::var("FDC_FIG6_FULL").is_ok_and(|v| v == "0") {
        vec![1_000, 50_000, 250_000]
    } else {
        vec![1_000, 50_000, 1_000_000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_policy::PrincipalId;

    #[test]
    fn labeling_workload_respects_the_atom_bound() {
        let w = labeling_workload(6, 100);
        assert_eq!(w.queries.len(), 100);
        assert_eq!(w.max_atoms, 6);
        assert!(w.queries.iter().all(|q| q.num_atoms() <= 6));
        // The interned ids are index-aligned with the boxed queries and
        // label identically through either representation.
        assert_eq!(w.interned.len(), w.queries.len());
        use fdc_core::QueryLabeler as _;
        for (query, &id) in w.queries.iter().zip(&w.interned).take(10) {
            assert_eq!(
                w.ecosystem.cached.label_interned(id),
                w.ecosystem.baseline.label_query(query)
            );
        }
        assert_eq!(
            w.ecosystem.cached.label_queries_interned(&w.interned),
            w.ecosystem.baseline.label_queries(&w.queries)
        );
    }

    #[test]
    fn policy_workload_builds_consistent_state() {
        let w = policy_workload(50, 5, 10, 20);
        assert_eq!(w.store.len(), 50);
        assert_eq!(w.labels.len(), 20);
        assert_eq!(w.packed.len(), 20);
        assert_eq!(w.num_principals, 50);
        for (label, packed) in w.labels.iter().zip(&w.packed) {
            assert_eq!(&label.pack(), packed);
        }
    }

    #[test]
    fn principal_counts_have_three_points() {
        assert_eq!(fig6_principal_counts().len(), 3);
    }

    #[test]
    fn fig7_helpers_build_consistent_state() {
        let (warmup, stream) = fig7_streams(50, 0.05, 20, 200);
        assert_eq!(warmup.len(), 20);
        assert_eq!(stream.len(), 200);
        assert!(warmup.iter().all(|op| op.is_admission()));
        assert!(stream.iter().any(|op| op.is_mutation()));
        let mut service = fig7_service(50, InvalidationMode::Incremental);
        assert_eq!(service.num_principals(), 50);
        for response in service.run_batch(&warmup) {
            assert!(!response.is_rejected());
        }
        for response in service.run_batch(&stream) {
            assert!(!response.is_rejected());
        }
        assert!(service.stats().mutations > 0);
        // Identical streams drive the flush baseline to identical decisions.
        let mut flush = fig7_service(50, InvalidationMode::FlushOnMutation);
        flush.run_batch(&warmup);
        flush.run_batch(&stream);
        assert_eq!(flush.totals(), service.totals());
        assert!(flush.stats().flushes > 0);
    }

    #[test]
    fn seed_and_interned_stores_decide_identically() {
        let w = policy_workload(25, 5, 10, 60);
        let mut interned = w.store.clone();
        let mut sharded = sharded_policy_store(25, 5, 10, 3);
        let mut seed = seed_policy_store(25, 5, 10);
        assert_eq!(seed.len(), 25);
        for (i, label) in w.labels.iter().enumerate() {
            let p = PrincipalId((i % 25) as u32);
            let expected = seed.submit(p, label);
            assert_eq!(interned.submit(p, label), expected, "label {i}");
            assert_eq!(
                sharded.submit_packed(p, &w.packed[i]),
                expected,
                "label {i}"
            );
        }
        assert_eq!(interned.totals(), seed.totals());
        assert_eq!(sharded.totals(), seed.totals());
    }
}
