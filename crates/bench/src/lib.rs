//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench target in `benches/` regenerates one table or figure
//! of the paper's evaluation (Section 7); this library crate holds the
//! set-up code they share so that the per-bench files stay focused on the
//! measurement itself.
//!
//! | Bench target          | Regenerates                                   |
//! |------------------------|----------------------------------------------|
//! | `fig5_labeler`         | Figure 5 — disclosure labeler performance     |
//! | `fig6_policy`          | Figure 6 — policy checker performance         |
//! | `table2_casestudy`     | Table 2 — FQL vs Graph API review             |
//! | `ablation_label_repr`  | Section 6.1 ablation — packed vs set labels   |
//! | `ablation_dissect`     | Section 6.1 ablation — folding / dissect cost |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fdc_core::DisclosureLabel;
use fdc_ecosystem::policies::PolicyGeneratorConfig;
use fdc_ecosystem::{Ecosystem, WorkloadConfig};
use fdc_policy::PolicyStore;

/// Number of queries per pre-generated benchmark batch.
///
/// The paper measures the time to analyze one million queries; Criterion
/// instead measures throughput on a smaller batch and reports
/// queries/second, from which the per-million figure follows directly.
pub const BATCH_SIZE: usize = 500;

/// A pre-generated labeling workload for one Figure 5 configuration.
pub struct LabelingWorkload {
    /// The assembled ecosystem (schema, views, labelers).
    pub ecosystem: Ecosystem,
    /// The generated queries.
    pub queries: Vec<fdc_cq::ConjunctiveQuery>,
    /// Maximum number of atoms per query in this configuration.
    pub max_atoms: usize,
}

/// Builds the Figure 5 workload for a given maximum number of atoms per
/// query (3, 6, 9, 12 or 15 in the paper).
pub fn labeling_workload(max_atoms: usize, batch: usize) -> LabelingWorkload {
    let ecosystem = Ecosystem::new();
    let max_subqueries = (max_atoms / 3).max(1);
    let mut generator = ecosystem.workload(WorkloadConfig::stress(
        max_subqueries,
        0xF15 + max_atoms as u64,
    ));
    let queries = generator.batch(batch);
    LabelingWorkload {
        ecosystem,
        queries,
        max_atoms,
    }
}

/// A pre-generated policy-checking workload for one Figure 6 configuration.
pub struct PolicyWorkload {
    /// The multi-principal policy store.
    pub store: PolicyStore,
    /// Pre-labeled queries, round-robined across principals.
    pub labels: Vec<DisclosureLabel>,
    /// Number of principals in the store.
    pub num_principals: usize,
}

/// Builds the Figure 6 workload: `num_principals` random policies with the
/// given maximum partitions (1 or 5) and maximum elements per partition
/// (5–50), plus a batch of labeled queries to push through the checker.
pub fn policy_workload(
    num_principals: usize,
    max_partitions: usize,
    max_elements_per_partition: usize,
    label_batch: usize,
) -> PolicyWorkload {
    let ecosystem = Ecosystem::new();
    let mut policies = ecosystem.policy_generator(PolicyGeneratorConfig {
        max_partitions,
        max_elements_per_partition,
        seed: 0xF16,
    });
    let store = policies.build_store(&ecosystem.views, num_principals);
    let mut generator = ecosystem.workload(WorkloadConfig::base(0xF16F));
    let labels = ecosystem.label_batch(&generator.batch(label_batch));
    PolicyWorkload {
        store,
        labels,
        num_principals,
    }
}

/// The principal counts swept by the Figure 6 benchmark.
///
/// The paper sweeps 1K, 50K and 1M principals.  The full 1M-principal sweep
/// allocates several hundred megabytes of per-principal policy state, so it
/// is opt-in: set `FDC_FIG6_FULL=1` to reproduce the paper's axis exactly;
/// the default keeps the same shape with a smaller largest point.
pub fn fig6_principal_counts() -> Vec<usize> {
    if std::env::var("FDC_FIG6_FULL").is_ok_and(|v| v == "1") {
        vec![1_000, 50_000, 1_000_000]
    } else {
        vec![1_000, 50_000, 250_000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeling_workload_respects_the_atom_bound() {
        let w = labeling_workload(6, 100);
        assert_eq!(w.queries.len(), 100);
        assert_eq!(w.max_atoms, 6);
        assert!(w.queries.iter().all(|q| q.num_atoms() <= 6));
    }

    #[test]
    fn policy_workload_builds_consistent_state() {
        let w = policy_workload(50, 5, 10, 20);
        assert_eq!(w.store.len(), 50);
        assert_eq!(w.labels.len(), 20);
        assert_eq!(w.num_principals, 50);
    }

    #[test]
    fn principal_counts_have_three_points() {
        assert_eq!(fig6_principal_counts().len(), 3);
    }
}
