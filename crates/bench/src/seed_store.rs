//! The seed revision's multi-principal policy store, preserved verbatim as
//! the baseline of the Figure 6 trajectory.
//!
//! This is what `fdc_policy::PolicyStore` looked like before the
//! compiled/interned rebuild: every principal owns a full cloned
//! [`SecurityPolicy`] (per-partition hash maps and all), and every submit
//! re-runs the uncompiled [`PolicyPartition::allows`] hash lookups per atom.
//! The production store must keep deciding exactly like it (asserted by the
//! bench tests) while beating it on throughput and memory — `fig6_json`
//! reports the measured ratio.
//!
//! [`PolicyPartition::allows`]: fdc_policy::PolicyPartition::allows

use fdc_core::DisclosureLabel;
use fdc_policy::{Decision, PrincipalId, SecurityPolicy};

/// Per-principal enforcement state of the seed store: a cloned policy plus
/// the consistency word and counters.
#[derive(Debug, Clone)]
struct SeedPrincipalState {
    policy: SecurityPolicy,
    consistent: u64,
    answered: u64,
    refused: u64,
}

/// The seed's policy checker for many principals (uncompiled, uninterned).
#[derive(Debug, Clone, Default)]
pub struct SeedPolicyStore {
    principals: Vec<SeedPrincipalState>,
}

impl SeedPolicyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SeedPolicyStore::default()
    }

    /// Registers a principal with its policy and returns its id.
    pub fn register(&mut self, policy: SecurityPolicy) -> PrincipalId {
        let id = PrincipalId(self.principals.len() as u32);
        let n = policy.len();
        let consistent = if n == 0 { 0 } else { u64::MAX >> (64 - n) };
        self.principals.push(SeedPrincipalState {
            policy,
            consistent,
            answered: 0,
            refused: 0,
        });
        id
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.principals.len()
    }

    /// True if no principals are registered.
    pub fn is_empty(&self) -> bool {
        self.principals.is_empty()
    }

    /// Submits a query label on behalf of a principal — the seed's hot path:
    /// per consistent partition, a hash-map lookup per label atom.
    pub fn submit(&mut self, principal: PrincipalId, label: &DisclosureLabel) -> Decision {
        let state = &mut self.principals[principal.index()];
        if label.is_bottom() {
            state.answered += 1;
            return Decision::Allow;
        }
        let mut surviving = 0u64;
        for (i, partition) in state.policy.partitions().iter().enumerate() {
            if state.consistent & (1 << i) != 0 && partition.allows(label) {
                surviving |= 1 << i;
            }
        }
        if surviving != 0 {
            state.consistent = surviving;
            state.answered += 1;
            Decision::Allow
        } else {
            state.refused += 1;
            Decision::Deny
        }
    }

    /// Total `(answered, refused)` across all principals (the seed's O(n)
    /// walk).
    pub fn totals(&self) -> (u64, u64) {
        self.principals
            .iter()
            .fold((0, 0), |(a, r), s| (a + s.answered, r + s.refused))
    }
}
