//! Recovery cold-start, machine-readable: checkpoint bulkload vs
//! from-generator rebuild.
//!
//! The durable state plane (`crates/durability` + the service's
//! `open_durable` lifecycle) exists so a restarted service does not have to
//! re-derive its world.  This benchmark quantifies that: at the Figure 7
//! population (100K principals, pooled random Chinese-Wall policies, a
//! churn slice applied on top), it times two ways of reaching the same
//! serving state from a cold process:
//!
//! * `rebuild` — the pre-durability path: re-generate every policy from the
//!   deterministic generator, register each principal, and re-apply the
//!   churn slice through `run_batch`.
//! * `bulkload` — `DisclosureService::open_durable` against a directory
//!   holding a fresh checkpoint: one sequential read, one whole-file CRC,
//!   arena-level decodes of the registry / interner / sharded store, zero
//!   WAL records to replay.
//!
//! Both paths are driven to the bit-identical store (asserted before
//! timing is reported), so the headline `speedup_bulkload_vs_rebuild` is an
//! apples-to-apples cold-start ratio.  The committed acceptance floor is
//! 5x, enforced by `bench_check --recovery` in CI.
//!
//! ```text
//! cargo run --release -p fdc-bench --bin recovery_json            # full run
//! FDC_BENCH_SMOKE=1 cargo run -p fdc-bench --bin recovery_json    # CI smoke
//! ```

use std::path::PathBuf;
use std::time::Instant;

use fdc_bench::{fig7_policy_config, FIG7_QUERY_POOL};
use fdc_ecosystem::{ChurnConfig, Ecosystem, WorkloadConfig};
use fdc_service::{
    DisclosureService, DurabilityConfig, InvalidationMode, Operation, ServiceConfig,
};

/// Serving-sized request-loop batches, as in `fig7_json`.
const BATCH_OPS: usize = 1_024;

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| a != "--smoke")
        .unwrap_or_else(|| "BENCH_recovery.json".to_owned());
    let smoke = std::env::var("FDC_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke");

    // Best-of-N: the rebuild leg is seconds long and stable, but the
    // bulkload leg is fast enough that a single cold run on a shared host
    // can eat a page-cache hiccup; best-of converges both to the machine's
    // fast state.
    // The full churn slice is sized so the re-execution cost a rebuild
    // cannot avoid (cold labeling of the admission stream) is visible next
    // to the population-registration cost it shares with seeding.
    let (num_principals, churn_ops, repeats) = if smoke {
        (2_000, 1_000, 1)
    } else {
        (100_000, 25_000, 3)
    };
    println!(
        "recovery_json: principals={num_principals} churn_ops={churn_ops} \
         repeats={repeats} smoke={smoke}"
    );

    let ecosystem = Ecosystem::new();
    let stream = churn_stream(&ecosystem, num_principals, churn_ops);
    let dir = scratch_dir(smoke);

    // Seed the durable directory once: register the population and apply
    // the churn slice through the WAL'd front door, then checkpoint so the
    // timed bulkload is pure snapshot decode (zero records to replay).
    let seed_start = Instant::now();
    let (mut service, _) =
        DisclosureService::open_durable(ecosystem.views.clone(), durable_config(), &dir)
            .expect("failed to open the durable scratch directory");
    register_population(&ecosystem, &mut service, num_principals);
    for chunk in stream.chunks(BATCH_OPS) {
        std::hint::black_box(service.run_batch(chunk));
    }
    let wal_records = service.checkpoint().expect("checkpoint failed");
    let reference = state_digest(&service);
    // The durability health block of the seeding run: the gate in
    // `bench_check --recovery` demands a run that never degraded and
    // landed its checkpoint — a seeding pass that survived on retries
    // or fell back to read-only would not be measuring the real path.
    let health = service.stats().durability;
    assert_eq!(health.mode_transitions, 0, "seeding run degraded");
    service.close().expect("close failed");
    println!(
        "seeded {} WAL records + checkpoint in {:.1}s",
        wal_records,
        seed_start.elapsed().as_secs_f64()
    );

    // Leg 1: from-generator rebuild (the pre-durability cold start).
    let mut rebuild_ms = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        let mut rebuilt = DisclosureService::new(ecosystem.views.clone(), volatile_config());
        register_population(&ecosystem, &mut rebuilt, num_principals);
        for chunk in stream.chunks(BATCH_OPS) {
            std::hint::black_box(rebuilt.run_batch(chunk));
        }
        rebuild_ms = rebuild_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            state_digest(&rebuilt),
            reference,
            "rebuild diverged from the checkpointed state"
        );
    }

    // Leg 2: checkpoint bulkload (open_durable cold start).
    let mut bulkload_ms = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        let (recovered, report) =
            DisclosureService::open_durable(ecosystem.views.clone(), durable_config(), &dir)
                .expect("bulkload open failed");
        bulkload_ms = bulkload_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(report.records_replayed, 0, "checkpoint must cover the log");
        assert_eq!(
            state_digest(&recovered),
            reference,
            "bulkload diverged from the checkpointed state"
        );
        recovered.close().expect("close failed");
    }

    let speedup = rebuild_ms / bulkload_ms;
    println!(
        "rebuild {rebuild_ms:.1}ms | bulkload {bulkload_ms:.1}ms | \
         {speedup:.1}x (acceptance: >= 5x committed, >= 1x smoke)"
    );

    let json = render_json(
        num_principals,
        churn_ops,
        wal_records,
        rebuild_ms,
        bulkload_ms,
        speedup,
        health,
        smoke,
    );
    std::fs::write(&out_path, json).expect("failed to write the benchmark JSON");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The durable service configuration under test.  `fsync` is disabled: the
/// benchmark measures decode/replay cost, not the host's disk-flush
/// latency, and the seeding phase would otherwise be dominated by it.
fn durable_config() -> ServiceConfig {
    ServiceConfig {
        history_cap: 0,
        invalidation: InvalidationMode::Incremental,
        durability: DurabilityConfig {
            fsync: false,
            ..DurabilityConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// The same configuration without the durable plane — the rebuild leg.
fn volatile_config() -> ServiceConfig {
    ServiceConfig {
        history_cap: 0,
        invalidation: InvalidationMode::Incremental,
        ..ServiceConfig::default()
    }
}

/// Registers the Figure 7 policy population, identically on every call
/// (the generator is seeded, so rebuild and seed legs see the same world).
fn register_population(
    ecosystem: &Ecosystem,
    service: &mut DisclosureService,
    num_principals: usize,
) {
    let mut policies = ecosystem.policy_generator(fig7_policy_config());
    for _ in 0..num_principals {
        let policy = policies.next_policy(&ecosystem.views);
        service.register_principal(policy);
    }
}

/// The churn slice applied on top of the registered population: the
/// Figure 7 operation mix at a 1% mutation ratio.
fn churn_stream(ecosystem: &Ecosystem, num_principals: usize, ops: usize) -> Vec<Operation> {
    let mut churn = ecosystem.churn(ChurnConfig {
        mutation_ratio: 0.01,
        add_view_share: 0.1,
        check_share: 0.0,
        query_pool: FIG7_QUERY_POOL,
        num_principals,
        seed: 0x4EC0_0001,
        workload: WorkloadConfig::stress(2, 0xF17_0002),
    });
    churn.ops(ops)
}

/// A cheap extensional digest for the parity assertions: population size,
/// store decision totals, and the registry's view-universe shape.
fn state_digest(service: &DisclosureService) -> (usize, (u64, u64), usize) {
    (
        service.store().len(),
        service.totals(),
        service.registry().len(),
    )
}

/// A scratch directory under the system temp dir, keyed by pid so
/// concurrent smoke and full runs do not collide.
fn scratch_dir(smoke: bool) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fdc_recovery_json_{}_{}",
        std::process::id(),
        if smoke { "smoke" } else { "full" }
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders the result as JSON by hand (the workspace is offline, so no
/// serde).  The key set is the contract `bench_check --recovery` reads:
/// the timings, plus the seeding run's durability-health counters (the
/// gate rejects a trajectory whose seeding degraded or lost its
/// checkpoint).
#[allow(clippy::too_many_arguments)]
fn render_json(
    num_principals: usize,
    churn_ops: usize,
    wal_records: u64,
    rebuild_ms: f64,
    bulkload_ms: f64,
    speedup: f64,
    health: fdc_service::DurabilityHealth,
    smoke: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"recovery_cold_start\",\n");
    out.push_str("  \"unit\": \"milliseconds\",\n");
    out.push_str(&format!("  \"principals\": {num_principals},\n"));
    out.push_str(&format!("  \"churn_ops\": {churn_ops},\n"));
    out.push_str(&format!("  \"wal_records\": {wal_records},\n"));
    out.push_str(&format!("  \"rebuild_ms\": {rebuild_ms:.3},\n"));
    out.push_str(&format!("  \"bulkload_ms\": {bulkload_ms:.3},\n"));
    out.push_str(&format!(
        "  \"speedup_bulkload_vs_rebuild\": {speedup:.3},\n"
    ));
    out.push_str("  \"min_speedup_required\": 5.0,\n");
    out.push_str(&format!(
        "  \"health_wal_records_committed\": {},\n",
        health.wal_records_committed
    ));
    out.push_str(&format!(
        "  \"health_wal_commits\": {},\n",
        health.wal_commits
    ));
    out.push_str(&format!(
        "  \"health_wal_retries\": {},\n",
        health.wal_retries
    ));
    out.push_str(&format!(
        "  \"health_wal_fsync_failures\": {},\n",
        health.wal_fsync_failures
    ));
    out.push_str(&format!(
        "  \"health_checkpoints\": {},\n",
        health.checkpoints
    ));
    out.push_str(&format!(
        "  \"health_checkpoint_failures\": {},\n",
        health.checkpoint_failures
    ));
    out.push_str(&format!(
        "  \"health_mode_transitions\": {},\n",
        health.mode_transitions
    ));
    out.push_str(&format!("  \"smoke\": {smoke}\n"));
    out.push_str("}\n");
    out
}
