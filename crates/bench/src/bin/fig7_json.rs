//! Figure 7, machine-readable: dynamic-service throughput under policy
//! churn.
//!
//! The paper's Figures 5 and 6 measure the two static stages (labeling and
//! enforcement) over a frozen world.  Figure 7 is this repository's dynamic
//! extension: a [`DisclosureService`] serves a mixed operation stream —
//! admissions plus `GrantView` / `RevokeView` / `AddSecurityView` mutations
//! — at 100K principals, swept over mutation:query ratios
//! {0, 0.1%, 1%, 10%}.  Three strategies are measured on identical streams:
//!
//! * `incremental` — per-relation epoch versioning through the batch
//!   executor (`run_batch`): a view-universe change bumps one relation's
//!   epoch and cached labels lazily re-derive just their stale atoms;
//!   policy grants/revokes never touch the label cache but still split the
//!   executor's parallel admission runs.
//! * `flush_on_mutation` — the conservative baseline a service without
//!   dependency tracking must adopt: every mutation flushes the whole label
//!   cache, so each flush forces the full labeling pipeline to re-run per
//!   distinct query shape until the cache re-warms.
//! * `pipelined` — epoch versioning through the epoch-snapshot pipelined
//!   executor (`run_pipelined`): the stream splits only at
//!   `AddSecurityView` boundaries (grants/revokes never interrupt the
//!   labeling plane), each segment labels against the previous snapshot,
//!   and snapshot cache work is published back at retirement.
//!
//! ```text
//! cargo run --release -p fdc-bench --bin fig7_json            # full run
//! FDC_BENCH_SMOKE=1 cargo run -p fdc-bench --bin fig7_json    # CI smoke
//! ```
//!
//! The emitted `BENCH_fig7.json` records ops/second per ratio and strategy,
//! the per-strategy cache counters (`CachedLabeler::stats()`), the
//! worker-plane counters (`ServiceStats::parallel` — per-worker task
//! counts, steals, queue stalls, snapshots reclaimed), a `thread_scaling`
//! block (the pipelined executor at 1% churn with the worker pool pinned
//! to 1, 2 and 4 workers), and the headlines: `speedup_at_1pct`
//! (incremental vs flush, acceptance ≥ 2×) and `pipelined_vs_incremental`
//! per swept ratio (acceptance: ≥ 1 at 0.1% and 1%, ≥ parity at 10% —
//! enforced by the `bench_check` binary in CI, which also floors
//! `pipelined_x4` at 1.8× `pipelined_x1` on multi-core committed runs).

use std::time::Instant;

use fdc_bench::{fig7_service_with_workers, fig7_streams};
use fdc_core::CacheStats;
use fdc_service::{DisclosureService, InvalidationMode, Operation, ServiceStats};

/// The swept mutation:query ratios.
const RATIOS: [f64; 4] = [0.0, 0.001, 0.01, 0.1];

/// The worker-pool widths of the `thread_scaling` series, measured on the
/// pipelined executor at [`SCALING_RATIO`].
const SCALING_WORKERS: [usize; 3] = [1, 2, 4];

/// The mutation ratio the `thread_scaling` series is measured at: 1%
/// churn, the headline regime (large segments, realistic mutation mix).
const SCALING_RATIO: f64 = 0.01;

/// Which request-loop executor a strategy measures.
#[derive(Clone, Copy)]
enum Executor {
    /// `DisclosureService::run_batch` — runs split at every mutation.
    Batch,
    /// `DisclosureService::run_pipelined` — epoch-snapshot segments split
    /// only at label-affecting boundaries.
    Pipelined,
}

/// One strategy's measurement at one ratio.
struct Measurement {
    mode: &'static str,
    ops_per_sec: f64,
    cache: CacheStats,
    service: ServiceStats,
}

/// Both strategies at one ratio.
struct SweepPoint {
    mutation_ratio: f64,
    results: Vec<Measurement>,
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| a != "--smoke")
        .unwrap_or_else(|| "BENCH_fig7.json".to_owned());
    let smoke = std::env::var("FDC_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke");

    // Warmup must exceed the query pool (FIG7_QUERY_POOL) so the measured
    // stream runs at the cache's steady state.
    // Best-of-8 on the full run: the swept strategies differ by a few
    // percent at some points, which single-shot timing on a shared host
    // cannot resolve (observed run-to-run swings exceed 10%); best-of-N
    // converges every strategy to the machine's fast state before the
    // ratios are taken.
    let (num_principals, warmup_ops, stream_ops, repeats) = if smoke {
        (2_000, 2_500, 5_000, 1)
    } else {
        (100_000, 20_000, 100_000, 8)
    };
    let batch_ops = 1_024;
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "fig7_json: principals={num_principals} warmup={warmup_ops} stream={stream_ops} \
         batch={batch_ops} repeats={repeats} host_threads={host_threads} smoke={smoke}"
    );
    println!(
        "{:>10} | {:>14} | {:>18} | {:>8}",
        "ratio", "incremental", "flush_on_mutation", "speedup"
    );

    let strategies: [(InvalidationMode, Executor, &'static str); 3] = [
        (
            InvalidationMode::Incremental,
            Executor::Batch,
            "incremental",
        ),
        (
            InvalidationMode::FlushOnMutation,
            Executor::Batch,
            "flush_on_mutation",
        ),
        (
            InvalidationMode::Incremental,
            Executor::Pipelined,
            "pipelined",
        ),
    ];
    let mut points = Vec::new();
    for &ratio in &RATIOS {
        let (warmup, stream) = fig7_streams(num_principals, ratio, warmup_ops, stream_ops);
        // Round-robin the repeats across the strategies (A B C, A B C, …)
        // instead of exhausting one strategy's repeats before the next:
        // machine-speed drift over the sweep then hits every strategy's
        // k-th repeat alike, so the best-of comparison stays fair.
        let mut best: Vec<Option<(f64, CacheStats, ServiceStats)>> = vec![None; strategies.len()];
        for _ in 0..repeats.max(1) {
            for (slot, &(mode, executor, _)) in strategies.iter().enumerate() {
                let sample = measure_once(
                    num_principals,
                    mode,
                    executor,
                    0,
                    &warmup,
                    &stream,
                    batch_ops,
                );
                if best[slot].as_ref().is_none_or(|(b, _, _)| sample.0 > *b) {
                    best[slot] = Some(sample);
                }
            }
        }
        let results: Vec<Measurement> = strategies
            .iter()
            .zip(best)
            .map(|(&(_, _, name), sample)| {
                let (ops_per_sec, cache, service) = sample.expect("at least one repeat");
                Measurement {
                    mode: name,
                    ops_per_sec,
                    cache,
                    service,
                }
            })
            .collect();
        let speedup = results[0].ops_per_sec / results[1].ops_per_sec;
        let pipelined_ratio = results[2].ops_per_sec / results[0].ops_per_sec;
        println!(
            "{:>10} | {:>14.0} | {:>18.0} | {:>7.1}x | pipelined {:>12.0} ({:.2}x inc)",
            ratio,
            results[0].ops_per_sec,
            results[1].ops_per_sec,
            speedup,
            results[2].ops_per_sec,
            pipelined_ratio
        );
        points.push(SweepPoint {
            mutation_ratio: ratio,
            results,
        });
    }

    let speedup_at_1pct = speedup_at(&points, 0.01);
    println!(
        "\nincremental vs flush-on-mutation at the 1% mutation ratio: {speedup_at_1pct:.1}x \
         (acceptance: >= 2x)"
    );

    // The thread-scaling series: the pipelined executor at 1% churn with
    // the worker pool pinned to 1, 2 and 4 workers on identical streams.
    // Recorded at every host width (bench_check only floors the x4:x1
    // ratio when the committed run had real cores to scale onto).
    let (scaling_warmup, scaling_stream) =
        fig7_streams(num_principals, SCALING_RATIO, warmup_ops, stream_ops);
    let mut scaling: Vec<(usize, f64)> = SCALING_WORKERS.iter().map(|&w| (w, 0.0f64)).collect();
    for _ in 0..repeats.max(1) {
        for (slot, &workers) in SCALING_WORKERS.iter().enumerate() {
            let (ops_per_sec, _, _) = measure_once(
                num_principals,
                InvalidationMode::Incremental,
                Executor::Pipelined,
                workers,
                &scaling_warmup,
                &scaling_stream,
                batch_ops,
            );
            scaling[slot].1 = scaling[slot].1.max(ops_per_sec);
        }
    }
    for &(workers, ops_per_sec) in &scaling {
        println!("thread_scaling pipelined_x{workers}: {ops_per_sec:.0} ops/s");
    }

    let json = render_json(
        &points,
        &scaling,
        num_principals,
        warmup_ops,
        stream_ops,
        batch_ops,
        host_threads,
        smoke,
        speedup_at_1pct,
    );
    std::fs::write(&out_path, json).expect("failed to write the benchmark JSON");
    println!("wrote {out_path}");
}

/// Measures one strategy once at one ratio: build a fresh service, run the
/// warmup untimed, then time the churn stream in serving-sized batches.
fn measure_once(
    num_principals: usize,
    mode: InvalidationMode,
    executor: Executor,
    workers: usize,
    warmup: &[Operation],
    stream: &[Operation],
    batch_ops: usize,
) -> (f64, CacheStats, ServiceStats) {
    let mut service = fig7_service_with_workers(num_principals, mode, workers);
    run_in_batches(&mut service, executor, warmup, batch_ops);
    let start = Instant::now();
    run_in_batches(&mut service, executor, stream, batch_ops);
    let elapsed = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    let ops_per_sec = stream.len() as f64 / elapsed;
    (ops_per_sec, service.labeler().stats(), service.stats())
}

/// Feeds the stream to the service in serving-sized request-loop calls.
fn run_in_batches(
    service: &mut DisclosureService,
    executor: Executor,
    ops: &[Operation],
    batch_ops: usize,
) {
    for chunk in ops.chunks(batch_ops) {
        match executor {
            Executor::Batch => std::hint::black_box(service.run_batch(chunk)),
            Executor::Pipelined => std::hint::black_box(service.run_pipelined(chunk)),
        };
    }
}

/// The incremental:flush speedup at the sweep point closest to `ratio`.
fn speedup_at(points: &[SweepPoint], ratio: f64) -> f64 {
    points
        .iter()
        .find(|p| (p.mutation_ratio - ratio).abs() < 1e-9)
        .map(|p| p.results[0].ops_per_sec / p.results[1].ops_per_sec)
        .unwrap_or(f64::NAN)
}

/// Renders the trajectory as JSON by hand (the workspace is offline, so no
/// serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    points: &[SweepPoint],
    scaling: &[(usize, f64)],
    num_principals: usize,
    warmup_ops: usize,
    stream_ops: usize,
    batch_ops: usize,
    host_threads: usize,
    smoke: bool,
    speedup_at_1pct: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig7_churn_throughput\",\n");
    out.push_str("  \"unit\": \"ops_per_second\",\n");
    out.push_str(&format!("  \"num_principals\": {num_principals},\n"));
    out.push_str(&format!("  \"warmup_ops\": {warmup_ops},\n"));
    out.push_str(&format!("  \"stream_ops\": {stream_ops},\n"));
    out.push_str(&format!("  \"batch_ops\": {batch_ops},\n"));
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!(
        "  \"speedup_at_1pct\": {},\n",
        if speedup_at_1pct.is_finite() {
            format!("{speedup_at_1pct:.2}")
        } else {
            "null".to_owned()
        }
    ));
    // Floor history: PR 3 set 3.0 against the pre-interned boxed labeling
    // pipeline.  The PR 4 interned query plane made the *flush baseline's*
    // cold relabeling ~3x cheaper (id-keyed dissection, no canonical
    // hashing), compressing the incremental:flush gap at every ratio; the
    // floor tracks the honest gap over the current pipeline.
    out.push_str("  \"min_speedup_required\": 2.0,\n");
    // The pipelined:incremental throughput ratio per swept point — the
    // series the `bench_check` acceptance floors read.
    out.push_str("  \"pipelined_vs_incremental\": [\n");
    for (i, point) in points.iter().enumerate() {
        let incremental = point
            .results
            .iter()
            .find(|m| m.mode == "incremental")
            .map_or(f64::NAN, |m| m.ops_per_sec);
        let pipelined = point
            .results
            .iter()
            .find(|m| m.mode == "pipelined")
            .map_or(f64::NAN, |m| m.ops_per_sec);
        let ratio = pipelined / incremental;
        out.push_str(&format!(
            "    {{\"mutation_ratio\": {}, \"ratio\": {}}}{}\n",
            point.mutation_ratio,
            if ratio.is_finite() {
                format!("{ratio:.3}")
            } else {
                "null".to_owned()
            },
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // The pipelined executor at the scaling ratio with the worker pool
    // pinned to each width — the series behind the bench_check scaling
    // floor (pipelined_x4 vs pipelined_x1, multi-core committed runs).
    out.push_str("  \"thread_scaling\": {\n");
    out.push_str(&format!("    \"mutation_ratio\": {SCALING_RATIO},\n"));
    out.push_str("    \"series\": {\n");
    for (i, &(workers, ops_per_sec)) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "      \"pipelined_x{}\": {:.1}{}\n",
            workers,
            ops_per_sec,
            if i + 1 == scaling.len() { "" } else { "," }
        ));
    }
    out.push_str("    }\n");
    out.push_str("  },\n");
    out.push_str("  \"sweep\": [\n");
    for (i, point) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"mutation_ratio\": {},\n",
            point.mutation_ratio
        ));
        for (j, m) in point.results.iter().enumerate() {
            out.push_str(&format!("      \"{}\": {{\n", m.mode));
            out.push_str(&format!("        \"ops_per_sec\": {:.1},\n", m.ops_per_sec));
            out.push_str(&format!(
                "        \"mutations\": {},\n",
                m.service.mutations
            ));
            out.push_str(&format!("        \"flushes\": {},\n", m.service.flushes));
            out.push_str("        \"cache\": {\n");
            out.push_str(&format!("          \"hits\": {},\n", m.cache.hits));
            out.push_str(&format!("          \"misses\": {},\n", m.cache.misses));
            out.push_str(&format!(
                "          \"query_refreshes\": {},\n",
                m.cache.query_refreshes
            ));
            out.push_str(&format!(
                "          \"atom_refreshes\": {},\n",
                m.cache.atom_refreshes
            ));
            out.push_str(&format!(
                "          \"invalidations\": {},\n",
                m.cache.invalidations
            ));
            out.push_str(&format!(
                "          \"batch_dedup_hits\": {},\n",
                m.cache.batch_dedup_hits
            ));
            out.push_str(&format!("          \"entries\": {}\n", m.cache.entries));
            out.push_str("        },\n");
            // The worker-plane counters: how the pool executed this
            // strategy's labeling and decision fan-outs.
            let p = &m.service.parallel;
            out.push_str("        \"parallel\": {\n");
            out.push_str(&format!("          \"workers\": {},\n", p.workers));
            out.push_str(&format!(
                "          \"segments_labeled\": {},\n",
                p.segments_labeled
            ));
            let per_worker: Vec<String> = p.tasks_per_worker.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "          \"tasks_per_worker\": [{}],\n",
                per_worker.join(", ")
            ));
            out.push_str(&format!(
                "          \"tasks_inline\": {},\n",
                p.tasks_inline
            ));
            out.push_str(&format!("          \"steals\": {},\n", p.steals));
            out.push_str(&format!(
                "          \"queue_full_stalls\": {},\n",
                p.queue_full_stalls
            ));
            out.push_str(&format!(
                "          \"queue_empty_stalls\": {},\n",
                p.queue_empty_stalls
            ));
            out.push_str(&format!(
                "          \"snapshots_reclaimed\": {}\n",
                p.snapshots_reclaimed
            ));
            out.push_str("        }\n");
            out.push_str(if j + 1 == point.results.len() {
                "      }\n"
            } else {
                "      },\n"
            });
        }
        out.push_str(if i + 1 == points.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
