//! Figure 6, machine-readable: policy-checker throughput at every store
//! generation.
//!
//! Measures the time to push a batch of disclosure labels through the
//! multi-principal policy checker, round-robined over the principals, for
//! the paper's grid — {1-way, 5-way partitions} × {1K, 50K, 1M principals}
//! × {5, 25, 50 max elements per partition} — and writes the labels/second
//! trajectory to `BENCH_fig6.json` (or the path given as the first
//! argument).  Four series per grid point:
//!
//! * `seed_store` — the seed revision's uncompiled, uninterned store
//!   (cloned `SecurityPolicy` per principal, hash lookups per atom).
//!   Measured up to 50K principals; at 1M the seed representation is the
//!   several-hundred-megabyte configuration the seed hid behind
//!   `FDC_FIG6_FULL`, so the point is reported as `null`.
//! * `interned` — the compiled/interned store, unpacked labels.
//! * `interned_packed` — the same store on the packed 64-bit path.
//! * `sharded_parallel_x{N}` — `ShardedPolicyStore::submit_batch_on`
//!   against an explicit persistent `WorkerPool` sized to the shard count
//!   (queue pushes, not thread spawns — the same single execution plane the
//!   service runs on), swept over shard counts (1, 2, 4, 8 plus the host's
//!   available parallelism) so the trajectory records how throughput scales
//!   with threads.  `x1` is the inline-only pool (no threads at all).
//!
//! ```text
//! cargo run --release -p fdc-bench --bin fig6_json            # full run
//! FDC_BENCH_SMOKE=1 cargo run -p fdc-bench --bin fig6_json    # CI smoke
//! ```
//!
//! The smoke mode shrinks the grid and the repeat count so CI can validate
//! the measurement path in seconds; the JSON layout is identical.

use std::time::Instant;

use fdc_bench::{
    fig6_principal_counts, policy_workload, seed_policy_store, sharded_policy_store,
    FIG6_TEMPLATE_POOL,
};
use fdc_core::{PackedLabel, WorkerPool};
use fdc_policy::PrincipalId;

/// Principal counts at which the seed store is still reasonable to build.
const SEED_STORE_LIMIT: usize = 50_000;

/// One store generation's measurement at one grid point.
struct Measurement {
    name: String,
    labels_per_sec: Option<f64>,
}

/// All measurements at one grid point.
struct SweepPoint {
    num_principals: usize,
    max_partitions: usize,
    max_elements: usize,
    unique_policies: usize,
    state_bytes_per_principal: f64,
    results: Vec<Measurement>,
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| a != "--smoke")
        .unwrap_or_else(|| "BENCH_fig6.json".to_owned());
    let smoke = std::env::var("FDC_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke");

    let (principal_counts, element_sweep, label_batch, repeats): (
        Vec<usize>,
        &[usize],
        usize,
        usize,
    ) = if smoke {
        (vec![1_000, 10_000], &[5, 25], 2_000, 1)
    } else {
        (fig6_principal_counts(), &[5, 25, 50], 20_000, 3)
    };
    let host_threads = available_threads();
    let shard_counts = shard_count_sweep(host_threads, smoke);

    println!(
        "fig6_json: label_batch={label_batch} repeats={repeats} host_threads={host_threads} \
         shard_counts={shard_counts:?} template_pool={FIG6_TEMPLATE_POOL} smoke={smoke}"
    );
    let series_names: Vec<String> = ["seed_store", "interned", "interned_packed"]
        .into_iter()
        .map(str::to_owned)
        .chain(
            shard_counts
                .iter()
                .map(|n| format!("sharded_parallel_x{n}")),
        )
        .collect();
    let header: Vec<String> = series_names
        .iter()
        .map(|name| format!("{name:>16}"))
        .collect();
    println!(
        "{:>10} {:>5} {:>9} | {}",
        "principals",
        "way",
        "elements",
        header.join(" | ")
    );

    let mut points = Vec::new();
    for &num_principals in &principal_counts {
        for &max_partitions in &[1usize, 5] {
            for &max_elements in element_sweep {
                let point = measure_point(
                    num_principals,
                    max_partitions,
                    max_elements,
                    label_batch,
                    repeats,
                    &shard_counts,
                );
                let cells: Vec<String> = series_names
                    .iter()
                    .map(|name| format!("{:>16}", cell(&point, name)))
                    .collect();
                println!(
                    "{:>10} {:>5} {:>9} | {}",
                    num_principals,
                    max_partitions,
                    max_elements,
                    cells.join(" | ")
                );
                points.push(point);
            }
        }
    }

    let packed_speedups = speedups_at(&points, SEED_STORE_LIMIT, "interned_packed");
    let unpacked_speedups = speedups_at(&points, SEED_STORE_LIMIT, "interned");
    let speedup_packed = min_of(&packed_speedups);
    let speedup_unpacked = min_of(&unpacked_speedups);
    let mean_packed = mean_of(&packed_speedups);
    let mean_unpacked = mean_of(&unpacked_speedups);
    println!(
        "\ninterned vs seed store at 50K principals: \
         worst cell {speedup_unpacked:.1}x unpacked / {speedup_packed:.1}x packed, \
         mean {mean_unpacked:.1}x unpacked / {mean_packed:.1}x packed"
    );

    let json = render_json(
        &points,
        label_batch,
        host_threads,
        &shard_counts,
        smoke,
        [speedup_unpacked, speedup_packed, mean_unpacked, mean_packed],
    );
    std::fs::write(&out_path, json).expect("failed to write the benchmark JSON");
    println!("wrote {out_path}");
}

/// Minimum wall-clock length of one timed sample: the routine (one pass
/// over the label batch) is repeated inside the timing window until it
/// covers at least this long, so sub-millisecond passes do not drown in
/// scheduler noise.
const MIN_SAMPLE_SECS: f64 = 0.005;

/// Measures every store generation at one grid point.
fn measure_point(
    num_principals: usize,
    max_partitions: usize,
    max_elements: usize,
    label_batch: usize,
    repeats: usize,
    shard_counts: &[usize],
) -> SweepPoint {
    let workload = policy_workload(num_principals, max_partitions, max_elements, label_batch);
    let labels = &workload.labels;
    let packed = &workload.packed;
    // Round-robin principal assignment, fixed outside the timed loops: a
    // serving system receives (principal, label) pairs, it does not compute
    // a modulo per request.
    let principals: Vec<PrincipalId> = (0..labels.len())
        .map(|i| PrincipalId((i % num_principals) as u32))
        .collect();
    // One contiguous buffer for the packed batch (as a serving system's
    // request arena would be), sliced per label.
    let packed_flat: Vec<PackedLabel> = packed.iter().flatten().copied().collect();
    let packed_slices: Vec<&[PackedLabel]> = {
        let mut start = 0usize;
        packed
            .iter()
            .map(|label| {
                let slice = &packed_flat[start..start + label.len()];
                start += label.len();
                slice
            })
            .collect()
    };
    let batch: Vec<(PrincipalId, &[PackedLabel])> = packed_slices
        .iter()
        .zip(&principals)
        .map(|(label, principal)| (*principal, *label))
        .collect();

    let mut results = Vec::new();

    // Seed store: only up to the limit (its per-principal policy clones are
    // exactly the memory blow-up the rebuild removes).
    let seed_qps = (num_principals <= SEED_STORE_LIMIT).then(|| {
        let mut seed = seed_policy_store(num_principals, max_partitions, max_elements);
        best_qps(repeats, labels.len(), || {
            for (principal, label) in principals.iter().zip(labels) {
                std::hint::black_box(seed.submit(*principal, label));
            }
        })
    });
    results.push(Measurement {
        name: "seed_store".to_owned(),
        labels_per_sec: seed_qps,
    });

    let mut store = workload.store.clone();
    results.push(Measurement {
        name: "interned".to_owned(),
        labels_per_sec: Some(best_qps(repeats, labels.len(), || {
            for (principal, label) in principals.iter().zip(labels) {
                std::hint::black_box(store.submit(*principal, label));
            }
        })),
    });

    let mut packed_store = workload.store.clone();
    results.push(Measurement {
        name: "interned_packed".to_owned(),
        labels_per_sec: Some(best_qps(repeats, labels.len(), || {
            for (principal, label) in principals.iter().zip(&packed_slices) {
                std::hint::black_box(packed_store.submit_packed(*principal, label));
            }
        })),
    });

    for &num_shards in shard_counts {
        let mut sharded =
            sharded_policy_store(num_principals, max_partitions, max_elements, num_shards);
        // One explicit pool per series, sized to the shard count — the same
        // caller-owned execution plane the service uses (x1 builds an
        // inline-only pool: no threads, pure dispatch overhead baseline).
        let pool = WorkerPool::new(num_shards);
        results.push(Measurement {
            name: format!("sharded_parallel_x{num_shards}"),
            labels_per_sec: Some(best_qps(repeats, labels.len(), || {
                std::hint::black_box(sharded.submit_batch_on(&pool, &batch));
            })),
        });
    }

    SweepPoint {
        num_principals,
        max_partitions,
        max_elements,
        unique_policies: workload.store.unique_policies(),
        state_bytes_per_principal: workload.store.state_bytes() as f64
            / workload.store.len().max(1) as f64,
        results,
    }
}

/// Runs the routine `repeats` times — stretching each timed sample to at
/// least [`MIN_SAMPLE_SECS`] by repeating the routine inside the window —
/// and reports the best labels/second.
fn best_qps(repeats: usize, labels: usize, mut routine: impl FnMut()) -> f64 {
    // Calibrate: how many passes does one sample need?
    let start = Instant::now();
    routine();
    let one_pass = start.elapsed().as_secs_f64().max(1e-9);
    let passes = ((MIN_SAMPLE_SECS / one_pass).ceil() as usize).clamp(1, 10_000);

    let mut best = one_pass;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        for _ in 0..passes {
            routine();
        }
        best = best.min(start.elapsed().as_secs_f64() / passes as f64);
    }
    labels as f64 / best.max(f64::MIN_POSITIVE)
}

/// A table cell for one series of a point.
fn cell(point: &SweepPoint, name: &str) -> String {
    match series(point, name) {
        Some(qps) => format!("{qps:.0}"),
        None => "-".to_owned(),
    }
}

fn series(point: &SweepPoint, name: &str) -> Option<f64> {
    point
        .results
        .iter()
        .find(|m| m.name == name)
        .and_then(|m| m.labels_per_sec)
}

/// `numerator`'s per-cell speedups over the seed store across the grid
/// cells measured at exactly `principals` principals (falling back to the
/// largest measured count below it, so smoke grids still report numbers).
fn speedups_at(points: &[SweepPoint], principals: usize, numerator: &str) -> Vec<f64> {
    let at = points
        .iter()
        .filter(|p| p.num_principals <= principals && series(p, "seed_store").is_some())
        .map(|p| p.num_principals)
        .max()
        .unwrap_or(principals);
    points
        .iter()
        .filter(|p| p.num_principals == at)
        .filter_map(|p| match (series(p, numerator), series(p, "seed_store")) {
            (Some(num), Some(den)) if den > 0.0 => Some(num / den),
            _ => None,
        })
        .collect()
}

/// The conservative worst-cell summary of [`speedups_at`].
fn min_of(speedups: &[f64]) -> f64 {
    speedups.iter().copied().fold(f64::INFINITY, f64::min)
}

/// The mean-cell summary of [`speedups_at`].
fn mean_of(speedups: &[f64]) -> f64 {
    if speedups.is_empty() {
        f64::INFINITY
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    }
}

/// Number of worker threads the host can actually run at once.
fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The shard counts swept for the `sharded_parallel_x{N}` series: powers of
/// two up to 8, plus the host's own parallelism, deduplicated and sorted.
/// The x1 point runs on an inline-only pool (no worker threads), so the
/// series doubles as a measurement of the pool dispatch overhead.
fn shard_count_sweep(host_threads: usize, smoke: bool) -> Vec<usize> {
    let mut counts: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };
    counts.push(host_threads);
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Renders the trajectory as JSON by hand (the workspace is offline, so no
/// serde; the structure is flat enough that manual rendering stays simple).
fn render_json(
    points: &[SweepPoint],
    label_batch: usize,
    host_threads: usize,
    shard_counts: &[usize],
    smoke: bool,
    speedups: [f64; 4],
) -> String {
    let [speedup_unpacked, speedup_packed, mean_unpacked, mean_packed] = speedups;
    let shard_list = shard_counts
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig6_policy_throughput\",\n");
    out.push_str("  \"unit\": \"labels_per_second\",\n");
    out.push_str(&format!("  \"label_batch\": {label_batch},\n"));
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!("  \"shard_counts\": [{shard_list}],\n"));
    out.push_str(&format!("  \"template_pool\": {FIG6_TEMPLATE_POOL},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    let finite = |v: f64| {
        if v.is_finite() {
            format!("{v:.2}")
        } else {
            "null".to_owned()
        }
    };
    out.push_str(&format!(
        "  \"min_speedup_interned_vs_seed\": {},\n",
        finite(speedup_unpacked)
    ));
    out.push_str(&format!(
        "  \"min_speedup_interned_packed_vs_seed\": {},\n",
        finite(speedup_packed)
    ));
    out.push_str(&format!(
        "  \"mean_speedup_interned_vs_seed\": {},\n",
        finite(mean_unpacked)
    ));
    out.push_str(&format!(
        "  \"mean_speedup_interned_packed_vs_seed\": {},\n",
        finite(mean_packed)
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, point) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"num_principals\": {},\n",
            point.num_principals
        ));
        out.push_str(&format!(
            "      \"max_partitions\": {},\n",
            point.max_partitions
        ));
        out.push_str(&format!(
            "      \"max_elements\": {},\n",
            point.max_elements
        ));
        out.push_str(&format!(
            "      \"unique_policies\": {},\n",
            point.unique_policies
        ));
        out.push_str(&format!(
            "      \"state_bytes_per_principal\": {:.1},\n",
            point.state_bytes_per_principal
        ));
        out.push_str("      \"labels_per_sec\": {\n");
        for (j, m) in point.results.iter().enumerate() {
            let value = match m.labels_per_sec {
                Some(qps) => format!("{qps:.1}"),
                None => "null".to_owned(),
            };
            out.push_str(&format!(
                "        \"{}\": {}{}\n",
                m.name,
                value,
                if j + 1 == point.results.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("      }\n");
        out.push_str(if i + 1 == points.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
