//! Figure 5, machine-readable: side-by-side throughput of every labeler.
//!
//! Measures the labeler variants — baseline, hash-partitioned, bit-vector,
//! canonical-form cached (sequential and parallel batch), and the
//! **interned** serving path (pre-interned dense `QueryId`s straight into
//! the sharded slot cache: no parsing, no canonical hashing, no label
//! clone) — on the Figure 5 workload at `BATCH_SIZE` queries per batch, for
//! each of the paper's max-atoms settings, and writes the queries/second
//! trajectory to `BENCH_fig5.json` (or the path given as the first
//! argument).
//!
//! ```text
//! cargo run --release -p fdc-bench --bin fig5_json            # full run
//! FDC_BENCH_SMOKE=1 cargo run -p fdc-bench --bin fig5_json    # CI smoke
//! ```
//!
//! The smoke mode shrinks the sweep and the repeat count so CI can validate
//! the measurement path in seconds; the JSON layout is identical.

use std::time::Instant;

use fdc_bench::{labeling_workload, LabelingWorkload, BATCH_SIZE};
use fdc_core::QueryLabeler;

/// One labeler's measurement at one max-atoms setting.
struct Measurement {
    name: &'static str,
    queries_per_sec: f64,
}

/// All measurements at one max-atoms setting.
struct SweepPoint {
    max_atoms: usize,
    results: Vec<Measurement>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| a != "--smoke")
        .unwrap_or_else(|| "BENCH_fig5.json".to_owned());
    let smoke = std::env::var("FDC_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke");

    let (sweep, repeats): (&[usize], usize) = if smoke {
        (&[3, 6], 1)
    } else {
        (&[3, 6, 9, 12, 15], 3)
    };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("fig5_json: batch={BATCH_SIZE} repeats={repeats} threads={threads} smoke={smoke}");
    println!(
        "{:>9} | {:>12} | {:>12} | {:>12} | {:>12} | {:>14} | {:>12}",
        "max_atoms", "baseline", "hashing", "bitvec", "cached_seq", "cached_par", "interned"
    );

    let mut points = Vec::new();
    for &max_atoms in sweep {
        let workload = labeling_workload(max_atoms, BATCH_SIZE);
        let results = measure_point(&workload, repeats);
        println!(
            "{:>9} | {:>12.0} | {:>12.0} | {:>12.0} | {:>12.0} | {:>14.0} | {:>12.0}",
            max_atoms,
            results[0].queries_per_sec,
            results[1].queries_per_sec,
            results[2].queries_per_sec,
            results[3].queries_per_sec,
            results[4].queries_per_sec,
            results[5].queries_per_sec,
        );
        points.push(SweepPoint { max_atoms, results });
    }

    let speedup = overall_speedup(&points, "cached_parallel_batch", "baseline");
    println!("\ncached parallel batch vs baseline: {speedup:.1}x (worst point across the sweep)");
    let interned_speedup = overall_speedup(&points, "interned", "cached_sequential");
    println!(
        "interned vs cached (QueryKey-free slot lookup): {interned_speedup:.1}x \
         (worst point across the sweep)"
    );
    // The interned plane removes the canonical hash and the label clone from
    // every warm lookup; if it ever stops beating the cached path, the
    // representation regressed.  The smoke run enforces this in CI.
    if smoke {
        assert!(
            interned_speedup > 1.0,
            "interned series must beat the cached baseline (got {interned_speedup:.2}x)"
        );
    }

    let json = render_json(&points, threads, smoke, speedup, interned_speedup);
    std::fs::write(&out_path, json).expect("failed to write the benchmark JSON");
    println!("wrote {out_path}");
}

/// Measures every labeler on one workload; order matches the table header.
fn measure_point(workload: &LabelingWorkload, repeats: usize) -> Vec<Measurement> {
    let eco = &workload.ecosystem;
    let queries = &workload.queries;
    let interned = &workload.interned;
    // Warm the canonical-form cache so the cached series measures the
    // steady state of a long-running server rather than a cold start.
    eco.cached.label_queries_batch(queries);
    vec![
        Measurement {
            name: "baseline",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.baseline.label_queries(queries));
            }),
        },
        Measurement {
            name: "hashing_only",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.hashed.label_queries(queries));
            }),
        },
        Measurement {
            name: "bitvectors_hashing",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.bitvec.label_queries(queries));
            }),
        },
        Measurement {
            name: "cached_sequential",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.cached.label_queries(queries));
            }),
        },
        Measurement {
            name: "cached_parallel_batch",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.cached.label_queries_batch(queries));
            }),
        },
        // The interned serving path: the batch was interned once at setup
        // (dense `QueryId`s), so each lookup is a lock-striped slot index
        // and an in-place lattice fold — no canonical hashing at all.
        Measurement {
            name: "interned",
            queries_per_sec: best_qps(repeats, interned.len(), || {
                std::hint::black_box(eco.cached.label_queries_interned(interned));
            }),
        },
    ]
}

/// Runs the routine `repeats` times and reports the best queries/second.
fn best_qps(repeats: usize, queries: usize, mut routine: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        routine();
        best = best.min(start.elapsed().as_secs_f64());
    }
    queries as f64 / best.max(f64::MIN_POSITIVE)
}

/// The minimum, across sweep points, of `numerator`'s speedup over
/// `denominator` — a conservative single-number summary.
fn overall_speedup(points: &[SweepPoint], numerator: &str, denominator: &str) -> f64 {
    points
        .iter()
        .map(|p| {
            let num = series(p, numerator);
            let den = series(p, denominator);
            if den > 0.0 {
                num / den
            } else {
                f64::INFINITY
            }
        })
        .fold(f64::INFINITY, f64::min)
}

fn series(point: &SweepPoint, name: &str) -> f64 {
    point
        .results
        .iter()
        .find(|m| m.name == name)
        .map_or(0.0, |m| m.queries_per_sec)
}

/// Renders the trajectory as JSON by hand (the workspace is offline, so no
/// serde; the structure is flat enough that manual rendering stays simple).
fn render_json(
    points: &[SweepPoint],
    threads: usize,
    smoke: bool,
    speedup: f64,
    interned_speedup: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig5_labeler_throughput\",\n");
    out.push_str("  \"unit\": \"queries_per_second\",\n");
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!(
        "  \"min_speedup_cached_parallel_vs_baseline\": {speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"min_speedup_interned_vs_cached\": {interned_speedup:.2},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, point) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"max_atoms\": {},\n", point.max_atoms));
        out.push_str("      \"queries_per_sec\": {\n");
        for (j, m) in point.results.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {:.1}{}\n",
                m.name,
                m.queries_per_sec,
                if j + 1 == point.results.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("      }\n");
        out.push_str(if i + 1 == points.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
