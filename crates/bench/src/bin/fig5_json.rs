//! Figure 5, machine-readable: side-by-side throughput of every labeler.
//!
//! Measures the labeler variants — baseline, hash-partitioned, bit-vector,
//! canonical-form cached (sequential and parallel batch), and the
//! **interned** serving path (pre-interned dense `QueryId`s straight into
//! the sharded slot cache: no parsing, no canonical hashing, no label
//! clone) — on the Figure 5 workload at `BATCH_SIZE` queries per batch, for
//! each of the paper's max-atoms settings, and writes the queries/second
//! trajectory to `BENCH_fig5.json` (or the path given as the first
//! argument).
//!
//! ```text
//! cargo run --release -p fdc-bench --bin fig5_json            # full run
//! FDC_BENCH_SMOKE=1 cargo run -p fdc-bench --bin fig5_json    # CI smoke
//! ```
//!
//! The smoke mode shrinks the sweep and the repeat count so CI can validate
//! the measurement path in seconds; the JSON layout is identical.

use std::time::Instant;

use fdc_bench::{labeling_workload, LabelingWorkload, BATCH_SIZE};
use fdc_core::QueryLabeler;
use fdc_cq::containment::{interned_contained_in, interned_contained_in_generic};
use fdc_cq::{structure, QueryId, QueryRef};

/// One labeler's measurement at one max-atoms setting.
struct Measurement {
    name: &'static str,
    queries_per_sec: f64,
}

/// All measurements at one max-atoms setting.
struct SweepPoint {
    max_atoms: usize,
    results: Vec<Measurement>,
}

/// The structural fast-path section at one high max-atoms setting: cold
/// labeling throughput with the semi-join dispatch on vs. forced off, and
/// the containment microkernel (all ordered pairs over the first
/// `pairs_k` distinct shapes) through the dispatcher vs. the generic
/// backtracking search.
struct HighAtomsPoint {
    max_atoms: usize,
    interned_structural: f64,
    interned_generic: f64,
    containment_structural: f64,
    containment_generic: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| a != "--smoke")
        .unwrap_or_else(|| "BENCH_fig5.json".to_owned());
    let smoke = std::env::var("FDC_BENCH_SMOKE").is_ok_and(|v| v == "1")
        || std::env::args().any(|a| a == "--smoke");

    let (sweep, repeats): (&[usize], usize) = if smoke {
        (&[3, 6], 1)
    } else {
        (&[3, 6, 9, 12, 15], 3)
    };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("fig5_json: batch={BATCH_SIZE} repeats={repeats} threads={threads} smoke={smoke}");
    println!(
        "{:>9} | {:>12} | {:>12} | {:>12} | {:>12} | {:>14} | {:>12}",
        "max_atoms", "baseline", "hashing", "bitvec", "cached_seq", "cached_par", "interned"
    );

    let mut points = Vec::new();
    // Whole-query labelings answered by batch-level dedup across the sweep:
    // the stress workload repeats shapes within a batch, so the batch entry
    // points label each distinct canonical id once and serve the repeats
    // from the batch-local result.
    let mut batch_dedup_hits = 0u64;
    for &max_atoms in sweep {
        let workload = labeling_workload(max_atoms, BATCH_SIZE);
        let results = measure_point(&workload, repeats);
        batch_dedup_hits += workload.ecosystem.cached.stats().batch_dedup_hits;
        println!(
            "{:>9} | {:>12.0} | {:>12.0} | {:>12.0} | {:>12.0} | {:>14.0} | {:>12.0}",
            max_atoms,
            results[0].queries_per_sec,
            results[1].queries_per_sec,
            results[2].queries_per_sec,
            results[3].queries_per_sec,
            results[4].queries_per_sec,
            results[5].queries_per_sec,
        );
        points.push(SweepPoint { max_atoms, results });
    }

    let speedup = overall_speedup(&points, "cached_parallel_batch", "baseline");
    println!("\ncached parallel batch vs baseline: {speedup:.1}x (worst point across the sweep)");
    let interned_speedup = overall_speedup(&points, "interned", "cached_sequential");
    println!(
        "interned vs cached (QueryKey-free slot lookup): {interned_speedup:.1}x \
         (worst point across the sweep)"
    );
    // The interned plane removes the canonical hash and the label clone from
    // every warm lookup; if it ever stops beating the cached path, the
    // representation regressed.  The smoke run enforces this in CI.
    if smoke {
        assert!(
            interned_speedup > 1.0,
            "interned series must beat the cached baseline (got {interned_speedup:.2}x)"
        );
    }

    // Structural fast-path section: the paper's sweep stops at 15 atoms,
    // but the semi-join dispatch is aimed exactly at the atom counts above
    // that ceiling, so the high-atoms series extends the axis to 20 and 28.
    let (high_sweep, high_repeats, pairs_k): (&[usize], usize, usize) = if smoke {
        (&[20], 1, 24)
    } else {
        (&[20, 28], 3, 40)
    };
    println!("\nhigh atoms (structural dispatch): pairs_k={pairs_k} repeats={high_repeats}");
    println!(
        "{:>9} | {:>16} | {:>16} | {:>18} | {:>18}",
        "max_atoms", "label_structural", "label_generic", "contain_structural", "contain_generic"
    );
    let mut high_points = Vec::new();
    let mut acyclic_queries = 0usize;
    for &max_atoms in high_sweep {
        let (point, acyclic) = measure_high_point(max_atoms, high_repeats, pairs_k);
        println!(
            "{:>9} | {:>16.0} | {:>16.0} | {:>18.0} | {:>18.0}",
            max_atoms,
            point.interned_structural,
            point.interned_generic,
            point.containment_structural,
            point.containment_generic,
        );
        acyclic_queries += acyclic;
        high_points.push(point);
    }
    let structural_speedup = high_points
        .iter()
        .map(|p| {
            if p.containment_generic > 0.0 {
                p.containment_structural / p.containment_generic
            } else {
                f64::INFINITY
            }
        })
        .fold(f64::INFINITY, f64::min);
    println!(
        "containment via join-tree semi-joins vs generic backtracking: \
         {structural_speedup:.1}x (worst point)"
    );
    // One deliberately cyclic shape: GYO gets stuck on the triangle, so the
    // dispatcher must take the backtracking fallback — which both proves
    // the conservative path end to end and guarantees the fallback counter
    // is non-zero for the smoke assertions below.
    exercise_cyclic_fallback();
    let counters = structure::counters();
    println!(
        "classification counters: acyclic_queries={acyclic_queries} \
         structural_checks={} backtrack_fallbacks={}",
        counters.structural_checks, counters.backtrack_fallbacks
    );
    if smoke {
        assert!(
            structural_speedup >= 1.0,
            "structural containment must not lose to generic backtracking \
             (got {structural_speedup:.2}x)"
        );
        assert!(
            acyclic_queries > 0,
            "the workload must classify acyclic shapes"
        );
        assert!(
            counters.structural_checks > 0,
            "acyclic shapes must route through the semi-join fast path"
        );
        assert!(
            counters.backtrack_fallbacks > 0,
            "cyclic shapes must route through the backtracking fallback"
        );
    }

    let high = HighAtomsSection {
        points: high_points,
        pairs_k,
        structural_speedup,
        acyclic_queries,
        counters,
    };
    let json = render_json(
        &points,
        threads,
        smoke,
        speedup,
        interned_speedup,
        batch_dedup_hits,
        &high,
    );
    std::fs::write(&out_path, json).expect("failed to write the benchmark JSON");
    println!("wrote {out_path}");
}

/// Everything the high-atoms structural section contributes to the JSON.
struct HighAtomsSection {
    points: Vec<HighAtomsPoint>,
    pairs_k: usize,
    structural_speedup: f64,
    acyclic_queries: usize,
    counters: structure::StructureCounters,
}

/// Measures the structural fast path at one high max-atoms setting.
///
/// Cold labeling rebuilds the workload for every repeat of every series so
/// each timed run starts from an empty cache (the structural win is in the
/// cold pipeline; warm lookups never run a homomorphism).  The containment
/// kernel takes the first `pairs_k` distinct shapes of one workload and
/// times all ordered containment pairs — through the dispatcher (every
/// workload shape is acyclic, so this is the semi-join path) and through
/// the generic backtracking search.  Returns the point plus the number of
/// acyclic shapes the kernel workload's interner classified.
fn measure_high_point(max_atoms: usize, repeats: usize, pairs_k: usize) -> (HighAtomsPoint, usize) {
    let mut label_structural = f64::INFINITY;
    let mut label_generic = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let workload = labeling_workload(max_atoms, BATCH_SIZE);
        let start = Instant::now();
        std::hint::black_box(
            workload
                .ecosystem
                .cached
                .label_queries_interned(&workload.interned),
        );
        label_structural = label_structural.min(start.elapsed().as_secs_f64());

        let workload = labeling_workload(max_atoms, BATCH_SIZE);
        structure::set_dispatch_enabled(false);
        let start = Instant::now();
        std::hint::black_box(
            workload
                .ecosystem
                .cached
                .label_queries_interned(&workload.interned),
        );
        label_generic = label_generic.min(start.elapsed().as_secs_f64());
        structure::set_dispatch_enabled(true);
    }

    let (interner, ids) = tree_pattern_pool(pairs_k, max_atoms, 0x5713 + max_atoms as u64);
    let refs: Vec<QueryRef<'_>> = ids.iter().map(|&id| interner.resolve(id)).collect();
    let pairs = refs.len() * refs.len();
    let mut contain_structural = f64::INFINITY;
    let mut contain_generic = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        for &a in &refs {
            for &b in &refs {
                std::hint::black_box(interned_contained_in(a, b));
            }
        }
        contain_structural = contain_structural.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for &a in &refs {
            for &b in &refs {
                std::hint::black_box(interned_contained_in_generic(a, b));
            }
        }
        contain_generic = contain_generic.min(start.elapsed().as_secs_f64());
    }
    let acyclic = interner.num_acyclic_queries();
    let point = HighAtomsPoint {
        max_atoms,
        interned_structural: BATCH_SIZE as f64 / label_structural.max(f64::MIN_POSITIVE),
        interned_generic: BATCH_SIZE as f64 / label_generic.max(f64::MIN_POSITIVE),
        containment_structural: pairs as f64 / contain_structural.max(f64::MIN_POSITIVE),
        containment_generic: pairs as f64 / contain_generic.max(f64::MIN_POSITIVE),
    };
    (point, acyclic)
}

/// Builds the containment kernel's query pool: `count` deterministic
/// **broom patterns** over a single ternary `Edge` relation — a
/// distinguished root `v0` with `max_atoms / 3` independent depth-3 chains
/// hanging off it, so every query has roughly `max_atoms` atoms and is a
/// tree (hence acyclic).
///
/// Chain `c` is `Edge(v0, x_c, 'c0'), Edge(x_c, y_c, 'c<t2>'),
/// Edge(y_c, z_c, 'c<t3>')` with `t2, t3` drawn from two constants, so
/// each chain carries one of four *signatures* `(t2, t3)`.  A chain of the
/// source query embeds exactly into the target chains that share its
/// signature, and the mismatch is only discovered one or two hops below
/// the root.  That is the regime the semi-join fast path exists for: when
/// a late chain's signature is missing from the target, chronological
/// backtracking re-enumerates every placement of the earlier chains
/// (a product of their per-chain candidate counts) before concluding
/// failure, while the join-tree pass retains each ear once and stays
/// linear in the candidate lists.  (The stress workload's queries spread
/// their atoms over many relations, so random containment pairs there
/// fail on the first unmatched relation and measure nothing but call
/// overhead.)
fn tree_pattern_pool(
    count: usize,
    max_atoms: usize,
    seed: u64,
) -> (fdc_cq::QueryInterner, Vec<QueryId>) {
    use std::fmt::Write as _;
    let mut catalog = fdc_cq::Catalog::new();
    catalog
        .add_relation("Edge", &["src", "dst", "tag"])
        .expect("fresh catalog accepts the relation");
    // Splitmix-style LCG: deterministic across runs and hosts.
    let mut state = seed;
    let mut next = move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    };
    let mut interner = fdc_cq::QueryInterner::new();
    let mut ids = Vec::with_capacity(count);
    let chains = (max_atoms / 3).max(1);
    for _ in 0..count {
        let mut text = String::from("Q(v0) :- ");
        for c in 0..chains {
            if c > 0 {
                text.push_str(", ");
            }
            // Skew the leaf tag: 'c1' leaves are rare, so a source chain
            // ending in 'c1' frequently has no matching target chain (a
            // failing pair), while the common 'c0'-leaf chains keep every
            // preceding chain's placement count high — exactly the
            // re-enumeration the backtracking search pays for and the
            // join-tree pass avoids.  Few chains shrink that placement
            // product, so below eight chains the mid tag is pinned too
            // (every chain placement stays live until the leaf); with
            // eight or more chains the product explodes on its own, so
            // both tags go uniform there to keep the generic series'
            // runtime bounded.
            let (t2, t3) = if chains < 8 {
                (0, usize::from(next(8) == 0))
            } else {
                (next(2), next(2))
            };
            write!(
                text,
                "Edge(v0, x{c}, 'c0'), Edge(x{c}, y{c}, 'c{t2}'), Edge(y{c}, z{c}, 'c{t3}')"
            )
            .expect("string write");
        }
        let query = fdc_cq::parser::parse_query(&catalog, &text).expect("generated broom parses");
        ids.push(interner.intern(&query));
    }
    (interner, ids)
}

/// Runs one containment over a deliberately cyclic shape (the triangle):
/// GYO reduction finds no ear, so the dispatcher takes the backtracking
/// fallback and ticks `backtrack_fallbacks`.
fn exercise_cyclic_fallback() {
    let mut catalog = fdc_cq::Catalog::new();
    catalog
        .add_relation("Edge", &["src", "dst"])
        .expect("fresh catalog accepts the relation");
    let triangle =
        fdc_cq::parser::parse_query(&catalog, "Q() :- Edge(x, y), Edge(y, z), Edge(z, x)")
            .expect("the triangle parses");
    let mut interner = fdc_cq::QueryInterner::new();
    let id = interner.intern(&triangle);
    assert_eq!(
        interner.shape_class(id),
        structure::ShapeClass::Cyclic,
        "the triangle must classify as cyclic"
    );
    std::hint::black_box(interned_contained_in(
        interner.resolve(id),
        interner.resolve(id),
    ));
}

/// Measures every labeler on one workload; order matches the table header.
fn measure_point(workload: &LabelingWorkload, repeats: usize) -> Vec<Measurement> {
    let eco = &workload.ecosystem;
    let queries = &workload.queries;
    let interned = &workload.interned;
    // Warm the canonical-form cache so the cached series measures the
    // steady state of a long-running server rather than a cold start.
    eco.cached.label_queries_batch(queries);
    vec![
        Measurement {
            name: "baseline",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.baseline.label_queries(queries));
            }),
        },
        Measurement {
            name: "hashing_only",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.hashed.label_queries(queries));
            }),
        },
        Measurement {
            name: "bitvectors_hashing",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.bitvec.label_queries(queries));
            }),
        },
        Measurement {
            name: "cached_sequential",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.cached.label_queries(queries));
            }),
        },
        Measurement {
            name: "cached_parallel_batch",
            queries_per_sec: best_qps(repeats, queries.len(), || {
                std::hint::black_box(eco.cached.label_queries_batch(queries));
            }),
        },
        // The interned serving path: the batch was interned once at setup
        // (dense `QueryId`s), so each lookup is a lock-striped slot index
        // and an in-place lattice fold — no canonical hashing at all.
        Measurement {
            name: "interned",
            queries_per_sec: best_qps(repeats, interned.len(), || {
                std::hint::black_box(eco.cached.label_queries_interned(interned));
            }),
        },
    ]
}

/// Runs the routine `repeats` times and reports the best queries/second.
fn best_qps(repeats: usize, queries: usize, mut routine: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        routine();
        best = best.min(start.elapsed().as_secs_f64());
    }
    queries as f64 / best.max(f64::MIN_POSITIVE)
}

/// The minimum, across sweep points, of `numerator`'s speedup over
/// `denominator` — a conservative single-number summary.
fn overall_speedup(points: &[SweepPoint], numerator: &str, denominator: &str) -> f64 {
    points
        .iter()
        .map(|p| {
            let num = series(p, numerator);
            let den = series(p, denominator);
            if den > 0.0 {
                num / den
            } else {
                f64::INFINITY
            }
        })
        .fold(f64::INFINITY, f64::min)
}

fn series(point: &SweepPoint, name: &str) -> f64 {
    point
        .results
        .iter()
        .find(|m| m.name == name)
        .map_or(0.0, |m| m.queries_per_sec)
}

/// Renders the trajectory as JSON by hand (the workspace is offline, so no
/// serde; the structure is flat enough that manual rendering stays simple).
fn render_json(
    points: &[SweepPoint],
    threads: usize,
    smoke: bool,
    speedup: f64,
    interned_speedup: f64,
    batch_dedup_hits: u64,
    high: &HighAtomsSection,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"figure\": \"fig5_labeler_throughput\",\n");
    out.push_str("  \"unit\": \"queries_per_second\",\n");
    out.push_str(&format!("  \"batch_size\": {BATCH_SIZE},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"batch_dedup_hits\": {batch_dedup_hits},\n"));
    out.push_str(&format!(
        "  \"min_speedup_cached_parallel_vs_baseline\": {speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"min_speedup_interned_vs_cached\": {interned_speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"min_speedup_structural_vs_generic\": {:.2},\n",
        high.structural_speedup
    ));
    out.push_str("  \"counters\": {\n");
    out.push_str(&format!(
        "    \"acyclic_queries\": {},\n",
        high.acyclic_queries
    ));
    out.push_str(&format!(
        "    \"structural_checks\": {},\n",
        high.counters.structural_checks
    ));
    out.push_str(&format!(
        "    \"backtrack_fallbacks\": {}\n",
        high.counters.backtrack_fallbacks
    ));
    out.push_str("  },\n");
    out.push_str("  \"high_atoms\": {\n");
    out.push_str(&format!("    \"containment_pairs_k\": {},\n", high.pairs_k));
    out.push_str("    \"sweep\": [\n");
    for (i, p) in high.points.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"max_atoms\": {},\n", p.max_atoms));
        out.push_str(&format!(
            "        \"interned_structural\": {:.1},\n",
            p.interned_structural
        ));
        out.push_str(&format!(
            "        \"interned_generic\": {:.1},\n",
            p.interned_generic
        ));
        out.push_str(&format!(
            "        \"containment_structural\": {:.1},\n",
            p.containment_structural
        ));
        out.push_str(&format!(
            "        \"containment_generic\": {:.1}\n",
            p.containment_generic
        ));
        out.push_str(if i + 1 == high.points.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out.push_str("  \"sweep\": [\n");
    for (i, point) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"max_atoms\": {},\n", point.max_atoms));
        out.push_str("      \"queries_per_sec\": {\n");
        for (j, m) in point.results.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {:.1}{}\n",
                m.name,
                m.queries_per_sec,
                if j + 1 == point.results.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("      }\n");
        out.push_str(if i + 1 == points.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
