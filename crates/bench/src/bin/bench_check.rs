//! `bench_check` — the CI acceptance gate over the emitted `BENCH_*.json`
//! trajectories.
//!
//! Replaces the brittle awk/grep pipeline that used to live in
//! `.github/workflows/ci.yml`: the JSON is actually *parsed* (a minimal
//! recursive-descent parser — the workspace is offline, so no serde), every
//! required series must be present, and the numeric acceptance floors are
//! enforced with the offending series named in the failure message.
//!
//! ```text
//! # committed trajectories, full floors:
//! cargo run -p fdc-bench --bin bench_check -- \
//!     --fig5 BENCH_fig5.json --fig6 BENCH_fig6.json --fig7 BENCH_fig7.json
//! # smoke trajectories, structural checks + relaxed floors:
//! cargo run -p fdc-bench --bin bench_check -- --smoke \
//!     --fig5 smoke_fig5.json --fig6 smoke_fig6.json --fig7 smoke_fig7.json
//! ```
//!
//! Floors (committed mode):
//!
//! * fig5 — `min_speedup_interned_vs_cached` ≥ 1.5, and the high-atoms
//!   structural block: `min_speedup_structural_vs_generic` ≥ 1.3 (join-tree
//!   semi-join containment vs generic backtracking, worst sweep point) with
//!   the `acyclic_queries` / `structural_checks` / `backtrack_fallbacks`
//!   classification counters all non-zero;
//! * fig6 — `interned_packed` present at every sweep point, every pooled
//!   `sharded_parallel_x*` series named by the `shard_counts` axis
//!   present *and positive* at every sweep point (both modes — a zero
//!   means the pooled fan-out never labeled), the packed headline
//!   `min_speedup_interned_packed_vs_seed` ≥ 1.5, and — when the
//!   committed run's `host_threads` > 1 — `sharded_parallel_x4` ≥ 1.5×
//!   `sharded_parallel_x1` at every sweep point;
//! * fig7 — `speedup_at_1pct` ≥ 2.0 (incremental vs flush-on-mutation —
//!   PR 3's 3.0 bar predates the interned query plane, which made the
//!   flush baseline's cold relabeling ~3x cheaper and compressed the gap),
//!   the `pipelined` series ≥ the `incremental` series at the 0.1% and
//!   1% mutation ratios, ≥ parity (within 5%) at 10% — relaxed to ≥ 0.85
//!   at every ratio when the committed run's `host_threads` is 1, where
//!   both executors run the same degenerate inline path and run-to-run
//!   noise swings past the true ~1% delta — and, when `host_threads` > 1,
//!   the `thread_scaling` series scaling `pipelined_x4` to ≥ 1.8×
//!   `pipelined_x1`;
//! * recovery — `speedup_bulkload_vs_rebuild` ≥ 5.0 (checkpoint-bulkload
//!   cold start vs from-generator rebuild; ≥ 1.0 in smoke mode).
//!
//! Malformed input — an empty file, a truncation mid-token, trailing
//! garbage, nesting past [`MAX_DEPTH`] — fails with the file named and
//! the byte offset of the error, never a panic or a stack overflow.
//!
//! Smoke mode keeps the structural checks and relaxes the numeric floors to
//! what a 5000-op single-shot smoke run can actually resolve (fig5 > 1.0;
//! fig7 floors skipped).

use std::collections::HashMap;
use std::process::ExitCode;

/// A parsed JSON value — just enough of the grammar for the emitted
/// trajectories (no escapes beyond `\"` and `\\`, no scientific floats
/// beyond what `f64::from_str` accepts).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(HashMap<String, Json>),
}

impl Json {
    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Deepest container nesting the parser accepts.  The emitted
/// trajectories nest three levels; the cap exists so a garbage file of
/// `[[[[…` fails with a named error instead of overflowing the stack.
const MAX_DEPTH: usize = 64;

/// Minimal recursive-descent JSON parser.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    /// Guards one level of container recursion.
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(_) => self.parse_number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = *self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or_else(|| self.error("dangling escape"))?;
                    out.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    self.pos += 2;
                }
                Some(&byte) => {
                    out.push(byte as char);
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut map = HashMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            map.insert(key, self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content"));
    }
    Ok(value)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_json(&text).map_err(|e| format!("`{path}`: {e}"))
}

/// Reads a required numeric key off the document root.
fn number(doc: &Json, path: &str, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_number)
        .ok_or_else(|| format!("`{path}`: missing numeric key `{key}`"))
}

/// Reads the sweep array off the document root.
fn sweep<'a>(doc: &'a Json, path: &str) -> Result<&'a [Json], String> {
    doc.get("sweep")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("`{path}`: missing `sweep` array"))
}

/// Figure 5 gate: the interned series exists at every sweep point and its
/// headline speedup over the cached baseline clears the floor.
fn check_fig5(path: &str, smoke: bool) -> Result<(), String> {
    let doc = load(path)?;
    for point in sweep(&doc, path)? {
        let series = point
            .get("queries_per_sec")
            .ok_or_else(|| format!("`{path}`: sweep point without `queries_per_sec`"))?;
        for required in ["baseline", "cached_parallel_batch", "interned"] {
            if series.get(required).and_then(Json::as_number).is_none() {
                return Err(format!(
                    "`{path}`: series `{required}` missing from a sweep point"
                ));
            }
        }
    }
    let speedup = number(&doc, path, "min_speedup_interned_vs_cached")?;
    let floor = if smoke { 1.0 } else { 1.5 };
    if speedup < floor {
        return Err(format!(
            "`{path}`: series `interned` below its floor — \
             min_speedup_interned_vs_cached = {speedup:.2} < {floor}"
        ));
    }
    check_fig5_high_atoms(&doc, path, smoke)
}

/// The high-atoms structural block of fig5: the sweep extends past the
/// regular axis (max_atoms 20, plus 28 in committed runs), every series is
/// present and positive, the intern-time classification counters show the
/// dispatcher actually ran both paths, and the semi-join containment
/// headline clears its floor (1.3x committed, parity smoke).
fn check_fig5_high_atoms(doc: &Json, path: &str, smoke: bool) -> Result<(), String> {
    let high = doc
        .get("high_atoms")
        .ok_or_else(|| format!("`{path}`: missing `high_atoms` block"))?;
    let sweep = high
        .get("sweep")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("`{path}`: missing `high_atoms.sweep` array"))?;
    let required_axis: &[f64] = if smoke { &[20.0] } else { &[20.0, 28.0] };
    for expected in required_axis {
        let point = sweep
            .iter()
            .find(|p| p.get("max_atoms").and_then(Json::as_number) == Some(*expected))
            .ok_or_else(|| {
                format!("`{path}`: no `high_atoms` sweep point at max_atoms {expected}")
            })?;
        for series in [
            "interned_structural",
            "interned_generic",
            "containment_structural",
            "containment_generic",
        ] {
            let value = point.get(series).and_then(Json::as_number).ok_or_else(|| {
                format!("`{path}`: series `{series}` missing at max_atoms {expected}")
            })?;
            if value <= 0.0 {
                return Err(format!(
                    "`{path}`: non-positive throughput in `{series}` at max_atoms {expected}"
                ));
            }
        }
    }
    // The classification counters prove the run exercised the dispatcher:
    // acyclic queries were classified, the semi-join path answered checks,
    // and at least one cyclic query took the backtracking fallback.
    let counters = doc
        .get("counters")
        .ok_or_else(|| format!("`{path}`: missing `counters` block"))?;
    for counter in [
        "acyclic_queries",
        "structural_checks",
        "backtrack_fallbacks",
    ] {
        let value = counters
            .get(counter)
            .and_then(Json::as_number)
            .ok_or_else(|| format!("`{path}`: missing counter `{counter}`"))?;
        if value < 1.0 {
            return Err(format!(
                "`{path}`: counter `{counter}` = {value} — the structural dispatch never ran"
            ));
        }
    }
    let speedup = number(doc, path, "min_speedup_structural_vs_generic")?;
    let floor = if smoke { 1.0 } else { 1.3 };
    if speedup < floor {
        return Err(format!(
            "`{path}`: series `containment_structural` below its floor — \
             min_speedup_structural_vs_generic = {speedup:.2} < {floor}"
        ));
    }
    Ok(())
}

/// Figure 6 gate: the interned and packed series exist at every sweep
/// point, every pooled `sharded_parallel_x*` series named by the
/// committed `shard_counts` axis is present and positive in both modes,
/// the packed headline clears the floor, and — when the committed run
/// had more than one host thread — `sharded_parallel_x4` scales to at
/// least 1.5x `sharded_parallel_x1` at every sweep point.
fn check_fig6(path: &str, smoke: bool) -> Result<(), String> {
    let doc = load(path)?;
    // The pooled sweep is self-describing: the root `shard_counts` axis
    // names exactly which `sharded_parallel_x*` series every sweep point
    // must carry.
    let shard_counts: Vec<u64> = doc
        .get("shard_counts")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("`{path}`: missing `shard_counts` axis"))?
        .iter()
        .map(|count| {
            count
                .as_number()
                .filter(|n| *n >= 1.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("`{path}`: non-numeric entry in `shard_counts`"))
        })
        .collect::<Result<_, _>>()?;
    if shard_counts.is_empty() {
        return Err(format!("`{path}`: empty `shard_counts` axis"));
    }
    let mut scaling: Vec<(f64, f64)> = Vec::new();
    for point in sweep(&doc, path)? {
        let principals = point
            .get("num_principals")
            .and_then(Json::as_number)
            .unwrap_or(f64::NAN);
        let series = point
            .get("labels_per_sec")
            .ok_or_else(|| format!("`{path}`: sweep point without `labels_per_sec`"))?;
        for required in ["interned", "interned_packed"] {
            if series.get(required).and_then(Json::as_number).is_none() {
                return Err(format!(
                    "`{path}`: series `{required}` missing from a sweep point"
                ));
            }
        }
        // Presence + positivity of every pooled series, in both modes: a
        // zero throughput means the pooled fan-out never labeled.
        let mut pooled = HashMap::new();
        for shards in &shard_counts {
            let name = format!("sharded_parallel_x{shards}");
            let throughput = series
                .get(&name)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("`{path}`: series `{name}` missing from a sweep point"))?;
            if throughput <= 0.0 {
                return Err(format!(
                    "`{path}`: non-positive throughput in series `{name}` \
                     at num_principals {principals}"
                ));
            }
            pooled.insert(*shards, throughput);
        }
        if let (Some(x1), Some(x4)) = (pooled.get(&1), pooled.get(&4)) {
            scaling.push((principals, x4 / x1));
        }
        // The seed baseline must be present but may be `null`: the
        // O(principals)-clone seed store is deliberately skipped on the
        // 1M-principal axis.
        match series.get("seed_store") {
            Some(Json::Number(_)) | Some(Json::Null) => {}
            _ => {
                return Err(format!(
                    "`{path}`: series `seed_store` missing from a sweep point"
                ))
            }
        }
    }
    if !smoke {
        let speedup = number(&doc, path, "min_speedup_interned_packed_vs_seed")?;
        if speedup < 1.5 {
            return Err(format!(
                "`{path}`: series `interned_packed` below its floor — \
                 min_speedup_interned_packed_vs_seed = {speedup:.2} < 1.5"
            ));
        }
        // The pooled scaling floor only engages when the committed run
        // had real cores to scale onto: a single-core host runs every
        // width through the same pool inline, where x4 == x1 modulo
        // noise.
        let host_threads = number(&doc, path, "host_threads")?;
        if host_threads > 1.0 {
            for (principals, scale) in scaling {
                if scale < 1.5 {
                    return Err(format!(
                        "`{path}`: series `sharded_parallel_x4` below its scaling floor \
                         at num_principals {principals} — {scale:.2}x of \
                         `sharded_parallel_x1` < 1.5 (host_threads = {host_threads})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The `ops_per_sec` of one named strategy at one fig7 sweep point.
fn strategy_throughput(point: &Json, path: &str, name: &str) -> Result<f64, String> {
    point
        .get(name)
        .and_then(|strategy| strategy.get("ops_per_sec"))
        .and_then(Json::as_number)
        .ok_or_else(|| format!("`{path}`: series `{name}` missing from a sweep point"))
}

/// Figure 7 gate: all three strategies exist at every sweep point and the
/// `thread_scaling` series carries every pinned worker width; the
/// committed floors are the incremental:flush speedup at 1%, the
/// pipelined:incremental ratios per the acceptance bars, and — when the
/// committed run had more than one host thread — `pipelined_x4` at 1.8x
/// `pipelined_x1`.
fn check_fig7(path: &str, smoke: bool) -> Result<(), String> {
    let doc = load(path)?;
    let mut ratios: Vec<(f64, f64)> = Vec::new();
    for point in sweep(&doc, path)? {
        let mutation_ratio = point
            .get("mutation_ratio")
            .and_then(Json::as_number)
            .ok_or_else(|| format!("`{path}`: sweep point without `mutation_ratio`"))?;
        let incremental = strategy_throughput(point, path, "incremental")?;
        let flush = strategy_throughput(point, path, "flush_on_mutation")?;
        let pipelined = strategy_throughput(point, path, "pipelined")?;
        if incremental <= 0.0 || flush <= 0.0 || pipelined <= 0.0 {
            return Err(format!(
                "`{path}`: non-positive throughput at mutation_ratio {mutation_ratio}"
            ));
        }
        ratios.push((mutation_ratio, pipelined / incremental));
    }
    // The thread-scaling series is part of the contract in both modes:
    // every pinned worker width must be present and positive.
    let scaling = doc
        .get("thread_scaling")
        .and_then(|block| block.get("series"))
        .ok_or_else(|| format!("`{path}`: missing `thread_scaling.series`"))?;
    let scaling_throughput = |name: &str| -> Result<f64, String> {
        let ops = scaling
            .get(name)
            .and_then(Json::as_number)
            .ok_or_else(|| format!("`{path}`: series `{name}` missing from `thread_scaling`"))?;
        if ops <= 0.0 {
            return Err(format!(
                "`{path}`: non-positive throughput in `thread_scaling.{name}`"
            ));
        }
        Ok(ops)
    };
    let x1 = scaling_throughput("pipelined_x1")?;
    scaling_throughput("pipelined_x2")?;
    let x4 = scaling_throughput("pipelined_x4")?;
    if smoke {
        // A 5000-op single-shot smoke run cannot resolve few-percent
        // deltas; presence and positivity are the smoke bar.
        return Ok(());
    }
    // The scaling floor only engages when the committed run had real
    // cores to scale onto: a single-core host runs every width inline,
    // where x4 == x1 modulo noise.
    let host_threads = number(&doc, path, "host_threads")?;
    if host_threads > 1.0 {
        let scale = x4 / x1;
        if scale < 1.8 {
            return Err(format!(
                "`{path}`: series `pipelined_x4` below its scaling floor — \
                 {scale:.2}x of `pipelined_x1` < 1.8 (host_threads = {host_threads})"
            ));
        }
    }
    let speedup = number(&doc, path, "speedup_at_1pct")?;
    if speedup < 2.0 {
        return Err(format!(
            "`{path}`: series `incremental` below its floor — \
             speedup_at_1pct = {speedup:.2} < 2.0 vs `flush_on_mutation`"
        ));
    }
    // Acceptance bars for the pipelined executor: >= incremental at the
    // 0.1% and 1% mutation ratios, >= parity (within 5%) at 10%.  On a
    // single-core host both executors run the same degenerate inline
    // path (true delta ~1%) while run-to-run noise on a shared 1-core
    // container swings past ±13% even best-of-8, so there the bar is
    // parity within the observed noise band; real multi-core hosts must
    // clear the strict floors.
    let (floors, floor_note) = if host_threads > 1.0 {
        ([(0.001, 1.0), (0.01, 1.0), (0.1, 0.95)], "")
    } else {
        (
            [(0.001, 0.85), (0.01, 0.85), (0.1, 0.85)],
            " (single-core noise bar)",
        )
    };
    for (at, floor) in floors {
        let (_, ratio) = ratios
            .iter()
            .find(|(r, _)| (r - at).abs() < 1e-9)
            .ok_or_else(|| format!("`{path}`: no sweep point at mutation_ratio {at}"))?;
        if *ratio < floor {
            return Err(format!(
                "`{path}`: series `pipelined` below its floor at mutation_ratio {at} — \
                 {ratio:.3}x of `incremental` < {floor}{floor_note}"
            ));
        }
    }
    Ok(())
}

/// Recovery gate: the checkpoint-bulkload cold start must beat the
/// from-generator rebuild by the configured factor (5x committed, parity
/// smoke — a small smoke population cannot resolve the full gap).
fn check_recovery(path: &str, smoke: bool) -> Result<(), String> {
    let doc = load(path)?;
    for required in [
        "principals",
        "wal_records",
        "rebuild_ms",
        "bulkload_ms",
        "health_wal_records_committed",
        "health_wal_commits",
        "health_wal_retries",
        "health_wal_fsync_failures",
        "health_checkpoints",
        "health_checkpoint_failures",
        "health_mode_transitions",
    ] {
        number(&doc, path, required)?;
    }
    // The seeding run's durability health: the trajectory only counts
    // if the WAL'd front door actually carried the stream (records
    // committed, checkpoint landed) and never dropped to degraded
    // read-only serving or lost a checkpoint along the way.
    if number(&doc, path, "health_wal_records_committed")? <= 0.0 {
        return Err(format!("`{path}`: seeding run committed no WAL records"));
    }
    if number(&doc, path, "health_checkpoints")? < 1.0 {
        return Err(format!("`{path}`: seeding run landed no checkpoint"));
    }
    for must_be_zero in ["health_mode_transitions", "health_checkpoint_failures"] {
        let value = number(&doc, path, must_be_zero)?;
        if value != 0.0 {
            return Err(format!(
                "`{path}`: {must_be_zero} = {value} — the seeding run was not healthy"
            ));
        }
    }
    let rebuild = number(&doc, path, "rebuild_ms")?;
    let bulkload = number(&doc, path, "bulkload_ms")?;
    if rebuild <= 0.0 || bulkload <= 0.0 {
        return Err(format!("`{path}`: non-positive timing"));
    }
    let speedup = number(&doc, path, "speedup_bulkload_vs_rebuild")?;
    let recomputed = rebuild / bulkload;
    if (speedup - recomputed).abs() > recomputed * 0.01 {
        return Err(format!(
            "`{path}`: speedup_bulkload_vs_rebuild = {speedup:.2} disagrees with \
             rebuild_ms/bulkload_ms = {recomputed:.2}"
        ));
    }
    let floor = if smoke { 1.0 } else { 5.0 };
    if speedup < floor {
        return Err(format!(
            "`{path}`: series `bulkload` below its floor — \
             speedup_bulkload_vs_rebuild = {speedup:.2} < {floor}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut fig5 = None;
    let mut fig6 = None;
    let mut fig7 = None;
    let mut recovery = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--fig5" => fig5 = iter.next().cloned(),
            "--fig6" => fig6 = iter.next().cloned(),
            "--fig7" => fig7 = iter.next().cloned(),
            "--recovery" => recovery = iter.next().cloned(),
            other => {
                eprintln!("bench_check: unknown argument `{other}`");
                eprintln!(
                    "usage: bench_check [--smoke] [--fig5 <path>] [--fig6 <path>] \
                     [--fig7 <path>] [--recovery <path>]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if fig5.is_none() && fig6.is_none() && fig7.is_none() && recovery.is_none() {
        eprintln!("bench_check: nothing to check (pass --fig5/--fig6/--fig7/--recovery)");
        return ExitCode::FAILURE;
    }
    let mode = if smoke { "smoke" } else { "committed" };
    let mut failed = false;
    for (name, path, check) in [
        (
            "fig5",
            &fig5,
            check_fig5 as fn(&str, bool) -> Result<(), String>,
        ),
        ("fig6", &fig6, check_fig6),
        ("fig7", &fig7, check_fig7),
        ("recovery", &recovery, check_recovery),
    ] {
        if let Some(path) = path {
            match check(path, smoke) {
                Ok(()) => println!("bench_check [{mode}] {name}: OK ({path})"),
                Err(message) => {
                    eprintln!("bench_check [{mode}] {name}: FAIL — {message}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitted_shapes() {
        let doc =
            parse_json(r#"{ "a": [1, 2.5, -3e2], "b": {"c": "text", "d": true}, "e": null }"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_number(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c"),
            Some(&Json::String("text".into()))
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("e"), Some(&Json::Null));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, ]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn malformed_input_yields_named_errors_not_panics() {
        // Empty file.
        let err = parse_json("").unwrap_err();
        assert!(err.contains("unexpected end of input"), "{err}");
        assert!(err.contains("byte 0"), "{err}");
        // Truncation mid-token: a literal cut short...
        let err = parse_json(r#"{"a": tru"#).unwrap_err();
        assert!(err.contains("expected `true`"), "{err}");
        assert!(err.contains("byte 6"), "{err}");
        // ...a string cut short, and a number cut to just its sign.
        assert!(parse_json(r#"{"a": "unterm"#)
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_json(r#"{"a": -"#)
            .unwrap_err()
            .contains("malformed number"));
        // Trailing garbage after a complete document names the offset of
        // the garbage, not of the document.
        let err = parse_json(r#"{"a": 1} %%%"#).unwrap_err();
        assert!(err.contains("trailing content"), "{err}");
        assert!(err.contains("byte 9"), "{err}");
        // Binary garbage (lossy-decoded) is an error, not a panic.
        assert!(parse_json("\u{fffd}\u{fffd}\u{fffd}").is_err());
    }

    #[test]
    fn pathological_nesting_is_capped_instead_of_overflowing_the_stack() {
        // One past the cap fails with the depth named...
        let deep = "[".repeat(MAX_DEPTH + 1);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // ...and a balanced document at exactly the cap still parses
        // (closing a container releases its level).
        let balanced = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_json(&balanced).is_ok());
        let wide = format!("[{}]", vec!["[[1]]"; 64].join(", "));
        assert!(parse_json(&wide).is_ok(), "depth is per-branch, not global");
    }

    #[test]
    fn the_recovery_gate_enforces_the_bulkload_floor() {
        let dir = std::env::temp_dir().join("fdc_bench_check_recovery_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recovery.json");
        let health = r#""health_wal_records_committed": 100016, "health_wal_commits": 99,
                    "health_wal_retries": 0, "health_wal_fsync_failures": 0,
                    "health_checkpoints": 1, "health_checkpoint_failures": 0,
                    "health_mode_transitions": 0"#;
        let render = |rebuild: f64, bulkload: f64| {
            format!(
                r#"{{"principals": 100000, "wal_records": 100016, "rebuild_ms": {rebuild},
                    "bulkload_ms": {bulkload}, {health},
                    "speedup_bulkload_vs_rebuild": {:.6}}}"#,
                rebuild / bulkload
            )
        };
        std::fs::write(&path, render(600.0, 100.0)).unwrap();
        assert!(check_recovery(path.to_str().unwrap(), false).is_ok());
        // Below the committed floor, above the smoke floor.
        std::fs::write(&path, render(300.0, 100.0)).unwrap();
        let err = check_recovery(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("below its floor"), "{err}");
        assert!(check_recovery(path.to_str().unwrap(), true).is_ok());
        // A speedup field that disagrees with the timings is rejected.
        std::fs::write(
            &path,
            format!(
                r#"{{"principals": 1, "wal_records": 1, "rebuild_ms": 600.0,
               "bulkload_ms": 100.0, {health}, "speedup_bulkload_vs_rebuild": 50.0}}"#
            ),
        )
        .unwrap();
        let err = check_recovery(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
        // Missing health counters are a contract violation, even in smoke.
        let stripped = render(600.0, 100.0).replace("\"health_checkpoints\": 1,", "");
        std::fs::write(&path, stripped).unwrap();
        assert!(check_recovery(path.to_str().unwrap(), true).is_err());
        // A seeding run that degraded (or dropped a checkpoint) is rejected.
        for (key, bad) in [
            (
                "\"health_mode_transitions\": 0",
                "\"health_mode_transitions\": 2",
            ),
            (
                "\"health_checkpoint_failures\": 0",
                "\"health_checkpoint_failures\": 1",
            ),
            ("\"health_checkpoints\": 1", "\"health_checkpoints\": 0"),
            (
                "\"health_wal_records_committed\": 100016",
                "\"health_wal_records_committed\": 0",
            ),
        ] {
            std::fs::write(&path, render(600.0, 100.0).replace(key, bad)).unwrap();
            let err = check_recovery(path.to_str().unwrap(), false).unwrap_err();
            assert!(
                err.contains("seeding run") || err.contains("not healthy"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn fig5_high_atoms_floors_name_the_offending_series() {
        let dir = std::env::temp_dir().join("fdc_bench_check_fig5_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig5.json");
        let render = |structural_speedup: f64, fallbacks: u64, axis_28: bool| {
            let point_28 = if axis_28 {
                r#", {"max_atoms": 28, "interned_structural": 40000.0,
                     "interned_generic": 39000.0, "containment_structural": 40000.0,
                     "containment_generic": 2000.0}"#
            } else {
                ""
            };
            format!(
                r#"{{
  "min_speedup_interned_vs_cached": 9.0,
  "min_speedup_structural_vs_generic": {structural_speedup},
  "counters": {{"acyclic_queries": 77, "structural_checks": 9600,
                "backtrack_fallbacks": {fallbacks}}},
  "high_atoms": {{
    "containment_pairs_k": 40,
    "sweep": [
      {{"max_atoms": 20, "interned_structural": 84000.0, "interned_generic": 83000.0,
        "containment_structural": 92000.0, "containment_generic": 64000.0}}{point_28}
    ]
  }},
  "sweep": [
    {{"max_atoms": 3, "queries_per_sec": {{"baseline": 100000.0,
      "cached_parallel_batch": 400000.0, "interned": 900000.0}}}}
  ]
}}"#
            )
        };
        std::fs::write(&path, render(1.43, 1, true)).unwrap();
        assert!(check_fig5(path.to_str().unwrap(), false).is_ok());
        // Below the committed floor, above the smoke floor.
        std::fs::write(&path, render(1.1, 1, true)).unwrap();
        let err = check_fig5(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("`containment_structural`"), "{err}");
        assert!(err.contains("1.3"), "{err}");
        assert!(check_fig5(path.to_str().unwrap(), true).is_ok());
        // The committed sweep must reach max_atoms 28; smoke stops at 20.
        std::fs::write(&path, render(1.43, 1, false)).unwrap();
        let err = check_fig5(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("max_atoms 28"), "{err}");
        assert!(check_fig5(path.to_str().unwrap(), true).is_ok());
        // A dispatcher that never took the cyclic fallback is a dead
        // counter — the run did not exercise both paths.
        std::fs::write(&path, render(1.43, 0, true)).unwrap();
        let err = check_fig5(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("`backtrack_fallbacks`"), "{err}");
        // A missing series names itself, even in smoke mode.
        let stripped = render(1.43, 1, true).replace(r#", "containment_generic": 64000.0"#, "");
        std::fs::write(&path, stripped).unwrap();
        let err = check_fig5(path.to_str().unwrap(), true).unwrap_err();
        assert!(err.contains("`containment_generic`"), "{err}");
    }

    #[test]
    fn fig6_pooled_series_gate_names_the_offending_series() {
        let dir = std::env::temp_dir().join("fdc_bench_check_fig6_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig6.json");
        let render = |host_threads: usize, x4: f64| {
            format!(
                r#"{{
  "host_threads": {host_threads},
  "shard_counts": [1, 2, 4],
  "min_speedup_interned_packed_vs_seed": 2.0,
  "sweep": [
    {{"num_principals": 1000, "labels_per_sec": {{
      "seed_store": 1000.0, "interned": 40000.0, "interned_packed": 90000.0,
      "sharded_parallel_x1": 80000.0, "sharded_parallel_x2": 120000.0,
      "sharded_parallel_x4": {x4}}}}},
    {{"num_principals": 1000000, "labels_per_sec": {{
      "seed_store": null, "interned": 40000.0, "interned_packed": 90000.0,
      "sharded_parallel_x1": 80000.0, "sharded_parallel_x2": 120000.0,
      "sharded_parallel_x4": 160000.0}}}}
  ]
}}"#
            )
        };
        std::fs::write(&path, render(4, 160000.0)).unwrap();
        assert!(check_fig6(path.to_str().unwrap(), false).is_ok());
        // The scaling floor engages on multi-core committed runs and
        // names the worst sweep point...
        std::fs::write(&path, render(4, 90000.0)).unwrap();
        let err = check_fig6(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("`sharded_parallel_x4`"), "{err}");
        assert!(err.contains("scaling floor"), "{err}");
        assert!(err.contains("num_principals 1000"), "{err}");
        assert!(check_fig6(path.to_str().unwrap(), true).is_ok());
        // ...but not on a single-core host, where every width runs the
        // same pool inline.
        std::fs::write(&path, render(1, 90000.0)).unwrap();
        assert!(check_fig6(path.to_str().unwrap(), false).is_ok());
        // A pooled series missing from one sweep point names itself,
        // even in smoke mode.
        let stripped =
            render(4, 160000.0).replace("\"sharded_parallel_x2\": 120000.0,\n      ", "");
        std::fs::write(&path, stripped).unwrap();
        let err = check_fig6(path.to_str().unwrap(), true).unwrap_err();
        assert!(err.contains("`sharded_parallel_x2`"), "{err}");
        // Zero throughput in a pooled series fails in both modes: the
        // pooled fan-out never labeled.
        std::fs::write(&path, render(4, 0.0)).unwrap();
        for smoke in [false, true] {
            let err = check_fig6(path.to_str().unwrap(), smoke).unwrap_err();
            assert!(err.contains("non-positive"), "{err}");
            assert!(err.contains("`sharded_parallel_x4`"), "{err}");
        }
        // The shard_counts axis is the contract: without it the pooled
        // series cannot be enumerated.
        let stripped = render(4, 160000.0).replace("\"shard_counts\": [1, 2, 4],\n  ", "");
        std::fs::write(&path, stripped).unwrap();
        let err = check_fig6(path.to_str().unwrap(), true).unwrap_err();
        assert!(err.contains("`shard_counts`"), "{err}");
    }

    #[test]
    fn fig7_floors_name_the_offending_series() {
        let dir = std::env::temp_dir().join("fdc_bench_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig7.json");
        let render = |pipelined_at_1pct: f64, host_threads: usize, x4: f64| {
            format!(
                r#"{{
  "speedup_at_1pct": 4.0,
  "host_threads": {host_threads},
  "thread_scaling": {{
    "mutation_ratio": 0.01,
    "series": {{"pipelined_x1": 100.0, "pipelined_x2": 150.0, "pipelined_x4": {x4}}}
  }},
  "sweep": [
    {{"mutation_ratio": 0, "incremental": {{"ops_per_sec": 100.0}},
      "flush_on_mutation": {{"ops_per_sec": 100.0}}, "pipelined": {{"ops_per_sec": 100.0}}}},
    {{"mutation_ratio": 0.001, "incremental": {{"ops_per_sec": 100.0}},
      "flush_on_mutation": {{"ops_per_sec": 50.0}}, "pipelined": {{"ops_per_sec": 110.0}}}},
    {{"mutation_ratio": 0.01, "incremental": {{"ops_per_sec": 100.0}},
      "flush_on_mutation": {{"ops_per_sec": 25.0}}, "pipelined": {{"ops_per_sec": {pipelined_at_1pct}}}}},
    {{"mutation_ratio": 0.1, "incremental": {{"ops_per_sec": 100.0}},
      "flush_on_mutation": {{"ops_per_sec": 50.0}}, "pipelined": {{"ops_per_sec": 100.0}}}}
  ]
}}"#
            )
        };
        std::fs::write(&path, render(105.0, 4, 250.0)).unwrap();
        assert!(check_fig7(path.to_str().unwrap(), false).is_ok());
        std::fs::write(&path, render(80.0, 4, 250.0)).unwrap();
        let err = check_fig7(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("`pipelined`"), "{err}");
        assert!(err.contains("0.01"), "{err}");
        // Smoke mode only checks structure.
        assert!(check_fig7(path.to_str().unwrap(), true).is_ok());
        // On a single-core committed run the pipelined bar is parity
        // within noise: 0.9x passes where a multi-core run would fail...
        std::fs::write(&path, render(90.0, 1, 101.0)).unwrap();
        assert!(check_fig7(path.to_str().unwrap(), false).is_ok());
        std::fs::write(&path, render(90.0, 4, 250.0)).unwrap();
        let err = check_fig7(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("`pipelined`"), "{err}");
        // ...but a real regression past the noise band still fails.
        std::fs::write(&path, render(80.0, 1, 101.0)).unwrap();
        let err = check_fig7(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("single-core noise bar"), "{err}");
        // The scaling floor engages on multi-core committed runs...
        std::fs::write(&path, render(105.0, 4, 120.0)).unwrap();
        let err = check_fig7(path.to_str().unwrap(), false).unwrap_err();
        assert!(err.contains("`pipelined_x4`"), "{err}");
        assert!(err.contains("scaling floor"), "{err}");
        assert!(check_fig7(path.to_str().unwrap(), true).is_ok());
        // ...but not on a single-core host, where every width runs inline.
        std::fs::write(&path, render(105.0, 1, 101.0)).unwrap();
        assert!(check_fig7(path.to_str().unwrap(), false).is_ok());
        // A missing thread_scaling block fails even in smoke mode.
        let stripped = render(105.0, 4, 250.0).replace("\"pipelined_x2\": 150.0, ", "");
        std::fs::write(&path, stripped).unwrap();
        let err = check_fig7(path.to_str().unwrap(), true).unwrap_err();
        assert!(err.contains("`pipelined_x2`"), "{err}");
    }
}
