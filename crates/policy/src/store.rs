//! The multi-principal policy checker (the system benchmarked in Figure 6).
//!
//! Section 6.2 restricts its exposition to a single principal and notes that
//! the generalization to multiple principals is straightforward; the
//! evaluation (Section 7.2) then runs the policy checker with between 1,000
//! and 1,000,000 distinct principals, each with its own randomly generated
//! policy.  [`PolicyStore`] is that generalization, engineered for the full
//! million-principal axis:
//!
//! * **Compile once, intern everywhere.**  Policies are compiled into the
//!   shared [`CompiledPolicy`](crate::compiled::CompiledPolicy) form (the
//!   representation the [`ReferenceMonitor`](crate::ReferenceMonitor)
//!   decides with) and interned in a [`PolicyArena`]: each distinct policy
//!   is stored once, however many principals share it.
//! * **Cache-line-sized principals.**  Per-principal state is a 24-byte
//!   record — a `u32` arena index, a `u64` consistency word and two `u32`
//!   counters — in one dense `Vec`, so a policy decision touches the
//!   principal's record plus a (hot, shared) compiled policy and nothing
//!   else.
//! * **Packed end-to-end.**  [`submit_packed`](PolicyStore::submit_packed) /
//!   [`check_packed`](PolicyStore::check_packed) /
//!   [`submit_batch`](PolicyStore::submit_batch) consume the labeler's
//!   packed 64-bit labels (Section 6.1) directly, so labeler output flows to
//!   a decision without unpacking.
//!
//! For multi-core enforcement see
//! [`ShardedPolicyStore`](crate::ShardedPolicyStore), which partitions
//! principals across per-worker stores.

use fdc_core::{DisclosureLabel, PackedLabel, SecurityViewId, SecurityViews};

use crate::compiled::PolicyArena;
use crate::monitor::Decision;
use crate::policy::SecurityPolicy;

/// Identifier of a principal (an app, in the Facebook setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(pub u32);

impl PrincipalId {
    /// Returns the id as a usize, convenient for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-principal enforcement state: 24 bytes, cache-line friendly.
///
/// Per-principal counters are `u32` (4 billion queries per principal); the
/// store-level totals are `u64`.
#[derive(Debug, Clone, Copy)]
struct PrincipalState {
    /// Index of the principal's policy in the arena.
    policy: u32,
    answered: u32,
    refused: u32,
    /// Bit `i` set ⇔ the queries answered so far are below partition `i`.
    consistent: u64,
}

/// A policy checker for many principals, backed by an interning
/// [`PolicyArena`].
///
/// The arena lives behind an `Arc` so that read planes — the service
/// layer's epoch snapshots — can pin the compiled-policy universe at a
/// point in time ([`arena_handle`](Self::arena_handle)) without copying it.
/// Mutations go copy-on-write: the steady-state churn outcome (a grant or
/// revoke landing on a structurally known compiled form) resolves through
/// the read-only interning index and never clones; only a genuinely new
/// compiled form clones the arena while a snapshot is outstanding.
#[derive(Debug, Clone, Default)]
pub struct PolicyStore {
    arena: std::sync::Arc<PolicyArena>,
    states: Vec<PrincipalState>,
    answered_total: u64,
    refused_total: u64,
}

impl PolicyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PolicyStore::default()
    }

    /// Registers a principal with its policy and returns its id.
    ///
    /// The policy is compiled and interned: principals with structurally
    /// identical policies (up to partition names) share one arena entry.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than
    /// [`MAX_PARTITIONS`](crate::MAX_PARTITIONS) partitions — the
    /// consistency bit vector is a single `u64`, exactly as in
    /// [`ReferenceMonitor::new`](crate::ReferenceMonitor::new).
    pub fn register(&mut self, policy: SecurityPolicy) -> PrincipalId {
        let id = PrincipalId(self.states.len() as u32);
        let index = self.intern_policy(policy);
        let consistent = self.arena.compiled(index).initial_word();
        self.states.push(PrincipalState {
            policy: index,
            answered: 0,
            refused: 0,
            consistent,
        });
        id
    }

    /// Replaces a principal's policy online, preserving its consistency
    /// word and counters.
    ///
    /// The new policy is compiled and re-interned through the shared arena
    /// (structurally known policies reuse their entry; genuinely new ones
    /// are appended), and the principal's record is repointed — an O(policy
    /// size) mutation that never touches other principals or recomputes any
    /// label.
    ///
    /// The consistency word is carried over bit for bit, so the new policy
    /// **must have the same number of partitions** in the same declaration
    /// order: bit `i` keeps meaning "the answered history is below partition
    /// `i`".  Grants widen only *future* admissions (partitions the history
    /// already violated stay inconsistent — the monitor keeps no history to
    /// re-judge) and revokes narrow only future admissions (the already
    /// answered disclosure cannot be taken back).  This is the documented
    /// semantics of online permission churn, mirrored by
    /// [`grant_view`](Self::grant_view) / [`revoke_view`](Self::revoke_view).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store, if the partition count
    /// changes, or if the policy exceeds
    /// [`MAX_PARTITIONS`](crate::MAX_PARTITIONS).
    pub fn replace_policy(&mut self, principal: PrincipalId, policy: SecurityPolicy) {
        let old_partitions = self
            .arena
            .compiled(self.states[principal.index()].policy)
            .num_partitions();
        assert_eq!(
            policy.len(),
            old_partitions,
            "replace_policy must preserve the partition count \
             (the consistency word is carried over bit for bit)"
        );
        let index = self.intern_policy(policy);
        self.states[principal.index()].policy = index;
    }

    /// Interns a policy through the shared arena: structurally known forms
    /// resolve read-only (no copy-on-write even with
    /// [`arena_handle`](Self::arena_handle) snapshots outstanding); new
    /// forms take the mutable path, cloning the arena only if it is shared.
    fn intern_policy(&mut self, policy: SecurityPolicy) -> u32 {
        if let Some(index) = self.arena.lookup_interned(&policy) {
            self.arena.record_hit();
            return index;
        }
        std::sync::Arc::make_mut(&mut self.arena).intern(policy)
    }

    /// Grants one more security view to a principal: every partition of its
    /// policy gains the view, so whichever wall side the principal has
    /// committed to can use the new permission.  The consistency word and
    /// counters are preserved (see [`replace_policy`](Self::replace_policy)).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn grant_view(
        &mut self,
        principal: PrincipalId,
        registry: &SecurityViews,
        view: SecurityViewId,
    ) {
        let mut policy = self.policy(principal).clone();
        for partition in policy.partitions_mut() {
            partition.permit(registry, view);
        }
        self.replace_policy(principal, policy);
    }

    /// Revokes a security view from a principal: every partition of its
    /// policy loses the view.  Future queries needing it are refused; the
    /// consistency word and counters are preserved (already answered
    /// disclosure cannot be taken back — see
    /// [`replace_policy`](Self::replace_policy)).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn revoke_view(
        &mut self,
        principal: PrincipalId,
        registry: &SecurityViews,
        view: SecurityViewId,
    ) {
        let mut policy = self.policy(principal).clone();
        for partition in policy.partitions_mut() {
            partition.revoke(registry, view);
        }
        self.replace_policy(principal, policy);
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if no principals are registered.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The policy of a principal.
    ///
    /// Interning keeps one source policy per distinct compiled form, so this
    /// returns the first-registered representative of the principal's
    /// policy — identical up to partition names.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn policy(&self, principal: PrincipalId) -> &SecurityPolicy {
        self.arena.source(self.states[principal.index()].policy)
    }

    /// The interning arena backing this store.
    pub fn arena(&self) -> &PolicyArena {
        &self.arena
    }

    /// A shared handle onto the interning arena, pinning the compiled
    /// policy universe as it stands right now.
    ///
    /// The handle is copy-on-write: later store mutations that intern a
    /// genuinely new compiled form leave the handle's view untouched (the
    /// store clones the arena for itself), while the common churn outcome —
    /// re-interning a known form — mutates nothing.  The service layer's
    /// `ServiceSnapshot` bundles one handle per shard so a pipelined read
    /// run can introspect the exact arena its decisions were made against.
    pub fn arena_handle(&self) -> std::sync::Arc<PolicyArena> {
        std::sync::Arc::clone(&self.arena)
    }

    /// Number of distinct compiled policies across all principals.
    pub fn unique_policies(&self) -> usize {
        self.arena.len()
    }

    /// Bytes of per-principal state (excluding the shared arena) — the
    /// footprint that scales with the principal count.
    pub fn state_bytes(&self) -> usize {
        self.states.len() * std::mem::size_of::<PrincipalState>()
    }

    /// The consistency bit vector of a principal (Example 6.3).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn consistency_bits(&self, principal: PrincipalId) -> u64 {
        self.states[principal.index()].consistent
    }

    /// Submits a query label on behalf of a principal, updating that
    /// principal's cumulative state exactly like
    /// [`ReferenceMonitor::submit`](crate::ReferenceMonitor::submit).
    pub fn submit(&mut self, principal: PrincipalId, label: &DisclosureLabel) -> Decision {
        let state = &mut self.states[principal.index()];
        if label.is_bottom() {
            state.answered += 1;
            self.answered_total += 1;
            return Decision::Allow;
        }
        let surviving = self
            .arena
            .surviving_bits(state.policy, state.consistent, label);
        Self::apply(
            state,
            surviving,
            &mut self.answered_total,
            &mut self.refused_total,
        )
    }

    /// [`submit`](Self::submit) on the packed 64-bit label representation
    /// (Section 6.1) — the store side of the packed end-to-end path.
    pub fn submit_packed(&mut self, principal: PrincipalId, label: &[PackedLabel]) -> Decision {
        let state = &mut self.states[principal.index()];
        if label.is_empty() {
            state.answered += 1;
            self.answered_total += 1;
            return Decision::Allow;
        }
        let surviving = self
            .arena
            .surviving_bits_packed(state.policy, state.consistent, label);
        Self::apply(
            state,
            surviving,
            &mut self.answered_total,
            &mut self.refused_total,
        )
    }

    /// Commits a submit decision given the surviving partition bits.
    #[inline]
    fn apply(
        state: &mut PrincipalState,
        surviving: u64,
        answered_total: &mut u64,
        refused_total: &mut u64,
    ) -> Decision {
        if surviving != 0 {
            state.consistent = surviving;
            state.answered += 1;
            *answered_total += 1;
            Decision::Allow
        } else {
            state.refused += 1;
            *refused_total += 1;
            Decision::Deny
        }
    }

    /// Pure check (no state update) for a principal.
    pub fn check(&self, principal: PrincipalId, label: &DisclosureLabel) -> Decision {
        let state = &self.states[principal.index()];
        if label.is_bottom()
            || self
                .arena
                .surviving_bits(state.policy, state.consistent, label)
                != 0
        {
            Decision::Allow
        } else {
            Decision::Deny
        }
    }

    /// [`check`](Self::check) on the packed 64-bit label representation.
    pub fn check_packed(&self, principal: PrincipalId, label: &[PackedLabel]) -> Decision {
        let state = &self.states[principal.index()];
        if label.is_empty()
            || self
                .arena
                .surviving_bits_packed(state.policy, state.consistent, label)
                != 0
        {
            Decision::Allow
        } else {
            Decision::Deny
        }
    }

    /// Decides one packed request, committing the state change only when
    /// `commit` is true — [`submit_packed`](Self::submit_packed) and
    /// [`check_packed`](Self::check_packed) behind one entry point, so a
    /// mixed stream of submits and checks keeps a single dispatch loop.
    #[inline]
    pub fn decide_packed(
        &mut self,
        principal: PrincipalId,
        label: &[PackedLabel],
        commit: bool,
    ) -> Decision {
        if commit {
            self.submit_packed(principal, label)
        } else {
            self.check_packed(principal, label)
        }
    }

    /// Submits a batch of packed requests in order, returning one decision
    /// per request.
    pub fn submit_batch(&mut self, batch: &[(PrincipalId, &[PackedLabel])]) -> Vec<Decision> {
        batch
            .iter()
            .map(|(principal, label)| self.submit_packed(*principal, label))
            .collect()
    }

    /// Serializes the store — the arena's source policies in interning
    /// order, the raw 24-byte principal records, the store totals — into
    /// `out` (one shard's slice of a checkpoint).
    ///
    /// The arena's compiled buffers are *not* written: `PolicyArena::intern`
    /// is deterministic over the source policies in order, so decoding
    /// re-interns them and reproduces the identical flattened buffer,
    /// interning index and arena indices.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use fdc_durability::codec::{put_len, put_u32, put_u64};
        put_len(out, self.arena.len());
        for index in 0..self.arena.len() {
            crate::wire::encode_policy(self.arena.source(index as u32), out);
        }
        put_len(out, self.states.len());
        for state in &self.states {
            put_u32(out, state.policy);
            put_u32(out, state.answered);
            put_u32(out, state.refused);
            put_u64(out, state.consistent);
        }
        put_u64(out, self.answered_total);
        put_u64(out, self.refused_total);
    }

    /// Deserializes a store written by [`encode_into`](Self::encode_into).
    ///
    /// This is the checkpoint **bulkload path**: the arena is rebuilt once
    /// by re-interning the (deduplicated) source policies, then the
    /// per-principal records are pushed raw — no per-principal policy
    /// clone, compile or interning-index probe, which is what makes a
    /// 100K–1M-principal cold start near-instant compared to re-running
    /// the registration workload.
    pub fn decode_from(
        cursor: &mut fdc_durability::codec::Cursor<'_>,
    ) -> std::result::Result<Self, fdc_durability::codec::CodecError> {
        use fdc_durability::codec::CodecError;
        let num_policies = cursor.count(8)?;
        let mut store = PolicyStore::new();
        for expected in 0..num_policies {
            let at = cursor.pos();
            let policy = crate::wire::decode_policy(cursor)?;
            if policy.len() > crate::MAX_PARTITIONS {
                return Err(CodecError::invalid(at, "policy exceeds MAX_PARTITIONS"));
            }
            let index = store.intern_policy(policy);
            if index as usize != expected {
                return Err(CodecError::invalid(
                    at,
                    "duplicate source policy in arena encoding",
                ));
            }
        }
        let num_states = cursor.count(20)?;
        store.states.reserve(num_states);
        for _ in 0..num_states {
            let at = cursor.pos();
            let policy = cursor.u32()?;
            let answered = cursor.u32()?;
            let refused = cursor.u32()?;
            let consistent = cursor.u64()?;
            if policy as usize >= store.arena.len() {
                return Err(CodecError::invalid(
                    at,
                    "principal policy index out of range",
                ));
            }
            store.states.push(PrincipalState {
                policy,
                answered,
                refused,
                consistent,
            });
        }
        store.answered_total = cursor.u64()?;
        store.refused_total = cursor.u64()?;
        Ok(store)
    }

    /// `(answered, refused)` counters for a principal.
    pub fn stats(&self, principal: PrincipalId) -> (u64, u64) {
        let s = &self.states[principal.index()];
        (u64::from(s.answered), u64::from(s.refused))
    }

    /// Total `(answered, refused)` across all principals.
    ///
    /// O(1): the totals are maintained on every submit rather than
    /// recomputed by walking the principal table.
    pub fn totals(&self) -> (u64, u64) {
        (self.answered_total, self.refused_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PolicyPartition;
    use fdc_core::{BaselineLabeler, QueryLabeler, SecurityViews};
    use fdc_cq::parser::parse_query;

    fn setup() -> (SecurityViews, BaselineLabeler) {
        let registry = SecurityViews::paper_example();
        let labeler = BaselineLabeler::new(registry.clone());
        (registry, labeler)
    }

    fn label(labeler: &BaselineLabeler, text: &str) -> DisclosureLabel {
        let catalog = labeler.security_views().catalog();
        labeler.label_query(&parse_query(catalog, text).unwrap())
    }

    #[test]
    fn principals_are_isolated_from_each_other() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let wall = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);

        let mut store = PolicyStore::new();
        let alice_app = store.register(wall.clone());
        let bob_app = store.register(wall);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        // Identical policies are interned into one arena entry.
        assert_eq!(store.unique_policies(), 1);

        let meetings = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        let contacts = label(&labeler, "Q(x, y, z) :- Contacts(x, y, z)");

        // Alice's app commits to Meetings, Bob's to Contacts.
        assert!(store.submit(alice_app, &meetings).is_allow());
        assert!(store.submit(bob_app, &contacts).is_allow());
        // Each is now locked out of the other side — independently.
        assert!(!store.submit(alice_app, &contacts).is_allow());
        assert!(!store.submit(bob_app, &meetings).is_allow());
        // But still fine on their own side.
        assert!(store.submit(alice_app, &meetings).is_allow());
        assert!(store.submit(bob_app, &contacts).is_allow());

        assert_eq!(store.stats(alice_app), (2, 1));
        assert_eq!(store.stats(bob_app), (2, 1));
        assert_eq!(store.totals(), (4, 2));
        // The consistency words evolved independently.
        assert_eq!(store.consistency_bits(alice_app), 0b01);
        assert_eq!(store.consistency_bits(bob_app), 0b10);
    }

    #[test]
    fn check_does_not_mutate_state() {
        let (registry, labeler) = setup();
        let policy = SecurityPolicy::allow_all(&registry);
        let mut store = PolicyStore::new();
        let p = store.register(policy);
        let meetings = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        assert!(store.check(p, &meetings).is_allow());
        assert!(store.check_packed(p, &meetings.pack()).is_allow());
        assert_eq!(store.stats(p), (0, 0));
        assert!(store.submit(p, &meetings).is_allow());
        assert_eq!(store.stats(p), (1, 0));
        assert!(store.check(p, &DisclosureLabel::bottom()).is_allow());
        assert!(store.check_packed(p, &[]).is_allow());
    }

    #[test]
    fn empty_policy_principals_refuse_everything() {
        let (_, labeler) = setup();
        let mut store = PolicyStore::new();
        let p = store.register(SecurityPolicy::new());
        assert_eq!(store.policy(p).len(), 0);
        let meetings = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        assert!(!store.submit(p, &meetings).is_allow());
        assert!(store.submit(p, &DisclosureLabel::bottom()).is_allow());
        assert_eq!(store.stats(p), (1, 1));
    }

    #[test]
    fn many_principals_scale_without_interference() {
        let (registry, labeler) = setup();
        let v2 = registry.id_by_name("V2").unwrap();
        let mut store = PolicyStore::new();
        let times_only =
            SecurityPolicy::stateless(PolicyPartition::from_views("times", &registry, [v2]));
        let ids: Vec<PrincipalId> = (0..1000)
            .map(|_| store.register(times_only.clone()))
            .collect();
        // A thousand principals, one compiled policy, 24 bytes each.
        assert_eq!(store.unique_policies(), 1);
        assert_eq!(store.state_bytes(), 1000 * 24);
        assert_eq!(store.arena().hits(), 999);
        let times = label(&labeler, "Q(x) :- Meetings(x, y)");
        let full = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        for &id in &ids {
            assert!(store.submit(id, &times).is_allow());
            assert!(!store.submit(id, &full).is_allow());
        }
        assert_eq!(store.totals(), (1000, 1000));
    }

    #[test]
    fn packed_submissions_walk_the_same_states_as_unpacked_ones() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let wall = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);
        let mut unpacked = PolicyStore::new();
        let mut packed = PolicyStore::new();
        let a = unpacked.register(wall.clone());
        let b = packed.register(wall);
        for text in [
            "Q(x, y) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
        ] {
            let l = label(&labeler, text);
            assert_eq!(
                unpacked.submit(a, &l),
                packed.submit_packed(b, &l.pack()),
                "submit disagrees on {text}"
            );
            assert_eq!(unpacked.consistency_bits(a), packed.consistency_bits(b));
        }
        assert_eq!(unpacked.stats(a), packed.stats(b));
        assert_eq!(unpacked.totals(), packed.totals());
    }

    #[test]
    fn batch_submission_matches_one_by_one_submission() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let wall = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);
        let mut batch_store = PolicyStore::new();
        let mut loop_store = PolicyStore::new();
        for _ in 0..3 {
            batch_store.register(wall.clone());
            loop_store.register(wall.clone());
        }
        let labels: Vec<Vec<PackedLabel>> = [
            "Q(x, y) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(y) :- Meetings(x, y)",
        ]
        .iter()
        .map(|text| label(&labeler, text).pack())
        .collect();
        let batch: Vec<(PrincipalId, &[PackedLabel])> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (PrincipalId((i % 3) as u32), l.as_slice()))
            .collect();
        let batched = batch_store.submit_batch(&batch);
        let looped: Vec<Decision> = batch
            .iter()
            .map(|(p, l)| loop_store.submit_packed(*p, l))
            .collect();
        assert_eq!(batched, looped);
        assert_eq!(batch_store.totals(), loop_store.totals());
    }

    #[test]
    fn grant_and_revoke_reintern_while_preserving_state() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let wall = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);
        let mut store = PolicyStore::new();
        let p = store.register(wall.clone());
        let bystander = store.register(wall);
        assert_eq!(store.unique_policies(), 1);

        let full = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        let times = label(&labeler, "Q(x) :- Meetings(x, y)");

        // Commit p to the Meetings side of the wall.
        assert!(store.submit(p, &full).is_allow());
        assert_eq!(store.consistency_bits(p), 0b01);

        // Revoke V1: the full Meetings view is no longer permitted, but the
        // consistency word and counters survive the re-intern untouched.
        store.revoke_view(p, &registry, v1);
        assert_eq!(store.consistency_bits(p), 0b01);
        assert_eq!(store.stats(p), (1, 0));
        assert!(!store.submit(p, &full).is_allow(), "revoked view must bite");
        assert!(!store.submit(p, &times).is_allow(), "V2 was never granted");

        // Grant V2: times queries work again, full rows stay revoked.
        store.grant_view(p, &registry, v2);
        assert_eq!(store.consistency_bits(p), 0b01);
        assert!(store.submit(p, &times).is_allow());
        assert!(!store.submit(p, &full).is_allow());
        assert_eq!(store.stats(p), (2, 3));

        // The bystander sharing the original policy is untouched, and the
        // mutated policies were interned as new arena entries.
        assert!(store.submit(bystander, &full).is_allow());
        assert_eq!(store.consistency_bits(bystander), 0b01);
        assert!(store.unique_policies() >= 3);

        // A grant/revoke round trip re-interns back to an existing entry
        // rather than growing the arena.
        let entries = store.unique_policies();
        store.grant_view(p, &registry, v1);
        store.revoke_view(p, &registry, v1);
        assert_eq!(store.unique_policies(), entries + 1); // only the +V1 form is new
    }

    #[test]
    fn replace_policy_rejects_partition_count_changes() {
        let (registry, _) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let mut store = PolicyStore::new();
        let p = store.register(SecurityPolicy::stateless(PolicyPartition::from_views(
            "only",
            &registry,
            [v1],
        )));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.replace_policy(p, SecurityPolicy::new());
        }));
        assert!(
            result.is_err(),
            "changing the partition count must be rejected"
        );
    }

    #[test]
    fn decide_packed_routes_commit_and_check() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let mut store = PolicyStore::new();
        let p = store.register(SecurityPolicy::stateless(PolicyPartition::from_views(
            "meetings",
            &registry,
            [v1],
        )));
        let packed = label(&labeler, "Q(x, y) :- Meetings(x, y)").pack();
        assert!(store.decide_packed(p, &packed, false).is_allow());
        assert_eq!(store.stats(p), (0, 0), "checks must not commit");
        assert!(store.decide_packed(p, &packed, true).is_allow());
        assert_eq!(store.stats(p), (1, 0));
    }

    #[test]
    fn encode_decode_round_trips_arena_states_and_totals() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let wall = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);
        let times =
            SecurityPolicy::stateless(PolicyPartition::from_views("times", &registry, [v2]));
        let mut store = PolicyStore::new();
        let a = store.register(wall.clone());
        let b = store.register(times);
        let c = store.register(wall);
        store.submit(a, &label(&labeler, "Q(x, y) :- Meetings(x, y)"));
        store.submit(a, &label(&labeler, "Q(x, y, z) :- Contacts(x, y, z)"));
        store.submit(b, &label(&labeler, "Q(x) :- Meetings(x, y)"));
        store.grant_view(c, &registry, v2);

        let mut bytes = Vec::new();
        store.encode_into(&mut bytes);
        let mut cursor = fdc_durability::codec::Cursor::new(&bytes);
        let back = PolicyStore::decode_from(&mut cursor).unwrap();
        cursor.expect_end().unwrap();

        assert_eq!(back.len(), store.len());
        assert_eq!(back.unique_policies(), store.unique_policies());
        assert_eq!(back.totals(), store.totals());
        for p in [a, b, c] {
            assert_eq!(back.consistency_bits(p), store.consistency_bits(p));
            assert_eq!(back.stats(p), store.stats(p));
            assert_eq!(back.policy(p).partitions(), store.policy(p).partitions());
        }
        // The rebuilt store keeps deciding identically.
        let mut live = store.clone();
        let mut recovered = back;
        for text in [
            "Q(x, y) :- Meetings(x, y)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
        ] {
            let l = label(&labeler, text);
            for p in [a, b, c] {
                assert_eq!(live.submit(p, &l), recovered.submit(p, &l), "{text}");
            }
        }
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let (registry, _) = setup();
        let mut store = PolicyStore::new();
        store.register(SecurityPolicy::allow_all(&registry));
        let mut bytes = Vec::new();
        store.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            let mut cursor = fdc_durability::codec::Cursor::new(&bytes[..cut]);
            assert!(PolicyStore::decode_from(&mut cursor).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn register_rejects_policies_with_too_many_partitions() {
        // Regression: the seed's register() skipped the MAX_PARTITIONS
        // validation, so a 65-partition policy overflowed the
        // `u64::MAX >> (64 - n)` shift at registration time with an
        // arithmetic panic in debug and UB-shaped garbage in release.
        let (registry, _) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let mut policy = SecurityPolicy::new();
        for i in 0..=crate::MAX_PARTITIONS {
            policy.push(PolicyPartition::from_views(
                format!("p{i}"),
                &registry,
                [v1],
            ));
        }
        let result = std::panic::catch_unwind(move || {
            let mut store = PolicyStore::new();
            store.register(policy)
        });
        let err = result.expect_err("65-partition policy must be rejected");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(
            message.contains("limited to 64 partitions"),
            "unexpected panic message: {message}"
        );
    }
}
