//! The multi-principal policy checker (the system benchmarked in Figure 6).
//!
//! Section 6.2 restricts its exposition to a single principal and notes that
//! the generalization to multiple principals is straightforward; the
//! evaluation (Section 7.2) then runs the policy checker with between 1,000
//! and 1,000,000 distinct principals, each with its own randomly generated
//! policy.  [`PolicyStore`] is that generalization: a dense table of
//! per-principal policies plus per-principal consistency bit vectors, sized
//! so that a policy decision touches a handful of cache lines.

use fdc_core::DisclosureLabel;

use crate::monitor::Decision;
use crate::policy::SecurityPolicy;

/// Identifier of a principal (an app, in the Facebook setting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(pub u32);

impl PrincipalId {
    /// Returns the id as a usize, convenient for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-principal enforcement state.
#[derive(Debug, Clone)]
struct PrincipalState {
    policy: SecurityPolicy,
    consistent: u64,
    answered: u64,
    refused: u64,
}

/// A policy checker for many principals.
#[derive(Debug, Clone, Default)]
pub struct PolicyStore {
    principals: Vec<PrincipalState>,
}

impl PolicyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PolicyStore::default()
    }

    /// Registers a principal with its policy and returns its id.
    pub fn register(&mut self, policy: SecurityPolicy) -> PrincipalId {
        let id = PrincipalId(self.principals.len() as u32);
        let n = policy.len();
        let consistent = if n == 0 { 0 } else { u64::MAX >> (64 - n) };
        self.principals.push(PrincipalState {
            policy,
            consistent,
            answered: 0,
            refused: 0,
        });
        id
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.principals.len()
    }

    /// True if no principals are registered.
    pub fn is_empty(&self) -> bool {
        self.principals.is_empty()
    }

    /// The policy of a principal.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn policy(&self, principal: PrincipalId) -> &SecurityPolicy {
        &self.principals[principal.index()].policy
    }

    /// Submits a query label on behalf of a principal, updating that
    /// principal's cumulative state exactly like
    /// [`ReferenceMonitor::submit`](crate::ReferenceMonitor::submit).
    pub fn submit(&mut self, principal: PrincipalId, label: &DisclosureLabel) -> Decision {
        let state = &mut self.principals[principal.index()];
        if label.is_bottom() {
            state.answered += 1;
            return Decision::Allow;
        }
        let mut surviving = 0u64;
        for (i, partition) in state.policy.partitions().iter().enumerate() {
            if state.consistent & (1 << i) != 0 && partition.allows(label) {
                surviving |= 1 << i;
            }
        }
        if surviving != 0 {
            state.consistent = surviving;
            state.answered += 1;
            Decision::Allow
        } else {
            state.refused += 1;
            Decision::Deny
        }
    }

    /// Pure check (no state update) for a principal.
    pub fn check(&self, principal: PrincipalId, label: &DisclosureLabel) -> Decision {
        let state = &self.principals[principal.index()];
        if label.is_bottom() {
            return Decision::Allow;
        }
        let allowed = state
            .policy
            .partitions()
            .iter()
            .enumerate()
            .any(|(i, p)| state.consistent & (1 << i) != 0 && p.allows(label));
        if allowed {
            Decision::Allow
        } else {
            Decision::Deny
        }
    }

    /// `(answered, refused)` counters for a principal.
    pub fn stats(&self, principal: PrincipalId) -> (u64, u64) {
        let s = &self.principals[principal.index()];
        (s.answered, s.refused)
    }

    /// Total `(answered, refused)` across all principals.
    pub fn totals(&self) -> (u64, u64) {
        self.principals
            .iter()
            .fold((0, 0), |(a, r), s| (a + s.answered, r + s.refused))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PolicyPartition;
    use fdc_core::{BaselineLabeler, QueryLabeler, SecurityViews};
    use fdc_cq::parser::parse_query;

    fn setup() -> (SecurityViews, BaselineLabeler) {
        let registry = SecurityViews::paper_example();
        let labeler = BaselineLabeler::new(registry.clone());
        (registry, labeler)
    }

    fn label(labeler: &BaselineLabeler, text: &str) -> DisclosureLabel {
        let catalog = labeler.security_views().catalog();
        labeler.label_query(&parse_query(catalog, text).unwrap())
    }

    #[test]
    fn principals_are_isolated_from_each_other() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let wall = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);

        let mut store = PolicyStore::new();
        let alice_app = store.register(wall.clone());
        let bob_app = store.register(wall);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());

        let meetings = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        let contacts = label(&labeler, "Q(x, y, z) :- Contacts(x, y, z)");

        // Alice's app commits to Meetings, Bob's to Contacts.
        assert!(store.submit(alice_app, &meetings).is_allow());
        assert!(store.submit(bob_app, &contacts).is_allow());
        // Each is now locked out of the other side — independently.
        assert!(!store.submit(alice_app, &contacts).is_allow());
        assert!(!store.submit(bob_app, &meetings).is_allow());
        // But still fine on their own side.
        assert!(store.submit(alice_app, &meetings).is_allow());
        assert!(store.submit(bob_app, &contacts).is_allow());

        assert_eq!(store.stats(alice_app), (2, 1));
        assert_eq!(store.stats(bob_app), (2, 1));
        assert_eq!(store.totals(), (4, 2));
    }

    #[test]
    fn check_does_not_mutate_state() {
        let (registry, labeler) = setup();
        let policy = SecurityPolicy::allow_all(&registry);
        let mut store = PolicyStore::new();
        let p = store.register(policy);
        let meetings = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        assert!(store.check(p, &meetings).is_allow());
        assert_eq!(store.stats(p), (0, 0));
        assert!(store.submit(p, &meetings).is_allow());
        assert_eq!(store.stats(p), (1, 0));
        assert!(store.check(p, &DisclosureLabel::bottom()).is_allow());
    }

    #[test]
    fn empty_policy_principals_refuse_everything() {
        let (_, labeler) = setup();
        let mut store = PolicyStore::new();
        let p = store.register(SecurityPolicy::new());
        assert_eq!(store.policy(p).len(), 0);
        let meetings = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        assert!(!store.submit(p, &meetings).is_allow());
        assert!(store.submit(p, &DisclosureLabel::bottom()).is_allow());
        assert_eq!(store.stats(p), (1, 1));
    }

    #[test]
    fn many_principals_scale_without_interference() {
        let (registry, labeler) = setup();
        let v2 = registry.id_by_name("V2").unwrap();
        let mut store = PolicyStore::new();
        let times_only =
            SecurityPolicy::stateless(PolicyPartition::from_views("times", &registry, [v2]));
        let ids: Vec<PrincipalId> = (0..1000)
            .map(|_| store.register(times_only.clone()))
            .collect();
        let times = label(&labeler, "Q(x) :- Meetings(x, y)");
        let full = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        for &id in &ids {
            assert!(store.submit(id, &times).is_allow());
            assert!(!store.submit(id, &full).is_allow());
        }
        assert_eq!(store.totals(), (1000, 1000));
    }
}
