//! Binary wire format for security policies — the `fdc-policy` slice of
//! the durable state plane.
//!
//! A [`SecurityPolicy`] serializes as its partitions in order, each as a
//! name plus the sorted raw `(relation, permitted mask)` pairs from
//! [`PolicyPartition::masks`].  Policies are stored in checkpoints as
//! the *sources* of the policy arena (see `PolicyStore::encode_into`)
//! and in WAL records for `ReplacePolicy` operations, so a decoded
//! policy must compare equal to — and intern identically with — the one
//! encoded.

use fdc_cq::RelId;
use fdc_durability::codec::{put_len, put_str, put_u32, put_u64, CodecError, Cursor};

use crate::partition::PolicyPartition;
use crate::policy::SecurityPolicy;

/// Encodes one [`PolicyPartition`].
pub fn encode_partition(partition: &PolicyPartition, out: &mut Vec<u8>) {
    put_str(out, &partition.name);
    let masks = partition.masks();
    put_len(out, masks.len());
    for (relation, mask) in masks {
        put_u32(out, relation.0);
        put_u64(out, mask);
    }
}

/// Decodes one [`PolicyPartition`].
pub fn decode_partition(cursor: &mut Cursor<'_>) -> Result<PolicyPartition, CodecError> {
    let name = cursor.str()?.to_owned();
    let num_masks = cursor.count(12)?;
    let mut masks = Vec::with_capacity(num_masks);
    for _ in 0..num_masks {
        let at = cursor.pos();
        let relation = RelId(cursor.u32()?);
        let mask = cursor.u64()?;
        if mask == 0 {
            return Err(CodecError::invalid(at, "zero mask in partition encoding"));
        }
        masks.push((relation, mask));
    }
    Ok(PolicyPartition::from_masks(name, masks))
}

/// Encodes a whole [`SecurityPolicy`] (its partitions in order).
pub fn encode_policy(policy: &SecurityPolicy, out: &mut Vec<u8>) {
    put_len(out, policy.len());
    for partition in policy.partitions() {
        encode_partition(partition, out);
    }
}

/// Decodes a [`SecurityPolicy`].
pub fn decode_policy(cursor: &mut Cursor<'_>) -> Result<SecurityPolicy, CodecError> {
    let num_partitions = cursor.count(16)?;
    let mut policy = SecurityPolicy::new();
    for _ in 0..num_partitions {
        policy.push(decode_partition(cursor)?);
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::SecurityViews;

    #[test]
    fn policies_round_trip_eq_identical() {
        let registry = SecurityViews::paper_example();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let policies = [
            SecurityPolicy::new(),
            SecurityPolicy::stateless(PolicyPartition::from_views("w", &registry, [v1, v2])),
            SecurityPolicy::chinese_wall([
                PolicyPartition::from_views("meetings-side", &registry, [v1, v2]),
                PolicyPartition::from_views("contacts-side", &registry, [v3]),
            ]),
            SecurityPolicy::allow_all(&registry),
        ];
        for policy in &policies {
            let mut out = Vec::new();
            encode_policy(policy, &mut out);
            let mut cursor = Cursor::new(&out);
            let back = decode_policy(&mut cursor).unwrap();
            cursor.expect_end().unwrap();
            assert_eq!(back.len(), policy.len());
            for (a, b) in policy.partitions().iter().zip(back.partitions()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn truncated_policy_bytes_are_an_error() {
        let registry = SecurityViews::paper_example();
        let policy = SecurityPolicy::allow_all(&registry);
        let mut out = Vec::new();
        encode_policy(&policy, &mut out);
        for cut in 0..out.len() {
            let mut cursor = Cursor::new(&out[..cut]);
            assert!(decode_policy(&mut cursor).is_err(), "cut {cut}");
        }
    }
}
