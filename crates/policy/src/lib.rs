//! Security policies and the reference monitor.
//!
//! This crate implements the policy side of the paper (Sections 3.4 and
//! 6.2): given the disclosure labels produced by `fdc-core`, decide whether
//! each incoming query may be answered without ever exceeding the principal's
//! permitted disclosure — including *cumulative* disclosure across the whole
//! query history and stateful Chinese-Wall policies.
//!
//! Two representations of policies are provided:
//!
//! * the **formal** one of Definition 3.9 ([`lattice_policy`]): a down-closed
//!   subset of an explicit lattice of disclosure labels, built on
//!   `fdc-order`.  Faithful to the theory, but exponential to materialize —
//!   used for the worked examples and to validate the compact
//!   representation.
//! * the **compact** one of Section 6.2 ([`policy`], [`monitor`],
//!   [`store`]): a policy is a small collection of *partitions*, each a set
//!   of permitted single-atom security views; the reference monitor keeps
//!   one bit per partition and makes decisions with a handful of bit-mask
//!   operations per query.  This is the representation benchmarked in the
//!   paper's Figure 6.
//!
//! The compact representation is further *compiled and interned*
//! ([`compiled`]): every enforcement surface — the single-principal
//! [`ReferenceMonitor`], the flat multi-principal [`PolicyStore`] and the
//! multi-core [`ShardedPolicyStore`] —
//! decides against one shared [`CompiledPolicy`]
//! form, deduplicated across principals by the
//! [`PolicyArena`] so per-principal state is 24
//! bytes and the paper's million-principal axis runs by default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod compiled;
pub mod lattice_policy;
pub mod monitor;
pub mod partition;
pub mod policy;
pub mod shard;
pub mod store;
pub mod wire;

pub use audit::{audit_app, requested_views, AuditReport};
pub use compiled::{
    initial_consistency_word, CompiledPartition, CompiledPolicy, PolicyArena, MAX_PARTITIONS,
};
pub use monitor::{Decision, ReferenceMonitor};
pub use partition::PolicyPartition;
pub use policy::SecurityPolicy;
pub use shard::{ShardedPolicyStore, DEFAULT_PARALLEL_THRESHOLD};
pub use store::{PolicyStore, PrincipalId};
