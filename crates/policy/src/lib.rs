//! Security policies and the reference monitor.
//!
//! This crate implements the policy side of the paper (Sections 3.4 and
//! 6.2): given the disclosure labels produced by `fdc-core`, decide whether
//! each incoming query may be answered without ever exceeding the principal's
//! permitted disclosure — including *cumulative* disclosure across the whole
//! query history and stateful Chinese-Wall policies.
//!
//! Two representations of policies are provided:
//!
//! * the **formal** one of Definition 3.9 ([`lattice_policy`]): a down-closed
//!   subset of an explicit lattice of disclosure labels, built on
//!   `fdc-order`.  Faithful to the theory, but exponential to materialize —
//!   used for the worked examples and to validate the compact
//!   representation.
//! * the **compact** one of Section 6.2 ([`policy`], [`monitor`],
//!   [`store`]): a policy is a small collection of *partitions*, each a set
//!   of permitted single-atom security views; the reference monitor keeps
//!   one bit per partition and makes decisions with a handful of bit-mask
//!   operations per query.  This is the representation benchmarked in the
//!   paper's Figure 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod lattice_policy;
pub mod monitor;
pub mod partition;
pub mod policy;
pub mod store;

pub use audit::{audit_app, AuditReport};
pub use monitor::{Decision, ReferenceMonitor};
pub use partition::PolicyPartition;
pub use policy::SecurityPolicy;
pub use store::{PolicyStore, PrincipalId};
