//! The reference monitor (Sections 3.4 and 6.2).
//!
//! The monitor inspects each incoming query's disclosure label and accepts
//! or refuses the query so that the security policy is never violated, even
//! cumulatively.  Following Section 6.2 it does **not** keep the query
//! history: it keeps one bit per policy partition ("is the set of queries
//! answered so far still below `Wi`?") and updates those bits only when a
//! query is answered — Example 6.3's `⟨1, 1⟩ → ⟨1, 0⟩ → …` walk-through.
//!
//! On construction the monitor *compiles* the policy into a
//! [`CompiledPolicy`] — per partition, a flat array of per-relation
//! permitted [`ViewMask`](fdc_core::ViewMask)s sorted by relation id — so
//! the per-atom test "is some permitted view able to answer this atom?" is
//! a binary search plus one AND, no hash lookups on the hot path.  The same
//! compiled form serves [`ReferenceMonitor::check_packed`] /
//! [`ReferenceMonitor::submit_packed`], which consume the labeler's packed
//! 64-bit labels (Section 6.1) directly, and — via the interning arena of
//! [`crate::compiled`] — the multi-principal
//! [`PolicyStore`](crate::PolicyStore): the monitor is a thin single
//! principal view over the exact representation the store decides with.

use fdc_core::{DisclosureLabel, PackedLabel};

use crate::compiled::CompiledPolicy;
use crate::policy::SecurityPolicy;

pub use crate::compiled::MAX_PARTITIONS;

/// The decision taken for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The query may be answered.
    Allow,
    /// Answering the query would violate the policy (possibly only in
    /// combination with previously answered queries); it is refused.
    Deny,
}

impl Decision {
    /// True for [`Decision::Allow`].
    pub fn is_allow(self) -> bool {
        matches!(self, Decision::Allow)
    }
}

/// A stateful reference monitor for one principal.
///
/// # Example
///
/// Example 6.2/6.3 of the paper: a Chinese Wall over Meetings and Contacts.
///
/// ```
/// use fdc_core::{BaselineLabeler, QueryLabeler, SecurityViews};
/// use fdc_cq::parser::parse_query;
/// use fdc_policy::{PolicyPartition, ReferenceMonitor, SecurityPolicy};
///
/// let registry = SecurityViews::paper_example();
/// let catalog = registry.catalog().clone();
/// let labeler = BaselineLabeler::new(registry.clone());
/// let v1 = registry.id_by_name("V1").unwrap();
/// let v3 = registry.id_by_name("V3").unwrap();
/// let policy = SecurityPolicy::chinese_wall([
///     PolicyPartition::from_views("meetings", &registry, [v1]),
///     PolicyPartition::from_views("contacts", &registry, [v3]),
/// ]);
/// let mut monitor = ReferenceMonitor::new(policy);
///
/// let meetings_query = parse_query(&catalog, "Q(x, y) :- Meetings(x, y)").unwrap();
/// let contacts_query = parse_query(&catalog, "Q(x, y, z) :- Contacts(x, y, z)").unwrap();
///
/// // The first query commits the principal to the Meetings side of the wall…
/// assert!(monitor.submit(&labeler.label_query(&meetings_query)).is_allow());
/// // …so Contacts queries are now refused.
/// assert!(!monitor.submit(&labeler.label_query(&contacts_query)).is_allow());
/// // Meetings queries keep working.
/// assert!(monitor.submit(&labeler.label_query(&meetings_query)).is_allow());
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceMonitor {
    policy: SecurityPolicy,
    /// The policy compiled for the hot path (shared representation with
    /// [`PolicyStore`](crate::PolicyStore)).
    compiled: CompiledPolicy,
    /// Bit `i` set ⇔ the queries answered so far are below partition `i`.
    consistent: u64,
    answered: u64,
    refused: u64,
}

impl ReferenceMonitor {
    /// Creates a monitor enforcing `policy`, with an empty query history.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than [`MAX_PARTITIONS`] partitions.
    pub fn new(policy: SecurityPolicy) -> Self {
        let compiled = CompiledPolicy::compile(&policy);
        let consistent = compiled.initial_word();
        ReferenceMonitor {
            policy,
            compiled,
            consistent,
            answered: 0,
            refused: 0,
        }
    }

    /// The policy being enforced.
    pub fn policy(&self) -> &SecurityPolicy {
        &self.policy
    }

    /// The consistency bit vector (Example 6.3): bit `i` is set when the
    /// answered queries are still below partition `i`.
    pub fn consistency_bits(&self) -> u64 {
        self.consistent
    }

    /// Number of queries answered so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// Number of queries refused so far.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Would answering a query with this label keep the policy satisfied?
    ///
    /// Pure check: does not update the monitor state.
    pub fn check(&self, label: &DisclosureLabel) -> Decision {
        if label.is_bottom() || self.compiled.surviving_bits(self.consistent, label) != 0 {
            Decision::Allow
        } else {
            Decision::Deny
        }
    }

    /// Submits a query's label: answers it if possible (updating the
    /// cumulative state) and refuses it otherwise (leaving the state
    /// unchanged, as in Example 6.3).
    pub fn submit(&mut self, label: &DisclosureLabel) -> Decision {
        if label.is_bottom() {
            self.answered += 1;
            return Decision::Allow;
        }
        let surviving = self.compiled.surviving_bits(self.consistent, label);
        self.apply(surviving)
    }

    /// [`check`](Self::check) on the packed 64-bit label representation
    /// (Section 6.1), e.g. the output of
    /// [`BitVectorLabeler::label_packed`](fdc_core::BitVectorLabeler::label_packed).
    ///
    /// Packed atom labels carry 32-bit view masks, so this path applies to
    /// registries with at most 32 views per relation (the paper's layout;
    /// wider registries must use the unpacked [`check`](Self::check)).
    pub fn check_packed(&self, label: &[PackedLabel]) -> Decision {
        if label.is_empty() || self.compiled.surviving_bits_packed(self.consistent, label) != 0 {
            Decision::Allow
        } else {
            Decision::Deny
        }
    }

    /// [`submit`](Self::submit) on the packed 64-bit label representation.
    pub fn submit_packed(&mut self, label: &[PackedLabel]) -> Decision {
        if label.is_empty() {
            self.answered += 1;
            return Decision::Allow;
        }
        let surviving = self.compiled.surviving_bits_packed(self.consistent, label);
        self.apply(surviving)
    }

    /// Commits a submit decision given the surviving partition bits.
    fn apply(&mut self, surviving: u64) -> Decision {
        if surviving != 0 {
            self.consistent = surviving;
            self.answered += 1;
            Decision::Allow
        } else {
            self.refused += 1;
            Decision::Deny
        }
    }

    /// Resets the history (e.g. when the principal's session ends).
    pub fn reset(&mut self) {
        self.consistent = self.compiled.initial_word();
        self.answered = 0;
        self.refused = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PolicyPartition;
    use fdc_core::{BaselineLabeler, QueryLabeler, SecurityViews};
    use fdc_cq::parser::parse_query;

    struct Fixture {
        labeler: BaselineLabeler,
        registry: SecurityViews,
    }

    impl Fixture {
        fn new() -> Self {
            let registry = SecurityViews::paper_example();
            Fixture {
                labeler: BaselineLabeler::new(registry.clone()),
                registry,
            }
        }

        fn label(&self, text: &str) -> DisclosureLabel {
            let catalog = self.registry.catalog();
            self.labeler
                .label_query(&parse_query(catalog, text).unwrap())
        }

        fn chinese_wall(&self) -> SecurityPolicy {
            let v1 = self.registry.id_by_name("V1").unwrap();
            let v3 = self.registry.id_by_name("V3").unwrap();
            SecurityPolicy::chinese_wall([
                PolicyPartition::from_views("meetings", &self.registry, [v1]),
                PolicyPartition::from_views("contacts", &self.registry, [v3]),
            ])
        }
    }

    #[test]
    fn example_6_3_bit_vector_walkthrough() {
        let fx = Fixture::new();
        let mut monitor = ReferenceMonitor::new(fx.chinese_wall());
        // Initially ⟨1, 1⟩.
        assert_eq!(monitor.consistency_bits(), 0b11);

        // V6-style Contacts projection: allowed, commits to partition 2
        // (bit 1 in our 0-indexed encoding): ⟨0, 1⟩ ... the paper's example
        // uses Contacts views so the surviving partition is "contacts".
        let contacts_proj = fx.label("Q(x, y) :- Contacts(x, y, z)");
        assert!(monitor.submit(&contacts_proj).is_allow());
        assert_eq!(monitor.consistency_bits(), 0b10);

        // Another Contacts projection: still allowed, bits unchanged.
        let contacts_proj2 = fx.label("Q(x, z) :- Contacts(x, y, z)");
        assert!(monitor.submit(&contacts_proj2).is_allow());
        assert_eq!(monitor.consistency_bits(), 0b10);

        // A Meetings query would leave no consistent partition: refused, and
        // crucially the bits stay ⟨0, 1⟩ rather than dropping to ⟨0, 0⟩.
        let meetings = fx.label("Q(x) :- Meetings(x, y)");
        assert!(!monitor.submit(&meetings).is_allow());
        assert_eq!(monitor.consistency_bits(), 0b10);

        // Contacts queries continue to be answered afterwards.
        assert!(monitor.submit(&contacts_proj).is_allow());
        assert_eq!(monitor.answered(), 3);
        assert_eq!(monitor.refused(), 1);
    }

    #[test]
    fn stateless_policies_never_depend_on_history() {
        let fx = Fixture::new();
        let v2 = fx.registry.id_by_name("V2").unwrap();
        let policy =
            SecurityPolicy::stateless(PolicyPartition::from_views("times", &fx.registry, [v2]));
        let mut monitor = ReferenceMonitor::new(policy);

        let times = fx.label("Q(x) :- Meetings(x, y)");
        let full = fx.label("Q(x, y) :- Meetings(x, y)");
        for _ in 0..5 {
            assert!(monitor.submit(&times).is_allow());
            assert!(!monitor.submit(&full).is_allow());
        }
        // check() is pure: repeated checks do not change decisions.
        assert!(monitor.check(&times).is_allow());
        assert!(!monitor.check(&full).is_allow());
        assert_eq!(monitor.answered(), 5);
        assert_eq!(monitor.refused(), 5);
    }

    #[test]
    fn cumulative_disclosure_is_limited_even_within_one_partition() {
        let fx = Fixture::new();
        // Permit only V2 (meeting times) and V3 (contacts): the two
        // projections of Meetings can never be combined into the full view
        // because V1 is simply not permitted.
        let v2 = fx.registry.id_by_name("V2").unwrap();
        let v3 = fx.registry.id_by_name("V3").unwrap();
        let policy = SecurityPolicy::stateless(PolicyPartition::from_views(
            "times+contacts",
            &fx.registry,
            [v2, v3],
        ));
        let mut monitor = ReferenceMonitor::new(policy);

        assert!(monitor
            .submit(&fx.label("Q(x) :- Meetings(x, y)"))
            .is_allow());
        assert!(monitor
            .submit(&fx.label("Q(x, y, z) :- Contacts(x, y, z)"))
            .is_allow());
        // The full Meetings relation stays out of reach.
        assert!(!monitor
            .submit(&fx.label("Q(x, y) :- Meetings(x, y)"))
            .is_allow());
        // So does the join (its Meetings atom needs V1).
        assert!(!monitor
            .submit(&fx.label("Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')"))
            .is_allow());
    }

    #[test]
    fn bottom_labels_are_always_allowed() {
        let fx = Fixture::new();
        let mut monitor = ReferenceMonitor::new(SecurityPolicy::new());
        assert!(monitor.submit(&DisclosureLabel::bottom()).is_allow());
        assert!(monitor.check(&DisclosureLabel::bottom()).is_allow());
        // But anything else is refused by the empty policy.
        assert!(!monitor
            .submit(&fx.label("Q(x) :- Meetings(x, y)"))
            .is_allow());
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let fx = Fixture::new();
        let mut monitor = ReferenceMonitor::new(fx.chinese_wall());
        assert!(monitor
            .submit(&fx.label("Q(x, y) :- Contacts(x, y, z)"))
            .is_allow());
        assert_eq!(monitor.consistency_bits(), 0b10);
        monitor.reset();
        assert_eq!(monitor.consistency_bits(), 0b11);
        assert_eq!(monitor.answered(), 0);
        assert_eq!(monitor.refused(), 0);
        // After the reset the principal can choose the Meetings side instead.
        assert!(monitor
            .submit(&fx.label("Q(x, y) :- Meetings(x, y)"))
            .is_allow());
        assert_eq!(monitor.consistency_bits(), 0b01);
    }

    #[test]
    fn packed_decisions_agree_with_unpacked_ones() {
        let fx = Fixture::new();
        let queries = [
            "Q(x, y) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
        ];
        let mut unpacked = ReferenceMonitor::new(fx.chinese_wall());
        let mut packed = ReferenceMonitor::new(fx.chinese_wall());
        for text in queries {
            let label = fx.label(text);
            let packed_label = label.pack();
            // Pure checks agree before any state change...
            assert_eq!(
                unpacked.check(&label),
                packed.check_packed(&packed_label),
                "check disagrees on {text}"
            );
            // ...and submits walk the two monitors through identical states.
            assert_eq!(
                unpacked.submit(&label),
                packed.submit_packed(&packed_label),
                "submit disagrees on {text}"
            );
            assert_eq!(unpacked.consistency_bits(), packed.consistency_bits());
        }
        assert_eq!(unpacked.answered(), packed.answered());
        assert_eq!(unpacked.refused(), packed.refused());
    }

    #[test]
    fn packed_bottom_labels_are_always_allowed() {
        let fx = Fixture::new();
        let mut monitor = ReferenceMonitor::new(fx.chinese_wall());
        assert!(monitor.check_packed(&[]).is_allow());
        assert!(monitor.submit_packed(&[]).is_allow());
        assert_eq!(monitor.answered(), 1);
        // An empty policy refuses every non-bottom packed label.
        let mut empty = ReferenceMonitor::new(SecurityPolicy::new());
        let label = fx.label("Q(x) :- Meetings(x, y)").pack();
        assert!(!empty.check_packed(&label).is_allow());
        assert!(!empty.submit_packed(&label).is_allow());
    }

    #[test]
    fn decision_helpers() {
        assert!(Decision::Allow.is_allow());
        assert!(!Decision::Deny.is_allow());
        let fx = Fixture::new();
        let monitor = ReferenceMonitor::new(SecurityPolicy::allow_all(&fx.registry));
        assert_eq!(monitor.policy().len(), 1);
        assert!(monitor
            .check(&fx.label("Q(x, y) :- Meetings(x, y)"))
            .is_allow());
    }

    #[test]
    fn monitors_reject_oversized_policies() {
        let registry = SecurityViews::paper_example();
        let v1 = registry.id_by_name("V1").unwrap();
        let mut policy = SecurityPolicy::new();
        for i in 0..=MAX_PARTITIONS {
            policy.push(PolicyPartition::from_views(
                format!("p{i}"),
                &registry,
                [v1],
            ));
        }
        let result = std::panic::catch_unwind(|| ReferenceMonitor::new(policy));
        assert!(result.is_err(), "65-partition policy must be rejected");
    }
}
