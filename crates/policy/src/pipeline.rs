//! The fused admission pipeline: query → cached label → packed decision.
//!
//! **Deprecated.** [`AdmissionPipeline`] was the serving front door of
//! PR 2: a one-shot batch fuse of the caching labeler and the sharded
//! store, frozen at construction time.  The `fdc-service` crate's
//! `DisclosureService` supersedes it — same fused hot path, plus online
//! policy mutation (grant/revoke/view-addition) with epoch-based
//! incremental relabeling, per-principal audit history, and a mixed
//! submit/check/mutation request loop.  The pipeline remains as a thin
//! compatibility wrapper over the same two stages for callers that only
//! ever admit a frozen workload; new code should construct a
//! `DisclosureService`.
//!
//! Batches run both stages on all cores —
//! [`CachedLabeler::label_batch_packed`] shards the labeling,
//! [`ShardedPolicyStore::submit_batch_parallel`] shards the decisions — and
//! preserve request order.

use fdc_core::{CachedLabeler, PackedLabel};
use fdc_cq::ConjunctiveQuery;

use crate::monitor::Decision;
use crate::policy::SecurityPolicy;
use crate::shard::ShardedPolicyStore;
use crate::store::PrincipalId;

/// A fused query-admission engine: a shared caching labeler in front of a
/// sharded multi-principal policy store.
#[deprecated(
    since = "0.1.0",
    note = "superseded by `fdc_service::DisclosureService`, which serves the same \
            fused path plus online policy mutation with incremental relabeling"
)]
#[derive(Debug)]
pub struct AdmissionPipeline {
    labeler: CachedLabeler,
    store: ShardedPolicyStore,
}

#[allow(deprecated)]
impl AdmissionPipeline {
    /// Builds a pipeline from its two stages.
    pub fn new(labeler: CachedLabeler, store: ShardedPolicyStore) -> Self {
        AdmissionPipeline { labeler, store }
    }

    /// The labeling stage.
    pub fn labeler(&self) -> &CachedLabeler {
        &self.labeler
    }

    /// The enforcement stage.
    pub fn store(&self) -> &ShardedPolicyStore {
        &self.store
    }

    /// Mutable access to the enforcement stage (e.g. to reset or inspect
    /// principals directly).
    pub fn store_mut(&mut self) -> &mut ShardedPolicyStore {
        &mut self.store
    }

    /// Registers a principal with its policy and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than
    /// [`MAX_PARTITIONS`](crate::MAX_PARTITIONS) partitions.
    pub fn register(&mut self, policy: SecurityPolicy) -> PrincipalId {
        self.store.register(policy)
    }

    /// Admits or refuses one query on behalf of a principal, updating the
    /// principal's cumulative disclosure state.
    pub fn admit(&mut self, principal: PrincipalId, query: &ConjunctiveQuery) -> Decision {
        let packed = self.labeler.label_packed(query);
        self.store.submit_packed(principal, &packed)
    }

    /// Pure check: would this query be admitted right now?
    pub fn probe(&self, principal: PrincipalId, query: &ConjunctiveQuery) -> Decision {
        let packed = self.labeler.label_packed(query);
        self.store.check_packed(principal, &packed)
    }

    /// Admits a batch of requests on all cores, returning one decision per
    /// request in request order.
    ///
    /// Labeling is sharded across worker threads that share the labeler's
    /// caches; the packed labels are then partitioned by policy shard and
    /// decided with one worker per shard.
    ///
    /// # Panics
    ///
    /// Panics if `principals` and `queries` differ in length.
    pub fn admit_batch(
        &mut self,
        principals: &[PrincipalId],
        queries: &[ConjunctiveQuery],
    ) -> Vec<Decision> {
        assert_eq!(
            principals.len(),
            queries.len(),
            "one principal per query required"
        );
        let packed = self.labeler.label_batch_packed(queries);
        let batch: Vec<(PrincipalId, &[PackedLabel])> = principals
            .iter()
            .copied()
            .zip(packed.iter().map(Vec::as_slice))
            .collect();
        self.store.submit_batch_parallel(&batch)
    }

    /// Total `(answered, refused)` across all principals.
    pub fn totals(&self) -> (u64, u64) {
        self.store.totals()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::partition::PolicyPartition;
    use crate::store::PolicyStore;
    use fdc_core::{QueryLabeler, SecurityViews};
    use fdc_cq::parser::parse_query;

    fn pipeline(num_shards: usize, principals: usize) -> (AdmissionPipeline, SecurityViews) {
        let registry = SecurityViews::paper_example();
        let labeler = CachedLabeler::new(registry.clone());
        let mut store = ShardedPolicyStore::new(num_shards);
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        for _ in 0..principals {
            store.register(SecurityPolicy::chinese_wall([
                PolicyPartition::from_views("meetings", &registry, [v1]),
                PolicyPartition::from_views("contacts", &registry, [v3]),
            ]));
        }
        (AdmissionPipeline::new(labeler, store), registry)
    }

    #[test]
    fn the_pipeline_walks_the_chinese_wall() {
        let (mut pipeline, registry) = pipeline(2, 1);
        let catalog = registry.catalog();
        let p = PrincipalId(0);
        let meetings = parse_query(catalog, "Q(x, y) :- Meetings(x, y)").unwrap();
        let contacts = parse_query(catalog, "Q(x, y, z) :- Contacts(x, y, z)").unwrap();
        assert!(pipeline.probe(p, &meetings).is_allow());
        assert!(pipeline.probe(p, &contacts).is_allow());
        assert!(pipeline.admit(p, &meetings).is_allow());
        // Committed to the Meetings side: Contacts now refused, probe agrees.
        assert!(!pipeline.probe(p, &contacts).is_allow());
        assert!(!pipeline.admit(p, &contacts).is_allow());
        assert!(pipeline.admit(p, &meetings).is_allow());
        assert_eq!(pipeline.totals(), (2, 1));
        assert_eq!(pipeline.store().len(), 1);
        // The second admission of the same shape was a label-cache hit.
        assert!(pipeline.labeler().stats().hits > 0);
    }

    #[test]
    fn batch_admission_matches_one_by_one_admission() {
        let (mut batched, registry) = pipeline(3, 5);
        let (mut looped, _) = pipeline(3, 5);
        let catalog = registry.catalog();
        let texts = [
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
        ];
        let queries: Vec<ConjunctiveQuery> = texts
            .iter()
            .cycle()
            .take(60)
            .map(|t| parse_query(catalog, t).unwrap())
            .collect();
        let principals: Vec<PrincipalId> = (0..60).map(|i| PrincipalId(i % 5)).collect();
        let batch_decisions = batched.admit_batch(&principals, &queries);
        let loop_decisions: Vec<Decision> = principals
            .iter()
            .zip(&queries)
            .map(|(p, q)| looped.admit(*p, q))
            .collect();
        assert_eq!(batch_decisions, loop_decisions);
        assert_eq!(batched.totals(), looped.totals());
        assert!(batched.admit_batch(&[], &[]).is_empty());
    }

    #[test]
    fn pipeline_decisions_match_a_flat_store_with_a_plain_labeler() {
        let registry = SecurityViews::paper_example();
        let (mut pipeline, _) = pipeline(4, 3);
        let mut flat = PolicyStore::new();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        for _ in 0..3 {
            flat.register(SecurityPolicy::chinese_wall([
                PolicyPartition::from_views("meetings", &registry, [v1]),
                PolicyPartition::from_views("contacts", &registry, [v3]),
            ]));
        }
        let labeler = fdc_core::BaselineLabeler::new(registry.clone());
        let catalog = registry.catalog();
        for (i, text) in [
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
        ]
        .iter()
        .cycle()
        .take(30)
        .enumerate()
        {
            let query = parse_query(catalog, text).unwrap();
            let p = PrincipalId((i % 3) as u32);
            let expected = flat.submit(p, &labeler.label_query(&query));
            assert_eq!(pipeline.admit(p, &query), expected, "disagrees on {text}");
        }
    }
}
