//! Policy partitions: sets of permitted single-atom security views.
//!
//! Section 6.2 represents a security policy "as a collection of sets of
//! single-atom disclosure labels, say `{W1, W2, …, Wk}`", enforcing the
//! invariant that the queries answered so far stay below *some* `Wi`.  A
//! [`PolicyPartition`] is one such `Wi`: per base relation, a bit mask of the
//! security views the principal is allowed to access.
//!
//! A disclosure label is below a partition exactly when every one of its
//! atom labels is answerable from a permitted view, i.e. when
//! `ℓ⁺(atom) ∩ permitted(relation) ≠ ∅` — a single AND per atom in the
//! packed representation.

use std::collections::HashMap;

use fdc_core::{AtomLabel, DisclosureLabel, SecurityViewId, SecurityViews, ViewMask};
use fdc_cq::RelId;

/// One partition `Wi` of a security policy: the set of security views a
/// principal may draw on, organized per base relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyPartition {
    permitted: HashMap<RelId, ViewMask>,
    /// Human-readable name, e.g. `"meetings-side"` for a Chinese Wall.
    pub name: String,
}

impl PolicyPartition {
    /// Creates an empty (nothing permitted) partition.
    pub fn new(name: impl Into<String>) -> Self {
        PolicyPartition {
            permitted: HashMap::new(),
            name: name.into(),
        }
    }

    /// Builds a partition from a list of permitted security views.
    pub fn from_views<I>(name: impl Into<String>, registry: &SecurityViews, views: I) -> Self
    where
        I: IntoIterator<Item = SecurityViewId>,
    {
        let mut partition = PolicyPartition::new(name);
        for id in views {
            partition.permit(registry, id);
        }
        partition
    }

    /// Builds a partition from view *names* registered in `registry`.
    ///
    /// Unknown names are ignored and reported in the returned list so the
    /// caller can surface configuration mistakes.
    pub fn from_view_names<'a, I>(
        name: impl Into<String>,
        registry: &SecurityViews,
        names: I,
    ) -> (Self, Vec<&'a str>)
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut partition = PolicyPartition::new(name);
        let mut unknown = Vec::new();
        for view_name in names {
            match registry.id_by_name(view_name) {
                Some(id) => partition.permit(registry, id),
                None => unknown.push(view_name),
            }
        }
        (partition, unknown)
    }

    /// Permits one more security view.
    pub fn permit(&mut self, registry: &SecurityViews, id: SecurityViewId) {
        let view = registry.view(id);
        *self.permitted.entry(view.relation).or_insert(0) |= 1u64 << view.bit;
    }

    /// Withdraws a previously permitted security view (a no-op if the view
    /// was not permitted).  The online-mutation counterpart of
    /// [`permit`](Self::permit), used by `RevokeView` operations.
    pub fn revoke(&mut self, registry: &SecurityViews, id: SecurityViewId) {
        let view = registry.view(id);
        if let Some(mask) = self.permitted.get_mut(&view.relation) {
            *mask &= !(1u64 << view.bit);
            if *mask == 0 {
                self.permitted.remove(&view.relation);
            }
        }
    }

    /// The mask of permitted views for a relation (0 if none).
    pub fn permitted_mask(&self, relation: RelId) -> ViewMask {
        self.permitted.get(&relation).copied().unwrap_or(0)
    }

    /// Number of permitted views across all relations.
    pub fn num_permitted(&self) -> usize {
        self.permitted
            .values()
            .map(|m| m.count_ones() as usize)
            .sum()
    }

    /// True if nothing is permitted.
    pub fn is_empty(&self) -> bool {
        self.permitted.values().all(|m| *m == 0)
    }

    /// Is a single atom label answerable under this partition?
    pub fn allows_atom(&self, atom: &AtomLabel) -> bool {
        atom.mask & self.permitted_mask(atom.relation) != 0
    }

    /// Is a whole disclosure label below this partition
    /// (`label ⪯ Wi`)?  Every atom must be answerable from a permitted view.
    pub fn allows(&self, label: &DisclosureLabel) -> bool {
        label.atoms().iter().all(|a| self.allows_atom(a))
    }

    /// The partition's raw `(relation, permitted mask)` pairs, sorted by
    /// relation for a deterministic order — the serialization view of
    /// the partition (see `fdc_policy::wire`).
    pub fn masks(&self) -> Vec<(RelId, ViewMask)> {
        let mut masks: Vec<(RelId, ViewMask)> = self
            .permitted
            .iter()
            .filter(|(_, m)| **m != 0)
            .map(|(r, m)| (*r, *m))
            .collect();
        masks.sort();
        masks
    }

    /// Rebuilds a partition from raw `(relation, permitted mask)` pairs —
    /// the inverse of [`masks`](Self::masks), used when decoding policies
    /// from a checkpoint.  Pairs with a zero mask are dropped (they are
    /// never stored), repeated relations OR together.
    pub fn from_masks<I>(name: impl Into<String>, masks: I) -> Self
    where
        I: IntoIterator<Item = (RelId, ViewMask)>,
    {
        let mut partition = PolicyPartition::new(name);
        for (relation, mask) in masks {
            if mask != 0 {
                *partition.permitted.entry(relation).or_insert(0) |= mask;
            }
        }
        partition
    }

    /// The relations for which this partition permits at least one view.
    pub fn relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.permitted
            .iter()
            .filter(|(_, m)| **m != 0)
            .map(|(r, _)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::{BaselineLabeler, QueryLabeler};
    use fdc_cq::{parser::parse_query, Catalog};

    fn setup() -> (Catalog, SecurityViews, BaselineLabeler) {
        let registry = SecurityViews::paper_example();
        let catalog = registry.catalog().clone();
        let labeler = BaselineLabeler::new(registry.clone());
        (catalog, registry, labeler)
    }

    #[test]
    fn partitions_built_from_views_permit_those_views() {
        let (_, registry, _) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let p = PolicyPartition::from_views("both-sides", &registry, [v1, v3]);
        assert_eq!(p.num_permitted(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.relations().count(), 2);
        assert_eq!(p.name, "both-sides");

        let meetings = registry.catalog().resolve("Meetings").unwrap();
        let contacts = registry.catalog().resolve("Contacts").unwrap();
        assert_eq!(p.permitted_mask(meetings), 0b01);
        assert_eq!(p.permitted_mask(contacts), 0b1);
    }

    #[test]
    fn from_view_names_reports_unknown_names() {
        let (_, registry, _) = setup();
        let (p, unknown) =
            PolicyPartition::from_view_names("p", &registry, ["V1", "nonsense", "V2"]);
        assert_eq!(p.num_permitted(), 2);
        assert_eq!(unknown, vec!["nonsense"]);
    }

    #[test]
    fn empty_partitions_allow_nothing_but_bottom() {
        let (catalog, _, labeler) = setup();
        let p = PolicyPartition::new("empty");
        assert!(p.is_empty());
        assert_eq!(p.num_permitted(), 0);
        let label = labeler.label_query(&parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap());
        assert!(!p.allows(&label));
        assert!(p.allows(&DisclosureLabel::bottom()));
    }

    #[test]
    fn label_below_partition_iff_every_atom_is_answerable() {
        let (catalog, registry, labeler) = setup();
        let v2 = registry.id_by_name("V2").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        // Permit the meeting-times view and the full Contacts view.
        let p = PolicyPartition::from_views("times+contacts", &registry, [v2, v3]);

        // A times-only query is allowed.
        let times = labeler.label_query(&parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap());
        assert!(p.allows(&times));
        // The full Meetings view requires V1, which is not permitted.
        let full =
            labeler.label_query(&parse_query(&catalog, "Q(x, y) :- Meetings(x, y)").unwrap());
        assert!(!p.allows(&full));
        // The join query needs V1 (for the Meetings atom), so it is refused
        // even though its Contacts atom is fine.
        let join = labeler.label_query(
            &parse_query(&catalog, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap(),
        );
        assert!(!p.allows(&join));
        // A contacts-only query is allowed.
        let contacts =
            labeler.label_query(&parse_query(&catalog, "Q(x, y, z) :- Contacts(x, y, z)").unwrap());
        assert!(p.allows(&contacts));
    }

    #[test]
    fn top_labels_are_never_allowed() {
        let (_, registry, _) = setup();
        let meetings = registry.catalog().resolve("Meetings").unwrap();
        let all_views: Vec<SecurityViewId> = registry.iter().map(|(id, _)| id).collect();
        let p = PolicyPartition::from_views("everything", &registry, all_views);
        let top = DisclosureLabel::from_atoms(vec![AtomLabel::top(meetings)]);
        assert!(!p.allows(&top));
    }

    #[test]
    fn revoking_undoes_permitting() {
        let (_, registry, _) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        let mut p = PolicyPartition::from_views("p", &registry, [v1, v2]);
        p.revoke(&registry, v1);
        assert_eq!(p.num_permitted(), 1);
        let meetings = registry.catalog().resolve("Meetings").unwrap();
        assert_eq!(p.permitted_mask(meetings), 0b10);
        // Revoking an unpermitted view is a no-op; revoking the last view of
        // a relation empties the partition completely.
        p.revoke(&registry, v1);
        p.revoke(&registry, v2);
        assert!(p.is_empty());
        assert_eq!(p.relations().count(), 0);
        // A round-tripped partition equals one never granted the view.
        let mut granted = PolicyPartition::from_views("q", &registry, [v2]);
        granted.permit(&registry, v1);
        granted.revoke(&registry, v1);
        assert_eq!(
            granted.permitted_mask(meetings),
            PolicyPartition::from_views("q", &registry, [v2]).permitted_mask(meetings)
        );
    }

    #[test]
    fn permitting_is_idempotent() {
        let (_, registry, _) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let mut p = PolicyPartition::new("p");
        p.permit(&registry, v1);
        p.permit(&registry, v1);
        assert_eq!(p.num_permitted(), 1);
    }
}
