//! Sharded multi-principal enforcement: a [`PolicyStore`] per worker.
//!
//! Policy decisions are embarrassingly parallel *across* principals — each
//! submit touches exactly one principal's state — so the store scales by
//! partitioning principals round-robin over N independent shards, each a
//! complete [`PolicyStore`] owned by (at most) one worker thread at a time.
//! No locks, no atomics on the decision path: a batch is split by shard,
//! each busy shard is **moved** into a task on a caller-supplied persistent
//! [`WorkerPool`] — queue pushes, not thread spawns —
//! and moved back with its decisions, which are scattered into request
//! order ([`submit_batch_on`](ShardedPolicyStore::submit_batch_on),
//! [`decide_batch_on`](ShardedPolicyStore::decide_batch_on)).  The store
//! never owns or spins up a pool itself, so an embedding service runs
//! exactly one worker plane.
//!
//! Sequential entry points ([`submit`](ShardedPolicyStore::submit),
//! [`submit_packed`](ShardedPolicyStore::submit_packed), …) route single
//! requests to the owning shard, so a sharded store can stand in wherever a
//! flat store is used; the decision/state equivalence of the two (and of the
//! per-principal [`ReferenceMonitor`](crate::ReferenceMonitor)) is asserted
//! by the property tests.

use fdc_core::{DisclosureLabel, PackedLabel, SecurityViewId, SecurityViews, WorkerPool};

use crate::monitor::Decision;
use crate::policy::SecurityPolicy;
use crate::store::{PolicyStore, PrincipalId};

/// Batches shorter than this are decided sequentially on the calling thread
/// by default: for tiny batches, even the pool hand-off (cloning the packed
/// labels into owned per-shard requests, a queue push per busy shard) costs
/// more than the handful of bit-mask decisions being parallelized.  Tune per
/// store with [`ShardedPolicyStore::set_parallel_threshold`] (mirroring
/// `fdc_core::SMALL_BATCH_SEQUENTIAL_THRESHOLD` on the labeling side).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 32;

/// One shard's slice of a fanned-out batch: `(request index, shard-local
/// principal, packed label, commit)`.
type ShardRequests = Vec<(usize, PrincipalId, Vec<PackedLabel>, bool)>;

/// A policy store partitioned over independent shards.
///
/// Principal `p` lives in shard `p % num_shards` at local slot
/// `p / num_shards`, so round-robin registration keeps the shards balanced
/// and the routing is pure arithmetic.  Each shard interns its own policies,
/// so heavily shared policies cost one arena entry per shard.
#[derive(Debug, Clone)]
pub struct ShardedPolicyStore {
    shards: Vec<PolicyStore>,
    num_principals: usize,
    /// Minimum batch length for the pooled per-shard fan-out; shorter
    /// batches fall back to the sequential path.
    parallel_threshold: usize,
}

impl ShardedPolicyStore {
    /// Creates an empty store with `num_shards` shards (at least 1) and the
    /// [default small-batch threshold](DEFAULT_PARALLEL_THRESHOLD).
    pub fn new(num_shards: usize) -> Self {
        ShardedPolicyStore {
            shards: (0..num_shards.max(1)).map(|_| PolicyStore::new()).collect(),
            num_principals: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The current small-batch sequential-fallback threshold.
    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Sets the minimum batch length at which
    /// [`submit_batch_on`](Self::submit_batch_on) /
    /// [`decide_batch_on`](Self::decide_batch_on) fan out to
    /// the worker pool.  `0` (or `1`) forces the parallel path for every
    /// non-trivial batch.
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.num_principals
    }

    /// True if no principals are registered.
    pub fn is_empty(&self) -> bool {
        self.num_principals == 0
    }

    /// The shard and shard-local id of a principal.
    #[inline]
    fn locate(&self, principal: PrincipalId) -> (usize, PrincipalId) {
        let shard = principal.index() % self.shards.len();
        let local = PrincipalId((principal.index() / self.shards.len()) as u32);
        (shard, local)
    }

    /// Registers a principal with its policy and returns its (global) id.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than
    /// [`MAX_PARTITIONS`](crate::MAX_PARTITIONS) partitions.
    pub fn register(&mut self, policy: SecurityPolicy) -> PrincipalId {
        let id = PrincipalId(self.num_principals as u32);
        let shard = id.index() % self.shards.len();
        self.shards[shard].register(policy);
        self.num_principals += 1;
        id
    }

    /// The policy of a principal (the interned representative — see
    /// [`PolicyStore::policy`]).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn policy(&self, principal: PrincipalId) -> &SecurityPolicy {
        let (shard, local) = self.locate(principal);
        self.shards[shard].policy(local)
    }

    /// The consistency bit vector of a principal.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn consistency_bits(&self, principal: PrincipalId) -> u64 {
        let (shard, local) = self.locate(principal);
        self.shards[shard].consistency_bits(local)
    }

    /// Replaces a principal's policy online, preserving its consistency
    /// word and counters (see [`PolicyStore::replace_policy`]).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store or the partition count
    /// changes.
    pub fn replace_policy(&mut self, principal: PrincipalId, policy: SecurityPolicy) {
        let (shard, local) = self.locate(principal);
        self.shards[shard].replace_policy(local, policy);
    }

    /// Grants one more security view to a principal (see
    /// [`PolicyStore::grant_view`]).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn grant_view(
        &mut self,
        principal: PrincipalId,
        registry: &SecurityViews,
        view: SecurityViewId,
    ) {
        let (shard, local) = self.locate(principal);
        self.shards[shard].grant_view(local, registry, view);
    }

    /// Revokes a security view from a principal (see
    /// [`PolicyStore::revoke_view`]).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this store.
    pub fn revoke_view(
        &mut self,
        principal: PrincipalId,
        registry: &SecurityViews,
        view: SecurityViewId,
    ) {
        let (shard, local) = self.locate(principal);
        self.shards[shard].revoke_view(local, registry, view);
    }

    /// Submits a query label on behalf of a principal (see
    /// [`PolicyStore::submit`]).
    pub fn submit(&mut self, principal: PrincipalId, label: &DisclosureLabel) -> Decision {
        let (shard, local) = self.locate(principal);
        self.shards[shard].submit(local, label)
    }

    /// [`submit`](Self::submit) on the packed 64-bit label representation.
    pub fn submit_packed(&mut self, principal: PrincipalId, label: &[PackedLabel]) -> Decision {
        let (shard, local) = self.locate(principal);
        self.shards[shard].submit_packed(local, label)
    }

    /// Pure check (no state update) for a principal.
    pub fn check(&self, principal: PrincipalId, label: &DisclosureLabel) -> Decision {
        let (shard, local) = self.locate(principal);
        self.shards[shard].check(local, label)
    }

    /// [`check`](Self::check) on the packed 64-bit label representation.
    pub fn check_packed(&self, principal: PrincipalId, label: &[PackedLabel]) -> Decision {
        let (shard, local) = self.locate(principal);
        self.shards[shard].check_packed(local, label)
    }

    /// Submits a batch of packed requests sequentially, in order.
    pub fn submit_batch(&mut self, batch: &[(PrincipalId, &[PackedLabel])]) -> Vec<Decision> {
        batch
            .iter()
            .map(|(principal, label)| self.submit_packed(*principal, label))
            .collect()
    }

    /// Submits a batch of packed requests with one pool task per busy
    /// shard, returning the decisions in request order.
    ///
    /// Requests are partitioned by owning shard; each shard is moved into
    /// its task (and back out afterwards), so it is owned exclusively for
    /// the duration of the batch and no synchronization is needed on the
    /// decision path.  Within a shard, requests are processed in batch
    /// order; requests for *different* principals never interact, so the
    /// decisions (and all per-principal state) equal the sequential
    /// [`submit_batch`](Self::submit_batch) — asserted by the property
    /// tests.
    ///
    /// The pool is always supplied by the caller: the store owns no
    /// threads of its own and never falls back to a process-global pool,
    /// so a service embedding this store runs exactly one worker plane.
    pub fn submit_batch_on(
        &mut self,
        pool: &WorkerPool,
        batch: &[(PrincipalId, &[PackedLabel])],
    ) -> Vec<Decision> {
        if self.shards.len() <= 1
            || batch.len() <= 1
            || batch.len() < self.parallel_threshold
            || pool.workers() <= 1
        {
            return self.submit_batch(batch);
        }
        let by_shard = self.partition(batch.iter().map(|&(principal, label)| {
            (principal, label, true) // submits always commit
        }));
        self.fan_out(pool, by_shard, batch.len(), |shard, local, label, _| {
            shard.submit_packed(local, label)
        })
    }

    /// Partitions a batch into owned per-shard request lists (cloning each
    /// packed label — a handful of `u64`s — so the requests can outlive the
    /// borrowed batch inside the pool tasks).
    fn partition<'a>(
        &self,
        batch: impl Iterator<Item = (PrincipalId, &'a [PackedLabel], bool)>,
    ) -> Vec<ShardRequests> {
        let num_shards = self.shards.len();
        let mut by_shard: Vec<ShardRequests> = vec![Vec::new(); num_shards];
        for (i, (principal, label, commit)) in batch.enumerate() {
            let local = PrincipalId((principal.index() / num_shards) as u32);
            by_shard[principal.index() % num_shards].push((i, local, label.to_vec(), commit));
        }
        by_shard
    }

    /// The move-in/move-out fan-out shared by the parallel batch entry
    /// points: every shard with pending requests is moved into a pool task
    /// together with its request list, decides them in batch order, and is
    /// moved back; the decisions are scattered into request order.
    fn fan_out<F>(
        &mut self,
        pool: &WorkerPool,
        by_shard: Vec<ShardRequests>,
        batch_len: usize,
        decide: F,
    ) -> Vec<Decision>
    where
        F: Fn(&mut PolicyStore, PrincipalId, &[PackedLabel], bool) -> Decision
            + Send
            + Sync
            + 'static,
    {
        let mut slots: Vec<Option<PolicyStore>> = self.shards.drain(..).map(Some).collect();
        let mut inputs: Vec<(usize, PolicyStore, ShardRequests)> = Vec::new();
        for (shard_idx, requests) in by_shard.into_iter().enumerate() {
            if !requests.is_empty() {
                let shard = slots[shard_idx].take().expect("each shard moved out once");
                inputs.push((shard_idx, shard, requests));
            }
        }
        let outputs = pool.run(inputs, move |(shard_idx, mut shard, requests), _ctx| {
            let decided: Vec<(usize, Decision)> = requests
                .into_iter()
                .map(|(i, local, label, commit)| (i, decide(&mut shard, local, &label, commit)))
                .collect();
            (shard_idx, shard, decided)
        });
        let mut decisions = vec![Decision::Deny; batch_len];
        for (shard_idx, shard, decided) in outputs {
            slots[shard_idx] = Some(shard);
            for (i, decision) in decided {
                decisions[i] = decision;
            }
        }
        self.shards = slots
            .into_iter()
            .map(|slot| slot.expect("each shard moved back once"))
            .collect();
        decisions
    }

    /// Serializes the sharded store — shard count, principal count,
    /// parallel threshold, then every shard via
    /// [`PolicyStore::encode_into`] — into `out`.
    ///
    /// The per-shard layout is a function of the shard count (principal
    /// `p` lives in shard `p % num_shards`), so the count is part of the
    /// format and recovery reopens the store with the checkpoint's shard
    /// count, not the current configuration's.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use fdc_durability::codec::{put_len, put_u64};
        put_len(out, self.shards.len());
        put_u64(out, self.num_principals as u64);
        put_u64(out, self.parallel_threshold as u64);
        for shard in &self.shards {
            shard.encode_into(out);
        }
    }

    /// Deserializes a store written by [`encode_into`](Self::encode_into),
    /// validating that the per-shard principal counts reproduce the
    /// round-robin placement exactly.
    pub fn decode_from(
        cursor: &mut fdc_durability::codec::Cursor<'_>,
    ) -> std::result::Result<Self, fdc_durability::codec::CodecError> {
        use fdc_durability::codec::CodecError;
        let at = cursor.pos();
        let num_shards = cursor.count(16)?;
        if num_shards == 0 {
            return Err(CodecError::invalid(at, "zero shards"));
        }
        let num_principals = cursor.u64()? as usize;
        let parallel_threshold = cursor.u64()? as usize;
        let mut shards = Vec::with_capacity(num_shards);
        for index in 0..num_shards {
            let at = cursor.pos();
            let shard = PolicyStore::decode_from(cursor)?;
            // Round-robin placement: shard i holds principals i, i+n, ...
            let expected = (num_principals + num_shards - 1 - index) / num_shards;
            if shard.len() != expected {
                return Err(CodecError::invalid(
                    at,
                    format!(
                        "shard {index} holds {} principals, round-robin expects {expected}",
                        shard.len()
                    ),
                ));
            }
            shards.push(shard);
        }
        Ok(ShardedPolicyStore {
            shards,
            num_principals,
            parallel_threshold,
        })
    }

    /// Decides one packed request, committing only when `commit` is true
    /// (see [`PolicyStore::decide_packed`]).
    pub fn decide_packed(
        &mut self,
        principal: PrincipalId,
        label: &[PackedLabel],
        commit: bool,
    ) -> Decision {
        let (shard, local) = self.locate(principal);
        self.shards[shard].decide_packed(local, label, commit)
    }

    /// Decides a mixed batch of packed submits (`commit = true`) and checks
    /// (`commit = false`) with one pool task per busy shard, returning the
    /// decisions in request order.
    ///
    /// The generalization of [`submit_batch_on`](Self::submit_batch_on)
    /// the service's request loop runs on: within a shard, requests are
    /// processed in batch order, so a check between two submits for the
    /// same principal observes exactly the state it would under sequential
    /// processing.  The caller supplies the pool — the service's executors
    /// pass theirs, so decision application shares the service's worker
    /// plane (and its counters) with the labeling stage.
    pub fn decide_batch_on(
        &mut self,
        pool: &WorkerPool,
        batch: &[(PrincipalId, &[PackedLabel], bool)],
    ) -> Vec<Decision> {
        if self.shards.len() <= 1
            || batch.len() <= 1
            || batch.len() < self.parallel_threshold
            || pool.workers() <= 1
        {
            return batch
                .iter()
                .map(|(principal, label, commit)| self.decide_packed(*principal, label, *commit))
                .collect();
        }
        let by_shard = self.partition(batch.iter().copied());
        self.fan_out(
            pool,
            by_shard,
            batch.len(),
            |shard, local, label, commit| shard.decide_packed(local, label, commit),
        )
    }

    /// `(answered, refused)` counters for a principal.
    pub fn stats(&self, principal: PrincipalId) -> (u64, u64) {
        let (shard, local) = self.locate(principal);
        self.shards[shard].stats(local)
    }

    /// Total `(answered, refused)` across all principals — O(num_shards).
    pub fn totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(a, r), shard| {
            let (sa, sr) = shard.totals();
            (a + sa, r + sr)
        })
    }

    /// Number of distinct compiled policies summed over the shards (a policy
    /// shared across shards counts once per shard holding it).
    pub fn unique_policies(&self) -> usize {
        self.shards.iter().map(PolicyStore::unique_policies).sum()
    }

    /// One copy-on-write arena handle per shard, in shard order — the
    /// compiled-policy universe pinned as it stands right now (see
    /// [`PolicyStore::arena_handle`]).
    pub fn arena_handles(&self) -> Vec<std::sync::Arc<crate::compiled::PolicyArena>> {
        self.shards.iter().map(PolicyStore::arena_handle).collect()
    }

    /// Bytes of per-principal state summed over the shards.
    pub fn state_bytes(&self) -> usize {
        self.shards.iter().map(PolicyStore::state_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PolicyPartition;
    use fdc_core::{BaselineLabeler, QueryLabeler, SecurityViews};
    use fdc_cq::parser::parse_query;

    fn setup() -> (SecurityViews, BaselineLabeler) {
        let registry = SecurityViews::paper_example();
        let labeler = BaselineLabeler::new(registry.clone());
        (registry, labeler)
    }

    fn label(labeler: &BaselineLabeler, text: &str) -> DisclosureLabel {
        let catalog = labeler.security_views().catalog();
        labeler.label_query(&parse_query(catalog, text).unwrap())
    }

    fn wall(registry: &SecurityViews) -> SecurityPolicy {
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", registry, [v1]),
            PolicyPartition::from_views("contacts", registry, [v3]),
        ])
    }

    #[test]
    fn encode_decode_round_trips_the_sharded_layout() {
        let (registry, labeler) = setup();
        let mut store = ShardedPolicyStore::new(3);
        store.set_parallel_threshold(7);
        let ids: Vec<PrincipalId> = (0..10).map(|_| store.register(wall(&registry))).collect();
        let meetings = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        let contacts = label(&labeler, "Q(x, y, z) :- Contacts(x, y, z)");
        for (i, &id) in ids.iter().enumerate() {
            let l = if i % 2 == 0 { &meetings } else { &contacts };
            store.submit(id, l);
        }
        let mut bytes = Vec::new();
        store.encode_into(&mut bytes);
        let mut cursor = fdc_durability::codec::Cursor::new(&bytes);
        let mut back = ShardedPolicyStore::decode_from(&mut cursor).unwrap();
        cursor.expect_end().unwrap();
        assert_eq!(back.num_shards(), 3);
        assert_eq!(back.len(), store.len());
        assert_eq!(back.parallel_threshold(), 7);
        assert_eq!(back.totals(), store.totals());
        for &id in &ids {
            assert_eq!(back.consistency_bits(id), store.consistency_bits(id));
            assert_eq!(back.stats(id), store.stats(id));
        }
        // Decisions keep matching after the round trip.
        let mut live = store;
        for &id in &ids {
            assert_eq!(live.submit(id, &meetings), back.submit(id, &meetings));
            assert_eq!(live.submit(id, &contacts), back.submit(id, &contacts));
        }
    }

    #[test]
    fn decode_rejects_a_layout_that_breaks_round_robin() {
        let (registry, _) = setup();
        let mut store = ShardedPolicyStore::new(2);
        for _ in 0..5 {
            store.register(wall(&registry));
        }
        let mut bytes = Vec::new();
        store.encode_into(&mut bytes);
        // Claim one fewer principal than the shards actually hold: the
        // round-robin check must reject the mismatch.
        bytes[8..16].copy_from_slice(&4u64.to_le_bytes());
        let mut cursor = fdc_durability::codec::Cursor::new(&bytes);
        assert!(ShardedPolicyStore::decode_from(&mut cursor).is_err());
    }

    #[test]
    fn sharded_routing_matches_a_flat_store() {
        let (registry, labeler) = setup();
        let mut flat = PolicyStore::new();
        let mut sharded = ShardedPolicyStore::new(3);
        assert_eq!(sharded.num_shards(), 3);
        for _ in 0..10 {
            flat.register(wall(&registry));
            sharded.register(wall(&registry));
        }
        assert_eq!(sharded.len(), 10);
        assert!(!sharded.is_empty());
        assert_eq!(sharded.policy(PrincipalId(7)).len(), 2);

        let texts = [
            "Q(x, y) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
        ];
        for (i, text) in texts.iter().cycle().take(40).enumerate() {
            let l = label(&labeler, text);
            let p = PrincipalId((i % 10) as u32);
            assert_eq!(flat.submit(p, &l), sharded.submit(p, &l));
            assert_eq!(flat.check(p, &l), sharded.check(p, &l));
            assert_eq!(
                flat.check_packed(p, &l.pack()),
                sharded.check_packed(p, &l.pack())
            );
            assert_eq!(flat.consistency_bits(p), sharded.consistency_bits(p));
        }
        for i in 0..10 {
            let p = PrincipalId(i);
            assert_eq!(flat.stats(p), sharded.stats(p));
        }
        assert_eq!(flat.totals(), sharded.totals());
        assert_eq!(flat.state_bytes(), sharded.state_bytes());
        // One wall policy per shard holding principals.
        assert_eq!(sharded.unique_policies(), 3);
    }

    #[test]
    fn parallel_batches_match_sequential_batches() {
        let (registry, labeler) = setup();
        let mut sequential = ShardedPolicyStore::new(4);
        let mut parallel = ShardedPolicyStore::new(4);
        for _ in 0..13 {
            sequential.register(wall(&registry));
            parallel.register(wall(&registry));
        }
        let labels: Vec<Vec<_>> = [
            "Q(x, y) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
            "Q(y) :- Meetings(x, y)",
        ]
        .iter()
        .cycle()
        .take(100)
        .map(|text| label(&labeler, text).pack())
        .collect();
        let batch: Vec<(PrincipalId, &[PackedLabel])> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (PrincipalId((i % 13) as u32), l.as_slice()))
            .collect();
        let pool = WorkerPool::new(4);
        assert_eq!(
            parallel.submit_batch_on(&pool, &batch),
            sequential.submit_batch(&batch)
        );
        assert_eq!(parallel.totals(), sequential.totals());
        for i in 0..13 {
            let p = PrincipalId(i);
            assert_eq!(parallel.consistency_bits(p), sequential.consistency_bits(p));
            assert_eq!(parallel.stats(p), sequential.stats(p));
        }
    }

    #[test]
    fn mixed_parallel_batches_match_sequential_decisions() {
        let (registry, labeler) = setup();
        let mut parallel = ShardedPolicyStore::new(4);
        let mut sequential = ShardedPolicyStore::new(4);
        for _ in 0..9 {
            parallel.register(wall(&registry));
            sequential.register(wall(&registry));
        }
        let labels: Vec<Vec<PackedLabel>> = [
            "Q(x, y) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
        ]
        .iter()
        .cycle()
        .take(80)
        .map(|text| label(&labeler, text).pack())
        .collect();
        // Interleave checks (every third request) with submits.
        let batch: Vec<(PrincipalId, &[PackedLabel], bool)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (PrincipalId((i % 9) as u32), l.as_slice(), i % 3 != 0))
            .collect();
        let expected: Vec<Decision> = batch
            .iter()
            .map(|(p, l, commit)| sequential.decide_packed(*p, l, *commit))
            .collect();
        let pool = WorkerPool::new(4);
        assert_eq!(parallel.decide_batch_on(&pool, &batch), expected);
        assert_eq!(parallel.totals(), sequential.totals());
        for i in 0..9 {
            let p = PrincipalId(i);
            assert_eq!(parallel.consistency_bits(p), sequential.consistency_bits(p));
            assert_eq!(parallel.stats(p), sequential.stats(p));
        }
    }

    #[test]
    fn sharded_grants_and_revokes_match_a_flat_store() {
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        let mut flat = PolicyStore::new();
        let mut sharded = ShardedPolicyStore::new(3);
        for _ in 0..7 {
            flat.register(wall(&registry));
            sharded.register(wall(&registry));
        }
        let times = label(&labeler, "Q(x) :- Meetings(x, y)");
        let full = label(&labeler, "Q(x, y) :- Meetings(x, y)");
        for i in 0..7 {
            let p = PrincipalId(i);
            flat.submit(p, &full);
            sharded.submit(p, &full);
            if i % 2 == 0 {
                flat.revoke_view(p, &registry, v1);
                sharded.revoke_view(p, &registry, v1);
            } else {
                flat.grant_view(p, &registry, v2);
                sharded.grant_view(p, &registry, v2);
            }
        }
        for i in 0..7 {
            let p = PrincipalId(i);
            assert_eq!(flat.submit(p, &times), sharded.submit(p, &times));
            assert_eq!(flat.submit(p, &full), sharded.submit(p, &full));
            assert_eq!(flat.consistency_bits(p), sharded.consistency_bits(p));
            assert_eq!(flat.stats(p), sharded.stats(p));
            assert_eq!(flat.policy(p), sharded.policy(p));
        }
    }

    #[test]
    fn small_batches_fall_back_to_the_sequential_path() {
        let (registry, labeler) = setup();
        // A store with a raised threshold decides a 100-request batch
        // sequentially; one with a zero threshold fans out.  Both must equal
        // the plain sequential store on decisions and state.
        let mut raised = ShardedPolicyStore::new(4);
        raised.set_parallel_threshold(1_000);
        assert_eq!(raised.parallel_threshold(), 1_000);
        let mut forced = ShardedPolicyStore::new(4);
        forced.set_parallel_threshold(0);
        let mut sequential = ShardedPolicyStore::new(4);
        assert_eq!(sequential.parallel_threshold(), DEFAULT_PARALLEL_THRESHOLD);
        for _ in 0..11 {
            raised.register(wall(&registry));
            forced.register(wall(&registry));
            sequential.register(wall(&registry));
        }
        let labels: Vec<Vec<PackedLabel>> = [
            "Q(x, y) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
        ]
        .iter()
        .cycle()
        .take(100)
        .map(|text| label(&labeler, text).pack())
        .collect();
        let batch: Vec<(PrincipalId, &[PackedLabel])> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (PrincipalId((i % 11) as u32), l.as_slice()))
            .collect();
        let pool = WorkerPool::new(4);
        let expected = sequential.submit_batch(&batch);
        assert_eq!(raised.submit_batch_on(&pool, &batch), expected);
        assert_eq!(forced.submit_batch_on(&pool, &batch), expected);
        assert_eq!(raised.totals(), sequential.totals());
        assert_eq!(forced.totals(), sequential.totals());
        // Same crossover on the mixed submit/check path.
        let mixed: Vec<(PrincipalId, &[PackedLabel], bool)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (PrincipalId((i % 11) as u32), l.as_slice(), i % 2 == 0))
            .collect();
        let expected_mixed: Vec<Decision> = mixed
            .iter()
            .map(|(p, l, commit)| sequential.decide_packed(*p, l, *commit))
            .collect();
        assert_eq!(raised.decide_batch_on(&pool, &mixed), expected_mixed);
        assert_eq!(forced.decide_batch_on(&pool, &mixed), expected_mixed);
        for i in 0..11 {
            let p = PrincipalId(i);
            assert_eq!(raised.stats(p), sequential.stats(p));
            assert_eq!(forced.stats(p), sequential.stats(p));
        }
    }

    #[test]
    fn degenerate_shapes_fall_back_to_the_sequential_path() {
        let (registry, labeler) = setup();
        // Zero requested shards is clamped to one.
        let mut single = ShardedPolicyStore::new(0);
        assert_eq!(single.num_shards(), 1);
        let p = single.register(wall(&registry));
        let packed = label(&labeler, "Q(x) :- Meetings(x, y)").pack();
        let batch: Vec<(PrincipalId, &[PackedLabel])> = vec![(p, packed.as_slice())];
        let pool = WorkerPool::new(4);
        assert_eq!(single.submit_batch_on(&pool, &batch).len(), 1);
        assert!(single.submit_batch_on(&pool, &[]).is_empty());
        assert_eq!(single.totals(), (1, 0));
    }
}
