//! Formal security policies as lattice cuts (Definition 3.9).
//!
//! "Conceptually, a security policy is a cut in this lattice: a set of
//! queries whose label is below the cut can be answered, but a set of
//! queries whose label falls above the cut cannot."  A [`LatticePolicy`]
//! represents the policy exactly that way — as the set of permitted elements
//! of an explicit [`DisclosureLattice`] — together with the internal
//! consistency requirement (downward closure) the paper imposes, and the
//! simple enforcement loop of Section 3.4.
//!
//! This representation is exponential and exists for the worked examples,
//! for validating the compact representation of [`crate::policy`], and for
//! reasoning about hand-written policies (detecting redundancy and
//! inconsistency, one of the motivations in Section 2.2).

use std::collections::BTreeSet;

use fdc_order::lattice::{DisclosureLattice, ElementId};
use fdc_order::{DisclosureOrder, ViewSet};

/// A security policy as a downward-closed set of lattice elements.
#[derive(Debug, Clone)]
pub struct LatticePolicy {
    permitted: BTreeSet<ElementId>,
}

impl LatticePolicy {
    /// Builds a policy from the permitted elements.
    ///
    /// Returns an error naming the offending pair if the set is not
    /// internally consistent (i.e. not downward closed): if an element is
    /// permitted, everything below it must be permitted too.
    pub fn new(
        lattice: &DisclosureLattice,
        permitted: impl IntoIterator<Item = ElementId>,
    ) -> Result<Self, String> {
        let permitted: BTreeSet<ElementId> = permitted.into_iter().collect();
        for &high in &permitted {
            for candidate in 0..lattice.len() {
                let low = ElementId(candidate);
                if lattice.leq(low, high) && !permitted.contains(&low) {
                    return Err(format!(
                        "policy is not downward closed: {:?} is permitted but {:?} below it is not",
                        high, low
                    ));
                }
            }
        }
        Ok(LatticePolicy { permitted })
    }

    /// Builds the downward closure of the given elements — the least
    /// consistent policy permitting them all.
    pub fn downward_closure(
        lattice: &DisclosureLattice,
        tops: impl IntoIterator<Item = ElementId>,
    ) -> Self {
        let tops: Vec<ElementId> = tops.into_iter().collect();
        let mut permitted = BTreeSet::new();
        for candidate in 0..lattice.len() {
            let low = ElementId(candidate);
            if tops.iter().any(|&t| lattice.leq(low, t)) {
                permitted.insert(low);
            }
        }
        LatticePolicy { permitted }
    }

    /// Number of permitted lattice elements.
    pub fn len(&self) -> usize {
        self.permitted.len()
    }

    /// True if nothing (not even ⊥) is permitted.
    pub fn is_empty(&self) -> bool {
        self.permitted.is_empty()
    }

    /// Is the lattice element permitted?
    pub fn permits(&self, element: ElementId) -> bool {
        self.permitted.contains(&element)
    }

    /// Is disclosing the information `⇓w` permitted?
    pub fn permits_views<O: DisclosureOrder>(
        &self,
        order: &O,
        lattice: &DisclosureLattice,
        w: ViewSet,
    ) -> bool {
        self.permits(lattice.classify(order, w))
    }

    /// The reference-monitor loop of Section 3.4: processes the labels of a
    /// stream of queries (each given as a set of views), answering a query
    /// when the *cumulative* disclosure stays permitted.
    ///
    /// Returns one boolean per query: `true` if it was answered.
    pub fn enforce_sequence<O: DisclosureOrder>(
        &self,
        order: &O,
        lattice: &DisclosureLattice,
        queries: &[ViewSet],
    ) -> Vec<bool> {
        let mut cumulative = ViewSet::new();
        let mut decisions = Vec::with_capacity(queries.len());
        for q in queries {
            let tentative = cumulative.union(*q);
            if self.permits_views(order, lattice, tentative) {
                decisions.push(true);
                cumulative = tentative;
            } else {
                decisions.push(false);
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_order::order::SingletonLiftedOrder;
    use fdc_order::{ViewId, ViewSet};

    /// The Figure 3 universe: V0 = full Meetings view, V1/V2 = column
    /// projections, V3 = nonemptiness.
    fn figure3_order() -> impl DisclosureOrder {
        SingletonLiftedOrder::new(4, |v: ViewId, w: ViewSet| {
            if w.contains(v) {
                return true;
            }
            match v.0 {
                0 => false,
                1 | 2 => w.contains(ViewId(0)),
                3 => !w.is_empty(),
                _ => false,
            }
        })
    }

    fn s(ids: &[u32]) -> ViewSet {
        ids.iter().map(|&i| ViewId(i)).collect()
    }

    #[test]
    fn section_3_4_chinese_wall_policy() {
        // P = {⊥, ⇓{V5}, ⇓{V2}, ⇓{V4}}: either attribute of Meetings may be
        // disclosed, but not both.
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let col1 = lattice.classify(&order, s(&[1]));
        let col2 = lattice.classify(&order, s(&[2]));
        let policy = LatticePolicy::downward_closure(&lattice, [col1, col2]);
        assert_eq!(policy.len(), 4); // ⊥, ⇓{V5}, ⇓{V2}, ⇓{V4}

        // Individual projections are permitted.
        assert!(policy.permits_views(&order, &lattice, s(&[1])));
        assert!(policy.permits_views(&order, &lattice, s(&[2])));
        assert!(policy.permits_views(&order, &lattice, s(&[3])));
        // Their combination is not, and neither is the full view.
        assert!(!policy.permits_views(&order, &lattice, s(&[1, 2])));
        assert!(!policy.permits_views(&order, &lattice, s(&[0])));
    }

    #[test]
    fn enforcement_tracks_cumulative_disclosure() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let col1 = lattice.classify(&order, s(&[1]));
        let col2 = lattice.classify(&order, s(&[2]));
        let policy = LatticePolicy::downward_closure(&lattice, [col1, col2]);

        // First query discloses column 1, second column 2 (refused because
        // the cumulative disclosure would exceed the cut), third asks for
        // column 1 again (still fine), fourth asks for the nonemptiness view
        // (fine: already below the cumulative disclosure).
        let decisions =
            policy.enforce_sequence(&order, &lattice, &[s(&[1]), s(&[2]), s(&[1]), s(&[3])]);
        assert_eq!(decisions, vec![true, false, true, true]);
    }

    #[test]
    fn inconsistent_policies_are_rejected() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let col1 = lattice.classify(&order, s(&[1]));
        // Permitting ⇓{V2} without permitting ⊥ (or ⇓{V5}) is inconsistent.
        let err = LatticePolicy::new(&lattice, [col1]).unwrap_err();
        assert!(err.contains("not downward closed"));

        // The downward closure of the same element is consistent.
        let ok = LatticePolicy::downward_closure(&lattice, [col1]);
        assert_eq!(ok.len(), 3); // ⊥, ⇓{V5}, ⇓{V2}
        assert!(LatticePolicy::new(&lattice, ok.permitted.iter().copied()).is_ok());
    }

    #[test]
    fn empty_policy_permits_nothing() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let policy = LatticePolicy::new(&lattice, []).unwrap();
        assert!(policy.is_empty());
        assert!(!policy.permits_views(&order, &lattice, ViewSet::EMPTY));
        let decisions = policy.enforce_sequence(&order, &lattice, &[s(&[3])]);
        assert_eq!(decisions, vec![false]);
    }

    #[test]
    fn permitting_the_top_permits_everything() {
        let order = figure3_order();
        let lattice = DisclosureLattice::build(&order);
        let policy = LatticePolicy::downward_closure(&lattice, [lattice.top()]);
        assert_eq!(policy.len(), lattice.len());
        for w in ViewSet::all_subsets(4) {
            assert!(policy.permits_views(&order, &lattice, w));
        }
    }
}
