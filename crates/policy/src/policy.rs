//! Security policies as collections of partitions (Section 6.2).
//!
//! A [`SecurityPolicy`] is the compact representation of Section 6.2: a
//! non-empty collection of [`PolicyPartition`]s `{W1, …, Wk}`.  The system
//! maintains the invariant that the labels of all answered queries stay
//! below at least one `Wi`:
//!
//! * with a single partition the policy is **stateless** — a query's fate
//!   never depends on the history (the equivalence argued at the start of
//!   Section 6.2);
//! * with several partitions the policy is a **Chinese Wall**: the first
//!   answered queries commit the principal to the partitions they fit in,
//!   and queries that would leave no partition consistent are refused.

use fdc_core::{DisclosureLabel, SecurityViews};

use crate::partition::PolicyPartition;

/// A security policy: one or more partitions of permitted security views.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecurityPolicy {
    partitions: Vec<PolicyPartition>,
}

impl SecurityPolicy {
    /// Creates a policy with no partitions.
    ///
    /// A policy with no partitions refuses every query whose label is not ⊥;
    /// add partitions with [`push`](Self::push).
    pub fn new() -> Self {
        SecurityPolicy {
            partitions: Vec::new(),
        }
    }

    /// A stateless policy with a single partition.
    pub fn stateless(partition: PolicyPartition) -> Self {
        SecurityPolicy {
            partitions: vec![partition],
        }
    }

    /// A Chinese-Wall policy: the principal may stay within any one of the
    /// given partitions, but may not combine them.
    pub fn chinese_wall<I: IntoIterator<Item = PolicyPartition>>(partitions: I) -> Self {
        SecurityPolicy {
            partitions: partitions.into_iter().collect(),
        }
    }

    /// Adds a partition.
    pub fn push(&mut self, partition: PolicyPartition) {
        self.partitions.push(partition);
    }

    /// The partitions.
    pub fn partitions(&self) -> &[PolicyPartition] {
        &self.partitions
    }

    /// Mutable access to the partitions — the grant/revoke mutation path of
    /// the online stores rewrites permitted view sets in place (the
    /// partition *count* must not change under an enforcement store; see
    /// `PolicyStore::replace_policy`).
    pub fn partitions_mut(&mut self) -> &mut [PolicyPartition] {
        &mut self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True if the policy has no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// True if the policy is stateless (at most one partition), i.e. decisions
    /// never depend on the query history.
    pub fn is_stateless(&self) -> bool {
        self.partitions.len() <= 1
    }

    /// Does some partition allow this (cumulative) label?
    pub fn allows(&self, label: &DisclosureLabel) -> bool {
        if label.is_bottom() {
            return true;
        }
        self.partitions.iter().any(|p| p.allows(label))
    }

    /// The indices of the partitions that allow the label.
    pub fn consistent_partitions(&self, label: &DisclosureLabel) -> Vec<usize> {
        self.partitions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.allows(label))
            .map(|(i, _)| i)
            .collect()
    }

    /// A permissive policy that allows every registered security view in a
    /// single partition — useful as a default and in tests.
    pub fn allow_all(registry: &SecurityViews) -> Self {
        let ids: Vec<_> = registry.iter().map(|(id, _)| id).collect();
        SecurityPolicy::stateless(PolicyPartition::from_views("allow-all", registry, ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::{BaselineLabeler, QueryLabeler};
    use fdc_cq::parser::parse_query;

    fn setup() -> (SecurityViews, BaselineLabeler) {
        let registry = SecurityViews::paper_example();
        let labeler = BaselineLabeler::new(registry.clone());
        (registry, labeler)
    }

    #[test]
    fn stateless_policies_have_one_partition() {
        let (registry, _) = setup();
        let policy = SecurityPolicy::allow_all(&registry);
        assert!(policy.is_stateless());
        assert_eq!(policy.len(), 1);
        assert!(!policy.is_empty());
    }

    #[test]
    fn example_6_2_chinese_wall_policy() {
        // W1 = {V1} (Meetings), W2 = {V3} (Contacts): access either relation
        // but not both.
        let (registry, labeler) = setup();
        let catalog = registry.catalog().clone();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let policy = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);
        assert!(!policy.is_stateless());
        assert_eq!(policy.len(), 2);

        let meetings_label =
            labeler.label_query(&parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap());
        let contacts_label =
            labeler.label_query(&parse_query(&catalog, "Q(x) :- Contacts(x, y, z)").unwrap());
        // Each label individually is allowed (by its own partition).
        assert!(policy.allows(&meetings_label));
        assert!(policy.allows(&contacts_label));
        assert_eq!(policy.consistent_partitions(&meetings_label), vec![0]);
        assert_eq!(policy.consistent_partitions(&contacts_label), vec![1]);
        // Their combination is not allowed by any single partition.
        let both = meetings_label.combine(&contacts_label);
        assert!(!policy.allows(&both));
        assert!(policy.consistent_partitions(&both).is_empty());
    }

    #[test]
    fn empty_policies_allow_only_bottom() {
        let (_, labeler) = setup();
        let catalog = labeler.security_views().catalog().clone();
        let policy = SecurityPolicy::new();
        assert!(policy.is_empty());
        assert!(policy.allows(&DisclosureLabel::bottom()));
        let label = labeler.label_query(&parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap());
        assert!(!policy.allows(&label));
    }

    #[test]
    fn pushing_partitions_extends_the_policy() {
        let (registry, labeler) = setup();
        let catalog = registry.catalog().clone();
        let v2 = registry.id_by_name("V2").unwrap();
        let mut policy = SecurityPolicy::new();
        policy.push(PolicyPartition::from_views("times", &registry, [v2]));
        assert_eq!(policy.len(), 1);

        let times = labeler.label_query(&parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap());
        assert!(policy.allows(&times));
        let full =
            labeler.label_query(&parse_query(&catalog, "Q(x, y) :- Meetings(x, y)").unwrap());
        assert!(!policy.allows(&full));
    }
}
