//! Compiled policies and the interning arena — the shared hot-path
//! representation of the enforcement layer.
//!
//! Section 6.2's decision procedure only ever asks one question per policy
//! partition: "does every atom of this label intersect the permitted views
//! of its relation?"  Answering it needs none of the [`PolicyPartition`]
//! bookkeeping (names, hash maps, the registry) — just the permitted
//! [`ViewMask`] per relation.  A [`CompiledPolicy`] is that distilled form:
//! per partition, a flat `(RelId, ViewMask)` array sorted by relation id, so
//! the per-atom test is a binary search over a couple of cache lines plus
//! one AND.  Both [`ReferenceMonitor`](crate::ReferenceMonitor) (one
//! principal) and [`PolicyStore`](crate::PolicyStore) (millions of
//! principals) decide against this one representation.
//!
//! At multi-principal scale the compiled form is also *interned*: real app
//! ecosystems draw policies from a bounded space of permission presets, so
//! the [`PolicyArena`] stores each distinct compiled policy once and hands
//! out dense `u32` indices.  Per-principal state then shrinks to an arena
//! index plus a consistency word and two counters — cache-line sized — which
//! is what makes the paper's 1,000,000-principal axis (Figure 6) cheap
//! enough to run by default.

use std::collections::HashMap;

use fdc_core::{DisclosureLabel, PackedLabel, ViewMask};
use fdc_cq::RelId;

use crate::partition::PolicyPartition;
use crate::policy::SecurityPolicy;

/// Maximum number of partitions per policy supported by the one-word
/// consistency bit vector.
pub const MAX_PARTITIONS: usize = 64;

/// The initial consistency bit vector for a policy with `num_partitions`
/// partitions: one set bit per partition ("every `Wi` is still consistent
/// with the — empty — history"), Example 6.3's `⟨1, 1⟩`.
///
/// # Panics
///
/// Panics if `num_partitions` exceeds [`MAX_PARTITIONS`].
#[inline]
pub fn initial_consistency_word(num_partitions: usize) -> u64 {
    assert!(
        num_partitions <= MAX_PARTITIONS,
        "policies are limited to {MAX_PARTITIONS} partitions"
    );
    if num_partitions == 0 {
        0
    } else {
        u64::MAX >> (64 - num_partitions)
    }
}

/// One policy partition compiled for the hot path: the permitted view masks
/// as a flat array sorted by relation id.
///
/// Policies permit views over a handful of relations, so a binary search
/// over a short contiguous array beats a hash lookup and keeps the whole
/// compiled partition in one or two cache lines.  Partition *names* are
/// deliberately dropped: they play no role in decisions, and excluding them
/// lets the arena intern policies that differ only in labeling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompiledPartition {
    permitted: Vec<(RelId, ViewMask)>,
}

impl CompiledPartition {
    /// Compiles one partition.
    pub fn compile(partition: &PolicyPartition) -> Self {
        let mut permitted: Vec<(RelId, ViewMask)> = partition
            .relations()
            .map(|relation| (relation, partition.permitted_mask(relation)))
            .collect();
        permitted.sort_unstable_by_key(|(relation, _)| *relation);
        CompiledPartition { permitted }
    }

    /// The permitted mask for a relation (0 when nothing is permitted).
    #[inline]
    pub fn mask_for(&self, relation: RelId) -> ViewMask {
        self.permitted
            .binary_search_by_key(&relation, |(r, _)| *r)
            .map_or(0, |i| self.permitted[i].1)
    }

    /// Every atom of the label must intersect the permitted views of its
    /// relation (`ℓ⁺(atom) ∩ permitted(relation) ≠ ∅`).
    #[inline]
    pub fn allows(&self, label: &DisclosureLabel) -> bool {
        label
            .atoms()
            .iter()
            .all(|atom| atom.mask & self.mask_for(atom.relation) != 0)
    }

    /// Same check on the packed 64-bit representation.
    #[inline]
    pub fn allows_packed(&self, label: &[PackedLabel]) -> bool {
        label
            .iter()
            .all(|packed| u64::from(packed.mask()) & self.mask_for(packed.relation()) != 0)
    }
}

/// A whole security policy compiled for the hot path, in an *atom-major*
/// layout: a flat table indexed by relation id holding, per relation, the
/// union of the permitted view masks plus the per-partition permitted
/// masks, contiguously.
///
/// The decision question "which partitions allow this label?" then becomes,
/// per atom, **one** indexed load (the relation row), one AND against the
/// union mask — which settles the common deny outright — and, only when the
/// atom intersects some partition, a short branchless loop over the
/// policy's `k ≤ 64` (typically ≤ 5) per-partition masks.  The whole policy
/// is two flat arrays (no nested `Vec` pointer chasing, no hashing), so a
/// decision touches a handful of contiguous cache lines.
///
/// Partition declaration order is preserved (not canonicalized away) so
/// that the consistency bit at index `i` means the same thing it does for a
/// [`ReferenceMonitor`](crate::ReferenceMonitor) built from the original
/// [`SecurityPolicy`] — the store/monitor equivalence tests rely on it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompiledPolicy {
    /// Indexed directly by relation id (catalogs assign ids densely from
    /// zero, so this is a small flat table): `(offset into partition_masks,
    /// union of the permitted view masks across all partitions)`.  Relations
    /// beyond the table or with an empty union permit nothing.
    rel_index: Vec<(u32, ViewMask)>,
    /// Per covered relation, `num_partitions` consecutive entries: the
    /// permitted view mask of each partition for that relation.
    partition_masks: Vec<ViewMask>,
    num_partitions: u32,
}

impl CompiledPolicy {
    /// Compiles a policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than [`MAX_PARTITIONS`] partitions (the
    /// consistency bit vector is a single `u64`).
    pub fn compile(policy: &SecurityPolicy) -> Self {
        assert!(
            policy.len() <= MAX_PARTITIONS,
            "policies are limited to {MAX_PARTITIONS} partitions"
        );
        let k = policy.len();
        let mut per_relation: std::collections::BTreeMap<RelId, Vec<ViewMask>> =
            std::collections::BTreeMap::new();
        for (i, partition) in policy.partitions().iter().enumerate() {
            for relation in partition.relations() {
                per_relation.entry(relation).or_insert_with(|| vec![0; k])[i] =
                    partition.permitted_mask(relation);
            }
        }
        let table_len = per_relation
            .keys()
            .last()
            .map_or(0, |relation| relation.0 as usize + 1);
        let mut rel_index = vec![(0u32, 0u64); table_len];
        let mut partition_masks = Vec::with_capacity(per_relation.len() * k);
        for (relation, masks) in per_relation {
            let union = masks.iter().fold(0, |acc, mask| acc | mask);
            let offset = u32::try_from(partition_masks.len()).expect("compiled policy too large");
            rel_index[relation.0 as usize] = (offset, union);
            partition_masks.extend(masks);
        }
        CompiledPolicy {
            rel_index,
            partition_masks,
            num_partitions: k as u32,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions as usize
    }

    /// The initial consistency word for this policy.
    #[inline]
    pub fn initial_word(&self) -> u64 {
        initial_consistency_word(self.num_partitions())
    }

    /// The bitmask of partitions with at least one permitted view able to
    /// answer an atom labeled `(relation, mask)` — i.e. the partitions `Wi`
    /// with `mask ∩ permitted_i(relation) ≠ ∅`.
    #[inline]
    pub fn partitions_allowing(&self, relation: RelId, mask: ViewMask) -> u64 {
        let Some(&(offset, union)) = self.rel_index.get(relation.0 as usize) else {
            return 0;
        };
        if mask & union == 0 {
            return 0;
        }
        // Stateless (single-partition) policies: the union *is* the only
        // partition's mask, already tested above.
        if self.num_partitions == 1 {
            return 1;
        }
        let start = offset as usize;
        let masks = &self.partition_masks[start..start + self.num_partitions as usize];
        let mut allowing = 0u64;
        for (i, &partition_mask) in masks.iter().enumerate() {
            allowing |= u64::from(mask & partition_mask != 0) << i;
        }
        allowing
    }

    /// The partitions that would remain consistent if `label` were added to
    /// a history whose current consistency word is `consistent`:
    /// currently-consistent partitions that also allow every atom of the new
    /// label.  (Cumulative consistency of `Wi` is the conjunction of the
    /// per-query checks, by Definition 3.1 (b).)
    #[inline]
    pub fn surviving_bits(&self, consistent: u64, label: &DisclosureLabel) -> u64 {
        let mut surviving = consistent;
        for atom in label.atoms() {
            surviving &= self.partitions_allowing(atom.relation, atom.mask);
            if surviving == 0 {
                break;
            }
        }
        surviving
    }

    /// [`surviving_bits`](Self::surviving_bits) on packed labels.
    #[inline]
    pub fn surviving_bits_packed(&self, consistent: u64, label: &[PackedLabel]) -> u64 {
        let mut surviving = consistent;
        for packed in label {
            surviving &= self.partitions_allowing(packed.relation(), u64::from(packed.mask()));
            if surviving == 0 {
                break;
            }
        }
        surviving
    }
}

/// Inline descriptor of one flattened policy in the arena's shared word
/// buffer: 12 bytes, loaded straight out of the descriptor array with no
/// pointer chase.
#[derive(Debug, Clone, Copy, Default)]
struct FlatPolicy {
    /// First word of the policy's relation table in the shared buffer.
    base: u32,
    /// Number of relation rows (indexable relation ids).
    table_len: u32,
    /// Number of partitions.
    num_partitions: u32,
}

/// An interning arena of compiled policies.
///
/// [`intern`](Self::intern) compiles a policy, deduplicates it against every
/// previously interned one (by the compiled form, i.e. up to partition names)
/// and returns a dense `u32` index.  The arena keeps one source
/// [`SecurityPolicy`] per distinct compiled form so callers can still
/// inspect the policy behind an index.
///
/// Under online policy churn (`PolicyStore::grant_view` / `revoke_view`)
/// mutated policies are **re-interned** through the same entry point:
/// a grant/revoke that lands on a previously seen compiled form reuses its
/// entry, and only genuinely new forms append.  Entries are never removed —
/// real ecosystems draw policies from a bounded preset space, so the arena
/// converges to the (small) set of forms in circulation rather than growing
/// with the mutation count; the interning hit counter
/// ([`hits`](Self::hits)) makes this observable.
///
/// Besides the per-policy [`CompiledPolicy`] values, the arena maintains a
/// *flattened* mirror of every interned policy in one shared `Vec<u64>`:
/// per relation id `r`, `words[base + 2r]` is the union of the permitted
/// view masks and `words[base + 2r + 1]` the buffer offset of the
/// `num_partitions` per-partition masks.  The multi-principal stores decide
/// against this mirror ([`surviving_bits`](Self::surviving_bits) /
/// [`surviving_bits_packed`](Self::surviving_bits_packed)): one descriptor
/// load plus lookups in a single hot buffer shared by all policies, the
/// cache-friendliest form of the decision loop.
#[derive(Debug, Default)]
pub struct PolicyArena {
    compiled: Vec<CompiledPolicy>,
    sources: Vec<SecurityPolicy>,
    index: HashMap<Vec<CompiledPartition>, u32>,
    /// Interning hits.  Atomic so that a **hit** — the steady-state outcome
    /// of online churn over a bounded preset space — can be recorded
    /// through a shared (`Arc`'d) arena without copy-on-write cloning it;
    /// see [`PolicyStore`](crate::PolicyStore), which snapshots its arena
    /// behind an `Arc` for the service layer's epoch snapshots.
    hits: std::sync::atomic::AtomicU64,
    /// Flattened mirror: inline descriptors plus the shared word buffer.
    flat: Vec<FlatPolicy>,
    words: Vec<u64>,
}

impl Clone for PolicyArena {
    fn clone(&self) -> Self {
        PolicyArena {
            compiled: self.compiled.clone(),
            sources: self.sources.clone(),
            index: self.index.clone(),
            hits: std::sync::atomic::AtomicU64::new(self.hits()),
            flat: self.flat.clone(),
            words: self.words.clone(),
        }
    }
}

impl PolicyArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PolicyArena::default()
    }

    /// The interning fingerprint of a policy: its compiled partitions, in
    /// declaration order (names excluded).
    fn fingerprint(policy: &SecurityPolicy) -> Vec<CompiledPartition> {
        policy
            .partitions()
            .iter()
            .map(CompiledPartition::compile)
            .collect()
    }

    /// Interns a policy, returning its arena index.
    ///
    /// A policy whose compiled form was seen before returns the existing
    /// index (and the passed policy is dropped); otherwise the policy is
    /// compiled, stored and assigned the next index.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than [`MAX_PARTITIONS`] partitions, or
    /// if the arena exceeds `u32::MAX` distinct policies.
    pub fn intern(&mut self, policy: SecurityPolicy) -> u32 {
        let fingerprint = Self::fingerprint(&policy);
        if let Some(&id) = self.index.get(&fingerprint) {
            self.record_hit();
            return id;
        }
        let compiled = CompiledPolicy::compile(&policy);
        let id = u32::try_from(self.compiled.len()).expect("more than u32::MAX distinct policies");
        self.index.insert(fingerprint, id);
        self.flatten(&compiled);
        self.compiled.push(compiled);
        self.sources.push(policy);
        id
    }

    /// The arena index of a policy whose compiled form was interned before,
    /// without interning — the read-only fast path of
    /// [`intern`](Self::intern).  Callers holding the arena behind a shared
    /// pointer use this (plus [`record_hit`](Self::record_hit)) to resolve
    /// structurally known policies without cloning the arena; only a
    /// genuinely new compiled form needs the mutable interning path.
    pub fn lookup_interned(&self, policy: &SecurityPolicy) -> Option<u32> {
        self.index.get(&Self::fingerprint(policy)).copied()
    }

    /// Records an interning hit resolved through
    /// [`lookup_interned`](Self::lookup_interned).
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Appends a policy's flattened mirror to the shared buffer.
    fn flatten(&mut self, compiled: &CompiledPolicy) {
        let k = compiled.num_partitions as usize;
        let table_len = compiled.rel_index.len();
        let base = u32::try_from(self.words.len()).expect("policy arena buffer too large");
        // Relation table: (union, absolute masks offset) word pairs.
        let masks_base = self.words.len() + 2 * table_len;
        for &(offset, union) in &compiled.rel_index {
            self.words.push(union);
            self.words.push((masks_base + offset as usize) as u64);
        }
        debug_assert_eq!(self.words.len(), masks_base);
        self.words.extend_from_slice(&compiled.partition_masks);
        self.flat.push(FlatPolicy {
            base,
            table_len: table_len as u32,
            num_partitions: k as u32,
        });
    }

    /// [`CompiledPolicy::surviving_bits`] evaluated on the arena's flattened
    /// mirror of policy `id`.
    ///
    /// # Panics
    ///
    /// Panics if the index was not issued by this arena.
    #[inline]
    pub fn surviving_bits(&self, id: u32, consistent: u64, label: &DisclosureLabel) -> u64 {
        let policy = self.flat[id as usize];
        let mut surviving = consistent;
        for atom in label.atoms() {
            surviving &= self.partitions_allowing_flat(policy, atom.relation, atom.mask);
            if surviving == 0 {
                break;
            }
        }
        surviving
    }

    /// [`CompiledPolicy::surviving_bits_packed`] evaluated on the arena's
    /// flattened mirror of policy `id`.
    ///
    /// # Panics
    ///
    /// Panics if the index was not issued by this arena.
    #[inline]
    pub fn surviving_bits_packed(&self, id: u32, consistent: u64, label: &[PackedLabel]) -> u64 {
        let policy = self.flat[id as usize];
        let mut surviving = consistent;
        for packed in label {
            surviving &=
                self.partitions_allowing_flat(policy, packed.relation(), u64::from(packed.mask()));
            if surviving == 0 {
                break;
            }
        }
        surviving
    }

    /// [`CompiledPolicy::partitions_allowing`] on the flattened mirror.
    #[inline]
    fn partitions_allowing_flat(&self, policy: FlatPolicy, relation: RelId, mask: ViewMask) -> u64 {
        if relation.0 >= policy.table_len {
            return 0;
        }
        let row = policy.base as usize + 2 * relation.0 as usize;
        let union = self.words[row];
        if mask & union == 0 {
            return 0;
        }
        // Stateless (single-partition) policies: the union *is* the only
        // partition's mask, already tested above.
        if policy.num_partitions == 1 {
            return 1;
        }
        let masks_at = self.words[row + 1] as usize;
        let masks = &self.words[masks_at..masks_at + policy.num_partitions as usize];
        let mut allowing = 0u64;
        for (i, &partition_mask) in masks.iter().enumerate() {
            allowing |= u64::from(mask & partition_mask != 0) << i;
        }
        allowing
    }

    /// The compiled policy behind an index.
    ///
    /// # Panics
    ///
    /// Panics if the index was not issued by this arena.
    #[inline]
    pub fn compiled(&self, id: u32) -> &CompiledPolicy {
        &self.compiled[id as usize]
    }

    /// The source policy behind an index (the first-registered
    /// representative of its compiled form).
    ///
    /// # Panics
    ///
    /// Panics if the index was not issued by this arena.
    pub fn source(&self, id: u32) -> &SecurityPolicy {
        &self.sources[id as usize]
    }

    /// Number of distinct compiled policies.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }

    /// Number of [`intern`](Self::intern) calls answered by an existing
    /// entry — the interning hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::SecurityViews;

    fn registry() -> SecurityViews {
        SecurityViews::paper_example()
    }

    fn wall(registry: &SecurityViews, names: [&str; 2]) -> SecurityPolicy {
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        SecurityPolicy::chinese_wall([
            PolicyPartition::from_views(names[0], registry, [v1]),
            PolicyPartition::from_views(names[1], registry, [v3]),
        ])
    }

    #[test]
    fn initial_word_matches_the_partition_count() {
        assert_eq!(initial_consistency_word(0), 0);
        assert_eq!(initial_consistency_word(1), 0b1);
        assert_eq!(initial_consistency_word(5), 0b11111);
        assert_eq!(initial_consistency_word(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "limited to 64 partitions")]
    fn initial_word_rejects_too_many_partitions() {
        initial_consistency_word(65);
    }

    #[test]
    fn compiled_partitions_agree_with_uncompiled_masks() {
        let registry = registry();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        let partition = PolicyPartition::from_views("p", &registry, [v1, v2]);
        let compiled = CompiledPartition::compile(&partition);
        let meetings = registry.catalog().resolve("Meetings").unwrap();
        let contacts = registry.catalog().resolve("Contacts").unwrap();
        assert_eq!(
            compiled.mask_for(meetings),
            partition.permitted_mask(meetings)
        );
        assert_eq!(compiled.mask_for(contacts), 0);
    }

    #[test]
    fn interning_dedupes_up_to_partition_names() {
        let registry = registry();
        let mut arena = PolicyArena::new();
        let a = arena.intern(wall(&registry, ["meetings", "contacts"]));
        // Same structure, different partition names: same arena entry.
        let b = arena.intern(wall(&registry, ["left", "right"]));
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.hits(), 1);
        // A structurally different policy gets a fresh entry.
        let c = arena.intern(SecurityPolicy::allow_all(&registry));
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        // Source lookup returns the first representative.
        assert_eq!(arena.source(a).partitions()[0].name, "meetings");
        assert_eq!(arena.compiled(a).num_partitions(), 2);
        assert!(!arena.is_empty());
    }

    #[test]
    fn atom_major_surviving_bits_match_the_partition_major_definition() {
        use fdc_core::{AtomLabel, DisclosureLabel};
        let registry = registry();
        let policy = wall(&registry, ["meetings", "contacts"]);
        let compiled = CompiledPolicy::compile(&policy);
        let partitions: Vec<CompiledPartition> = policy
            .partitions()
            .iter()
            .map(CompiledPartition::compile)
            .collect();
        let meetings = registry.catalog().resolve("Meetings").unwrap();
        let contacts = registry.catalog().resolve("Contacts").unwrap();
        // Sweep all small labels over the two relations and all consistency
        // words, comparing against the definitional partition-major loop.
        for m_mask in 0u64..4 {
            for c_mask in 0u64..2 {
                let mut atoms = Vec::new();
                if m_mask != 0 {
                    atoms.push(AtomLabel::new(meetings, m_mask));
                }
                if c_mask != 0 {
                    atoms.push(AtomLabel::new(contacts, c_mask));
                }
                let label = DisclosureLabel::from_atoms(atoms);
                for consistent in 0u64..4 {
                    let mut expected = 0u64;
                    for (i, partition) in partitions.iter().enumerate() {
                        if consistent & (1 << i) != 0 && partition.allows(&label) {
                            expected |= 1 << i;
                        }
                    }
                    assert_eq!(
                        compiled.surviving_bits(consistent, &label),
                        expected,
                        "m={m_mask:#b} c={c_mask:#b} consistent={consistent:#b}"
                    );
                    assert_eq!(
                        compiled.surviving_bits_packed(consistent, &label.pack()),
                        expected
                    );
                }
            }
        }
    }

    #[test]
    fn partition_order_is_part_of_the_identity() {
        // Policies that differ only in partition order must NOT be merged:
        // the consistency bit at index i has to mean the same partition as it
        // does for a ReferenceMonitor built from the original policy.
        let registry = registry();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let ab = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("a", &registry, [v1]),
            PolicyPartition::from_views("b", &registry, [v3]),
        ]);
        let ba = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("b", &registry, [v3]),
            PolicyPartition::from_views("a", &registry, [v1]),
        ]);
        let mut arena = PolicyArena::new();
        assert_ne!(arena.intern(ab), arena.intern(ba));
        assert_eq!(arena.len(), 2);
    }
}
