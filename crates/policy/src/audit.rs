//! Overprivilege auditing.
//!
//! Section 2.2: "Labeling also makes it possible to detect overprivileged
//! applications that request access to more permissions than they need due
//! to developer error."  An app declares the set of security views
//! (permissions) it wants; its observed query workload determines the set it
//! actually *needs* — the union of the queries' disclosure labels.  The
//! audit compares the two and reports, per relation, the permissions that
//! were requested but never required and the queries that are not covered by
//! the requested permissions at all.

use std::collections::BTreeSet;

use fdc_core::{DisclosureLabel, QueryLabeler, SecurityViewId, SecurityViews};
use fdc_cq::ConjunctiveQuery;

use crate::partition::PolicyPartition;
use crate::policy::SecurityPolicy;

/// The outcome of auditing one app's requested permissions against its
/// observed workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Permissions the app requested.
    pub requested: BTreeSet<SecurityViewId>,
    /// Permissions that at least one observed query actually needs
    /// (i.e. appears in some atom's `ℓ⁺` where it is the only requested
    /// view able to answer that atom, or is the cheapest requested answer).
    pub used: BTreeSet<SecurityViewId>,
    /// Requested permissions that no observed query needed.
    pub unused: BTreeSet<SecurityViewId>,
    /// Indices (into the audited workload) of queries that the requested
    /// permissions cannot answer at all.
    pub uncovered_queries: Vec<usize>,
}

impl AuditReport {
    /// True if every requested permission was needed and every query was
    /// answerable: the app is neither over- nor under-privileged.
    pub fn is_tight(&self) -> bool {
        self.unused.is_empty() && self.uncovered_queries.is_empty()
    }

    /// True if some requested permission was never needed.
    pub fn is_overprivileged(&self) -> bool {
        !self.unused.is_empty()
    }

    /// Renders the report with human-readable permission names.
    pub fn describe(&self, registry: &SecurityViews) -> String {
        let names = |ids: &BTreeSet<SecurityViewId>| -> String {
            let list: Vec<&str> = ids
                .iter()
                .map(|id| registry.view(*id).name.as_str())
                .collect();
            if list.is_empty() {
                "(none)".to_owned()
            } else {
                list.join(", ")
            }
        };
        format!(
            "requested: {}\nused:      {}\nunused:    {}\nuncovered queries: {}",
            names(&self.requested),
            names(&self.used),
            names(&self.unused),
            self.uncovered_queries.len()
        )
    }
}

/// The set of security views a policy requests: the union of the permitted
/// views across all of its partitions, resolved to ids through the registry.
///
/// This is the "requested permissions" input of [`audit_app`] for a
/// principal registered in a policy store — a live service audits an app by
/// comparing this set against the app's observed query workload.
pub fn requested_views(
    policy: &SecurityPolicy,
    registry: &SecurityViews,
) -> BTreeSet<SecurityViewId> {
    let mut requested = BTreeSet::new();
    for partition in policy.partitions() {
        for relation in partition.relations() {
            let mut mask = partition.permitted_mask(relation);
            while mask != 0 {
                let bit = mask.trailing_zeros();
                mask &= mask - 1;
                if let Some(id) = registry.view_by_relation_bit(relation, bit) {
                    requested.insert(id);
                }
            }
        }
    }
    requested
}

/// Audits an app: which of its `requested` permissions does the observed
/// `workload` actually need?
///
/// A requested permission counts as *used* if, for some query atom, it
/// appears in the atom's `ℓ⁺` — i.e. it is one of the permissions that can
/// answer that atom.  A query is *uncovered* if some atom's `ℓ⁺` contains no
/// requested permission at all (the app cannot run that query with what it
/// asked for).
pub fn audit_app<L, I>(labeler: &L, requested: I, workload: &[ConjunctiveQuery]) -> AuditReport
where
    L: QueryLabeler,
    I: IntoIterator<Item = SecurityViewId>,
{
    let registry = labeler.security_views();
    let requested: BTreeSet<SecurityViewId> = requested.into_iter().collect();
    let requested_partition =
        PolicyPartition::from_views("requested", registry, requested.iter().copied());

    let mut used: BTreeSet<SecurityViewId> = BTreeSet::new();
    let mut uncovered_queries = Vec::new();
    for (index, query) in workload.iter().enumerate() {
        let label: DisclosureLabel = labeler.label_query(query);
        if !requested_partition.allows(&label) {
            uncovered_queries.push(index);
        }
        for atom in label.atoms() {
            for view in atom.views(registry) {
                if requested.contains(&view) {
                    used.insert(view);
                }
            }
        }
    }
    let unused: BTreeSet<SecurityViewId> = requested.difference(&used).copied().collect();
    AuditReport {
        requested,
        used,
        unused,
        uncovered_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::{BitVectorLabeler, SecurityViews};
    use fdc_cq::parser::parse_query;

    fn setup() -> (SecurityViews, BitVectorLabeler) {
        let registry = SecurityViews::paper_example();
        (registry.clone(), BitVectorLabeler::new(registry))
    }

    #[test]
    fn a_tight_app_is_reported_as_tight() {
        let (registry, labeler) = setup();
        let catalog = registry.catalog();
        let v2 = registry.id_by_name("V2").unwrap();
        let workload = vec![parse_query(catalog, "Q(x) :- Meetings(x, y)").unwrap()];
        let report = audit_app(&labeler, [v2], &workload);
        assert!(report.is_tight());
        assert!(!report.is_overprivileged());
        assert_eq!(report.used.len(), 1);
        assert!(report.unused.is_empty());
        assert!(report.uncovered_queries.is_empty());
    }

    #[test]
    fn unused_permissions_are_flagged() {
        let (registry, labeler) = setup();
        let catalog = registry.catalog();
        let v2 = registry.id_by_name("V2").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        // The app asks for contacts access but only ever queries meeting times.
        let workload = vec![parse_query(catalog, "Q(x) :- Meetings(x, y)").unwrap()];
        let report = audit_app(&labeler, [v2, v3], &workload);
        assert!(report.is_overprivileged());
        assert!(!report.is_tight());
        assert_eq!(report.unused, BTreeSet::from([v3]));
        let text = report.describe(&registry);
        assert!(text.contains("V3"));
        assert!(text.contains("unused"));
    }

    #[test]
    fn uncovered_queries_are_flagged() {
        let (registry, labeler) = setup();
        let catalog = registry.catalog();
        let v2 = registry.id_by_name("V2").unwrap();
        // The app asks only for meeting times but also queries full rows.
        let workload = vec![
            parse_query(catalog, "Q(x) :- Meetings(x, y)").unwrap(),
            parse_query(catalog, "Q(x, y) :- Meetings(x, y)").unwrap(),
        ];
        let report = audit_app(&labeler, [v2], &workload);
        assert_eq!(report.uncovered_queries, vec![1]);
        assert!(!report.is_tight());
        assert!(!report.is_overprivileged());
    }

    #[test]
    fn an_empty_workload_marks_everything_unused() {
        let (registry, labeler) = setup();
        let all: Vec<_> = registry.iter().map(|(id, _)| id).collect();
        let report = audit_app(&labeler, all.clone(), &[]);
        assert_eq!(report.unused.len(), all.len());
        assert!(report.used.is_empty());
        assert!(report.uncovered_queries.is_empty());
        assert!(report.is_overprivileged());
        assert!(report.describe(&registry).contains("(none)"));
    }

    #[test]
    fn requested_views_unions_the_policy_partitions() {
        use crate::partition::PolicyPartition;
        let (registry, labeler) = setup();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let policy = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1, v2]),
            PolicyPartition::from_views("contacts", &registry, [v3, v2]),
        ]);
        let requested = requested_views(&policy, &registry);
        assert_eq!(requested, BTreeSet::from([v1, v2, v3]));
        // Feeding the derived set into the audit works end to end.
        let catalog = registry.catalog();
        let workload =
            vec![fdc_cq::parser::parse_query(catalog, "Q(x) :- Meetings(x, y)").unwrap()];
        let report = audit_app(&labeler, requested, &workload);
        assert_eq!(report.unused, BTreeSet::from([v3]));
        assert!(requested_views(&SecurityPolicy::new(), &registry).is_empty());
    }

    #[test]
    fn requesting_a_stronger_view_than_needed_is_overprivilege() {
        let (registry, labeler) = setup();
        let catalog = registry.catalog();
        let v1 = registry.id_by_name("V1").unwrap();
        let v2 = registry.id_by_name("V2").unwrap();
        // The workload only needs V2, but the app requests both V1 and V2.
        // V1 *can* answer the query, so it shows up as used; the audit is
        // about per-permission need, and here both requested views answer
        // the workload, so neither is flagged.  Requesting V1 *instead of*
        // V2 would also be fine; requesting V3 would not.
        let workload = vec![parse_query(catalog, "Q(x) :- Meetings(x, y)").unwrap()];
        let report = audit_app(&labeler, [v1, v2], &workload);
        assert!(report.unused.is_empty());
        assert!(report.is_tight());
    }
}
