//! The Facebook permissions case study (Section 7.1, Table 2).
//!
//! Facebook exposed user data through two query interfaces — FQL and the
//! Graph API — and documented, for every queryable view, the set of
//! permissions an app must hold to receive an answer.  Those documented
//! permission sets are hand-written disclosure labels.  The paper reviews 42
//! `User`-table views that are reachable through both APIs, compares the two
//! hand-written labels for each, and finds **six** views whose documented
//! labels disagree (Table 2); probing the live APIs showed the discrepancies
//! were documentation errors.
//!
//! This crate reproduces that review against an in-repo model of the
//! documentation (the live 2013-era APIs no longer exist; the substitution
//! is recorded in `DESIGN.md`):
//!
//! * [`docs`] — the 42 documented views with their FQL and Graph-API
//!   permission labels, including the six Table 2 discrepancies verbatim;
//! * [`review`] — the automatic cross-API inconsistency detector and the
//!   Table 2 report it produces;
//! * [`autolabel`] — the counterfactual the paper argues for: deriving the
//!   labels automatically from per-permission security views, which
//!   reproduces the adjudicated "correct" labels and is consistent across
//!   APIs by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autolabel;
pub mod docs;
pub mod review;

pub use docs::{documented_views, DocumentedView, PermissionLabel};
pub use review::{review_documentation, CorrectSide, Discrepancy, ReviewReport};
