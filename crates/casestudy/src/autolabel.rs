//! The data-derived counterfactual: labeling the 42 `User` views
//! automatically instead of by hand.
//!
//! The paper's argument (Sections 1 and 7.1) is that hand-written labels
//! drift — the two Facebook APIs ended up documenting different permissions
//! for the same data — whereas a *data-derived* labeler computes the label
//! from the view definition, so the same data always gets the same label no
//! matter which API serves it.
//!
//! This module builds that counterfactual with the machinery of `fdc-core`:
//! a single-relation catalog holding all 42 documented attributes, one
//! security view per permission (each exposing exactly the attributes that
//! permission actually grants, per the adjudicated "correct" labels), and
//! the automatic labeler.  [`autolabel_report`] then checks, for every
//! attribute, that the automatically computed label names exactly the
//! correct permissions — and, being a single function of the data, it cannot
//! disagree with itself across APIs.

use std::collections::BTreeMap;

use fdc_core::{BitVectorLabeler, QueryLabeler, SecurityViews};
use fdc_cq::query::{Arg, QueryBuilder};
use fdc_cq::{Catalog, ConjunctiveQuery, RelId};

use crate::docs::{documented_views, DocumentedView, PermissionLabel};

/// Name of the synthetic view granting the public (no permission) fields.
pub const PUBLIC_VIEW: &str = "public_profile";
/// Name of the synthetic view granting the "any permission" fields.
pub const BASIC_VIEW: &str = "basic_access";

/// The automatically labeled ecosystem for the 42 documented attributes.
#[derive(Debug, Clone)]
pub struct AutoLabeledDocs {
    /// Catalog with a single `User` relation holding all 42 attributes.
    pub catalog: Catalog,
    /// The `User` relation id.
    pub user: RelId,
    /// One security view per permission (plus the public and basic views).
    pub views: SecurityViews,
    /// The documented views, in the same order as [`documented_views`].
    pub docs: Vec<DocumentedView>,
}

/// The permissions a documented view's *correct* label corresponds to, in
/// security-view terms.
fn correct_view_names(view: &DocumentedView) -> Vec<String> {
    match &view.actual_label {
        PermissionLabel::NoneRequired => vec![PUBLIC_VIEW.to_owned()],
        PermissionLabel::AnyPermission => vec![BASIC_VIEW.to_owned()],
        PermissionLabel::OneOf(perms) => perms.iter().map(|p| (*p).to_owned()).collect(),
        PermissionLabel::Restricted { base, .. } => match base.as_ref() {
            PermissionLabel::NoneRequired => vec![PUBLIC_VIEW.to_owned()],
            PermissionLabel::AnyPermission => vec![BASIC_VIEW.to_owned()],
            PermissionLabel::OneOf(perms) => perms.iter().map(|p| (*p).to_owned()).collect(),
            PermissionLabel::Restricted { .. } => Vec::new(),
        },
    }
}

/// Builds the single-relation catalog and the per-permission security views.
pub fn build() -> AutoLabeledDocs {
    let docs = documented_views();

    // The User relation: one column per documented attribute (FQL names).
    let attributes: Vec<&str> = docs.iter().map(|v| v.fql_name).collect();
    let mut catalog = Catalog::new();
    let user = catalog
        .add_relation("User", &attributes)
        .expect("fresh catalog");

    // Group attributes by the permission that grants them.
    let mut grants: BTreeMap<String, Vec<&str>> = BTreeMap::new();
    for view in &docs {
        for permission in correct_view_names(view) {
            grants.entry(permission).or_default().push(view.fql_name);
        }
    }

    // One projection view per permission.
    let mut views = SecurityViews::new(&catalog);
    for (permission, columns) in &grants {
        let mut builder = QueryBuilder::new();
        let args: Vec<Arg> = attributes
            .iter()
            .map(|attr| {
                let var = if columns.contains(attr) {
                    builder.dvar(attr)
                } else {
                    builder.evar(attr)
                };
                Arg::Var(var)
            })
            .collect();
        builder.atom(user, args);
        let query = builder.build().expect("permission views are valid");
        views
            .add(permission, query)
            .expect("permission names are unique");
    }

    AutoLabeledDocs {
        catalog,
        user,
        views,
        docs,
    }
}

impl AutoLabeledDocs {
    /// The single-attribute projection query for one documented attribute.
    pub fn attribute_query(&self, fql_name: &str) -> ConjunctiveQuery {
        let attributes = &self.catalog.relation(self.user).attributes;
        let mut builder = QueryBuilder::new();
        let args: Vec<Arg> = attributes
            .iter()
            .map(|attr| {
                let var = if attr == fql_name {
                    builder.dvar(attr)
                } else {
                    builder.evar(attr)
                };
                Arg::Var(var)
            })
            .collect();
        builder.atom(self.user, args);
        builder.build().expect("attribute queries are valid")
    }

    /// Automatically labels one attribute and returns the names of the
    /// security views (permissions) in its `ℓ⁺`.
    pub fn automatic_label(&self, fql_name: &str) -> Vec<String> {
        let labeler = BitVectorLabeler::new(self.views.clone());
        let label = labeler.label_query(&self.attribute_query(fql_name));
        let mut names: Vec<String> = label
            .atoms()
            .iter()
            .flat_map(|atom| atom.views(&self.views))
            .map(|id| self.views.view(id).name.clone())
            .collect();
        names.sort();
        names
    }
}

/// One attribute's comparison between the hand-written and automatic labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutoLabelRow {
    /// The FQL attribute name.
    pub attribute: String,
    /// The permissions the live APIs actually required (adjudicated).
    pub correct: Vec<String>,
    /// The permissions the automatic labeler derives.
    pub automatic: Vec<String>,
    /// Whether the automatic label matches the correct one.
    pub matches: bool,
}

/// Labels all 42 attributes automatically and compares each against the
/// adjudicated correct label.
pub fn autolabel_report() -> Vec<AutoLabelRow> {
    let system = build();
    let labeler = BitVectorLabeler::new(system.views.clone());
    system
        .docs
        .iter()
        .map(|doc| {
            let mut correct = correct_view_names(doc);
            correct.sort();
            let label = labeler.label_query(&system.attribute_query(doc.fql_name));
            let mut automatic: Vec<String> = label
                .atoms()
                .iter()
                .flat_map(|atom| atom.views(&system.views))
                .map(|id| system.views.view(id).name.clone())
                .collect();
            automatic.sort();
            let matches = automatic == correct;
            AutoLabelRow {
                attribute: doc.fql_name.to_owned(),
                correct,
                automatic,
                matches,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_security_view_per_permission_is_created() {
        let system = build();
        assert_eq!(system.catalog.arity(system.user), 42);
        // Every permission mentioned in a correct label is a view, plus the
        // public and basic views.
        assert!(system.views.by_name(PUBLIC_VIEW).is_some());
        assert!(system.views.by_name(BASIC_VIEW).is_some());
        assert!(system.views.by_name("user_likes").is_some());
        assert!(system.views.by_name("friends_birthday").is_some());
        // No stray relations.
        assert_eq!(system.views.num_relations_covered(), 1);
    }

    #[test]
    fn automatic_labels_match_the_adjudicated_correct_labels() {
        let report = autolabel_report();
        assert_eq!(report.len(), 42);
        for row in &report {
            assert!(
                row.matches,
                "attribute {} labeled {:?} but the correct label is {:?}",
                row.attribute, row.automatic, row.correct
            );
        }
    }

    #[test]
    fn the_table_2_attributes_get_their_corrected_labels() {
        let system = build();
        // quotes: the live APIs required user_likes / friends_likes (the FQL
        // documentation was right); the automatic label agrees.
        assert_eq!(
            system.automatic_label("quotes"),
            vec!["friends_likes".to_owned(), "user_likes".to_owned()]
        );
        // pic: public.
        assert_eq!(system.automatic_label("pic"), vec![PUBLIC_VIEW.to_owned()]);
        // profile_url: any authorized app.
        assert_eq!(
            system.automatic_label("profile_url"),
            vec![BASIC_VIEW.to_owned()]
        );
        // timezone / devices: basic access (their restriction is about
        // audience, not about which permission).
        assert_eq!(
            system.automatic_label("timezone"),
            vec![BASIC_VIEW.to_owned()]
        );
        assert_eq!(
            system.automatic_label("devices"),
            vec![BASIC_VIEW.to_owned()]
        );
        // relationship_status: the relationships permissions.
        assert_eq!(
            system.automatic_label("relationship_status"),
            vec![
                "friends_relationships".to_owned(),
                "user_relationships".to_owned()
            ]
        );
    }

    #[test]
    fn automatic_labels_are_api_independent_by_construction() {
        // The same attribute queried "through FQL" or "through the Graph
        // API" is the same conjunctive query over the same relation, so the
        // labeler cannot produce two different answers — the drift of
        // Table 2 is structurally impossible.
        let system = build();
        let via_fql = system.attribute_query("quotes");
        let via_graph = system.attribute_query("quotes");
        assert_eq!(via_fql, via_graph);
        assert_eq!(
            system.automatic_label("quotes"),
            system.automatic_label("quotes")
        );
    }
}
