//! The documented permission labels of the 42 `User` views (Section 7.1).
//!
//! Each [`DocumentedView`] records one attribute of the Facebook `User`
//! table that was reachable through both FQL and the Graph API, together
//! with the permission label each API's documentation assigned to it.  The
//! six views of Table 2 carry the exact labels the paper reports; the
//! remaining 36 carry the (consistent) labels of the era's documentation:
//! public profile fields require no permission, extended profile fields
//! require the matching `user_*` / `friends_*` permission pair.

/// A documented permission label for one API's view of one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermissionLabel {
    /// No permissions are required.
    NoneRequired,
    /// Any non-empty set of permissions suffices ("any" in Table 2).
    AnyPermission,
    /// One of the listed permissions is required.
    OneOf(Vec<&'static str>),
    /// The base requirement plus a documented availability restriction
    /// (e.g. "only available for the current user").
    Restricted {
        /// The underlying permission requirement.
        base: Box<PermissionLabel>,
        /// The documented restriction, verbatim.
        note: &'static str,
    },
}

impl PermissionLabel {
    /// Convenience constructor for the common `user_x or friends_x` pair.
    pub fn pair(user: &'static str, friends: &'static str) -> Self {
        PermissionLabel::OneOf(vec![user, friends])
    }

    /// The permission names mentioned by the label (empty for
    /// [`NoneRequired`](PermissionLabel::NoneRequired) and
    /// [`AnyPermission`](PermissionLabel::AnyPermission)).
    pub fn permissions(&self) -> Vec<&'static str> {
        match self {
            PermissionLabel::NoneRequired | PermissionLabel::AnyPermission => Vec::new(),
            PermissionLabel::OneOf(names) => names.clone(),
            PermissionLabel::Restricted { base, .. } => base.permissions(),
        }
    }

    /// A short human-readable rendering matching the wording of Table 2.
    pub fn render(&self) -> String {
        match self {
            PermissionLabel::NoneRequired => "none".to_owned(),
            PermissionLabel::AnyPermission => "any".to_owned(),
            PermissionLabel::OneOf(names) => names.join(" or "),
            PermissionLabel::Restricted { base, note } => format!("{}; {}", base.render(), note),
        }
    }
}

/// One of the 42 `User` views reachable through both APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentedView {
    /// The FQL column name.
    pub fql_name: &'static str,
    /// The Graph API field name (sometimes different, e.g. `pic` vs
    /// `picture`).
    pub graph_name: &'static str,
    /// The permission label in the FQL documentation.
    pub fql_label: PermissionLabel,
    /// The permission label in the Graph API documentation.
    pub graph_label: PermissionLabel,
    /// The label confirmed by probing the live APIs (the paper's "Correct
    /// Labeling" column); for consistent rows this equals both documented
    /// labels.
    pub actual_label: PermissionLabel,
}

impl DocumentedView {
    /// True if the two APIs document the same label for this view.
    pub fn is_consistent(&self) -> bool {
        self.fql_label == self.graph_label
    }
}

fn consistent(
    fql_name: &'static str,
    graph_name: &'static str,
    label: PermissionLabel,
) -> DocumentedView {
    DocumentedView {
        fql_name,
        graph_name,
        fql_label: label.clone(),
        graph_label: label.clone(),
        actual_label: label,
    }
}

/// The 42 documented `User` views compared in Section 7.1.
pub fn documented_views() -> Vec<DocumentedView> {
    use PermissionLabel::{AnyPermission, NoneRequired};

    let mut views = Vec::with_capacity(42);

    // ---- The 36 consistent views -----------------------------------------
    // Public profile fields: no permissions required in either API.
    for (fql, graph) in [
        ("uid", "id"),
        ("name", "name"),
        ("first_name", "first_name"),
        ("middle_name", "middle_name"),
        ("last_name", "last_name"),
        ("sex", "gender"),
        ("locale", "locale"),
        ("username", "username"),
    ] {
        views.push(consistent(fql, graph, NoneRequired));
    }
    // Fields available to any authorized app ("any" permissions).
    for (fql, graph) in [
        ("is_app_user", "installed"),
        ("third_party_id", "third_party_id"),
        ("verified", "verified"),
        ("updated_time", "updated_time"),
    ] {
        views.push(consistent(fql, graph, AnyPermission));
    }
    // Extended profile fields: the matching user_* / friends_* pair.
    for (fql, graph, user_perm, friends_perm) in [
        ("about_me", "bio", "user_about_me", "friends_about_me"),
        (
            "activities",
            "activities",
            "user_activities",
            "friends_activities",
        ),
        ("birthday", "birthday", "user_birthday", "friends_birthday"),
        (
            "birthday_date",
            "birthday_date",
            "user_birthday",
            "friends_birthday",
        ),
        ("books", "books", "user_likes", "friends_likes"),
        (
            "education",
            "education",
            "user_education_history",
            "friends_education_history",
        ),
        (
            "hometown_location",
            "hometown",
            "user_hometown",
            "friends_hometown",
        ),
        (
            "interests",
            "interests",
            "user_interests",
            "friends_interests",
        ),
        ("languages", "languages", "user_likes", "friends_likes"),
        (
            "current_location",
            "location",
            "user_location",
            "friends_location",
        ),
        (
            "meeting_for",
            "interested_in",
            "user_relationship_details",
            "friends_relationship_details",
        ),
        (
            "meeting_sex",
            "interested_in_sex",
            "user_relationship_details",
            "friends_relationship_details",
        ),
        ("movies", "movies", "user_likes", "friends_likes"),
        ("music", "music", "user_likes", "friends_likes"),
        (
            "political",
            "political",
            "user_religion_politics",
            "friends_religion_politics",
        ),
        (
            "relationship_details",
            "significant_other",
            "user_relationships",
            "friends_relationships",
        ),
        (
            "religion",
            "religion",
            "user_religion_politics",
            "friends_religion_politics",
        ),
        ("sports", "sports", "user_likes", "friends_likes"),
        ("tv", "television", "user_likes", "friends_likes"),
        ("website", "website", "user_website", "friends_website"),
        ("work", "work", "user_work_history", "friends_work_history"),
        ("checkins", "checkins", "user_checkins", "friends_checkins"),
        ("events", "events", "user_events", "friends_events"),
    ] {
        views.push(consistent(
            fql,
            graph,
            PermissionLabel::pair(user_perm, friends_perm),
        ));
    }
    // email is granted by the single `email` permission in both APIs.
    views.push(consistent(
        "email",
        "email",
        PermissionLabel::OneOf(vec!["email"]),
    ));

    // ---- The six Table 2 inconsistencies ----------------------------------
    // pic ("picture" in the Graph API).
    views.push(DocumentedView {
        fql_name: "pic",
        graph_name: "picture",
        fql_label: NoneRequired,
        graph_label: PermissionLabel::Restricted {
            base: Box::new(AnyPermission),
            note: "for pages with whitelisting/targeting restrictions, otherwise none",
        },
        actual_label: NoneRequired, // Table 2: correct labeling is FQL's.
    });
    // timezone.
    views.push(DocumentedView {
        fql_name: "timezone",
        graph_name: "timezone",
        fql_label: AnyPermission,
        graph_label: PermissionLabel::Restricted {
            base: Box::new(AnyPermission),
            note: "available only for the current user",
        },
        actual_label: PermissionLabel::Restricted {
            base: Box::new(AnyPermission),
            note: "available only for the current user",
        }, // Table 2: correct labeling is the Graph API's.
    });
    // devices.
    views.push(DocumentedView {
        fql_name: "devices",
        graph_name: "devices",
        fql_label: AnyPermission,
        graph_label: PermissionLabel::Restricted {
            base: Box::new(AnyPermission),
            note: "only available for friends of the current user",
        },
        actual_label: PermissionLabel::Restricted {
            base: Box::new(AnyPermission),
            note: "only available for friends of the current user",
        }, // Table 2: correct labeling is the Graph API's.
    });
    // relationship_status.
    views.push(DocumentedView {
        fql_name: "relationship_status",
        graph_name: "relationship_status",
        fql_label: AnyPermission,
        graph_label: PermissionLabel::pair("user_relationships", "friends_relationships"),
        actual_label: PermissionLabel::pair("user_relationships", "friends_relationships"),
        // Table 2: correct labeling is the Graph API's.
    });
    // quotes.
    views.push(DocumentedView {
        fql_name: "quotes",
        graph_name: "quotes",
        fql_label: PermissionLabel::pair("user_likes", "friends_likes"),
        graph_label: PermissionLabel::pair("user_about_me", "friends_about_me"),
        actual_label: PermissionLabel::pair("user_likes", "friends_likes"),
        // Table 2: correct labeling is FQL's.
    });
    // profile_url ("link" in the Graph API).
    views.push(DocumentedView {
        fql_name: "profile_url",
        graph_name: "link",
        fql_label: AnyPermission,
        graph_label: NoneRequired,
        actual_label: AnyPermission, // Table 2: correct labeling is FQL's.
    });

    views
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_42_documented_views() {
        assert_eq!(documented_views().len(), 42);
    }

    #[test]
    fn view_names_are_unique_within_each_api() {
        let views = documented_views();
        let mut fql: Vec<&str> = views.iter().map(|v| v.fql_name).collect();
        fql.sort_unstable();
        fql.dedup();
        assert_eq!(fql.len(), 42, "duplicate FQL column names");
    }

    #[test]
    fn exactly_six_views_are_inconsistent() {
        let views = documented_views();
        let inconsistent: Vec<&str> = views
            .iter()
            .filter(|v| !v.is_consistent())
            .map(|v| v.fql_name)
            .collect();
        assert_eq!(
            inconsistent,
            vec![
                "pic",
                "timezone",
                "devices",
                "relationship_status",
                "quotes",
                "profile_url"
            ]
        );
    }

    #[test]
    fn actual_labels_match_one_of_the_documented_sides() {
        for view in documented_views() {
            assert!(
                view.actual_label == view.fql_label || view.actual_label == view.graph_label,
                "{} has an actual label matching neither API",
                view.fql_name
            );
        }
    }

    #[test]
    fn permission_label_helpers() {
        let pair = PermissionLabel::pair("user_likes", "friends_likes");
        assert_eq!(pair.permissions(), vec!["user_likes", "friends_likes"]);
        assert_eq!(pair.render(), "user_likes or friends_likes");
        assert_eq!(PermissionLabel::NoneRequired.render(), "none");
        assert_eq!(PermissionLabel::AnyPermission.render(), "any");
        assert!(PermissionLabel::AnyPermission.permissions().is_empty());
        let restricted = PermissionLabel::Restricted {
            base: Box::new(PermissionLabel::pair("a", "b")),
            note: "friends only",
        };
        assert_eq!(restricted.permissions(), vec!["a", "b"]);
        assert!(restricted.render().contains("friends only"));
    }
}
