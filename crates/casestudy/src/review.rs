//! The cross-API documentation review (Table 2).
//!
//! [`review_documentation`] runs the comparison the authors performed by
//! hand: for every `User` view reachable through both APIs, compare the two
//! documented permission labels; where they disagree, record which side the
//! live-API probe confirmed.  The resulting [`ReviewReport`] regenerates
//! Table 2 row for row.

use std::fmt;

use crate::docs::{documented_views, DocumentedView, PermissionLabel};

/// Which API's documentation turned out to be correct for a discrepancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectSide {
    /// The FQL documentation matched the live behaviour.
    Fql,
    /// The Graph API documentation matched the live behaviour.
    GraphApi,
    /// Neither documented label matched the live behaviour.
    Neither,
}

impl fmt::Display for CorrectSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrectSide::Fql => write!(f, "FQL"),
            CorrectSide::GraphApi => write!(f, "Graph API"),
            CorrectSide::Neither => write!(f, "neither"),
        }
    }
}

/// One row of Table 2: a view whose two documented labels disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discrepancy {
    /// The attribute, named as in FQL (with the Graph API alias when it
    /// differs, mirroring the paper's "pic ('picture' in Graph API)").
    pub attribute: String,
    /// The FQL documentation's permission label.
    pub fql: PermissionLabel,
    /// The Graph API documentation's permission label.
    pub graph_api: PermissionLabel,
    /// Which documentation the live APIs agreed with.
    pub correct: CorrectSide,
}

impl Discrepancy {
    fn from_view(view: &DocumentedView) -> Self {
        let attribute = if view.fql_name == view.graph_name {
            view.fql_name.to_owned()
        } else {
            format!("{} (\"{}\" in Graph API)", view.fql_name, view.graph_name)
        };
        let correct = if view.actual_label == view.fql_label {
            CorrectSide::Fql
        } else if view.actual_label == view.graph_label {
            CorrectSide::GraphApi
        } else {
            CorrectSide::Neither
        };
        Discrepancy {
            attribute,
            fql: view.fql_label.clone(),
            graph_api: view.graph_label.clone(),
            correct,
        }
    }
}

/// The outcome of the documentation review.
#[derive(Debug, Clone)]
pub struct ReviewReport {
    /// Total number of views compared (42 in the paper).
    pub views_compared: usize,
    /// The discrepancies found (6 in the paper), in documentation order.
    pub discrepancies: Vec<Discrepancy>,
}

impl ReviewReport {
    /// Number of views whose documented labels agree.
    pub fn consistent(&self) -> usize {
        self.views_compared - self.discrepancies.len()
    }

    /// Renders the report as a Table 2-style text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Compared {} User views across FQL and the Graph API; {} inconsistent.\n\n",
            self.views_compared,
            self.discrepancies.len()
        ));
        out.push_str(&format!(
            "{:<42} | {:<34} | {:<52} | {}\n",
            "Attribute", "FQL Permissions", "Graph API Permissions", "Correct Labeling"
        ));
        out.push_str(&"-".repeat(150));
        out.push('\n');
        for d in &self.discrepancies {
            out.push_str(&format!(
                "{:<42} | {:<34} | {:<52} | {}\n",
                d.attribute,
                d.fql.render(),
                d.graph_api.render(),
                d.correct
            ));
        }
        out
    }
}

/// Runs the Section 7.1 review over the documented views.
pub fn review_documentation() -> ReviewReport {
    review_views(&documented_views())
}

/// Runs the review over an arbitrary collection of documented views (used by
/// tests and by what-if analyses).
pub fn review_views(views: &[DocumentedView]) -> ReviewReport {
    let discrepancies = views
        .iter()
        .filter(|v| !v.is_consistent())
        .map(Discrepancy::from_view)
        .collect();
    ReviewReport {
        views_compared: views.len(),
        discrepancies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::PermissionLabel;

    #[test]
    fn the_review_reproduces_table_2() {
        let report = review_documentation();
        assert_eq!(report.views_compared, 42);
        assert_eq!(report.discrepancies.len(), 6);
        assert_eq!(report.consistent(), 36);

        let rows: Vec<(&str, CorrectSide)> = report
            .discrepancies
            .iter()
            .map(|d| (d.attribute.as_str(), d.correct))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("pic (\"picture\" in Graph API)", CorrectSide::Fql),
                ("timezone", CorrectSide::GraphApi),
                ("devices", CorrectSide::GraphApi),
                ("relationship_status", CorrectSide::GraphApi),
                ("quotes", CorrectSide::Fql),
                ("profile_url (\"link\" in Graph API)", CorrectSide::Fql),
            ]
        );
    }

    #[test]
    fn the_quotes_row_matches_the_paper_verbatim() {
        let report = review_documentation();
        let quotes = report
            .discrepancies
            .iter()
            .find(|d| d.attribute == "quotes")
            .unwrap();
        assert_eq!(quotes.fql.render(), "user_likes or friends_likes");
        assert_eq!(
            quotes.graph_api.render(),
            "user_about_me or friends_about_me"
        );
        assert_eq!(quotes.correct, CorrectSide::Fql);
    }

    #[test]
    fn table_rendering_contains_every_row() {
        let table = review_documentation().to_table();
        for attr in [
            "pic",
            "timezone",
            "devices",
            "relationship_status",
            "quotes",
            "profile_url",
        ] {
            assert!(table.contains(attr), "missing row for {attr}");
        }
        assert!(table.contains("Correct Labeling"));
        assert!(table.contains("42"));
        assert!(table.contains('6'));
    }

    #[test]
    fn consistent_documentation_produces_an_empty_report() {
        let views = vec![crate::docs::DocumentedView {
            fql_name: "name",
            graph_name: "name",
            fql_label: PermissionLabel::NoneRequired,
            graph_label: PermissionLabel::NoneRequired,
            actual_label: PermissionLabel::NoneRequired,
        }];
        let report = review_views(&views);
        assert_eq!(report.views_compared, 1);
        assert!(report.discrepancies.is_empty());
        assert_eq!(report.consistent(), 1);
    }

    #[test]
    fn neither_side_correct_is_detected() {
        let views = vec![crate::docs::DocumentedView {
            fql_name: "mystery",
            graph_name: "mystery",
            fql_label: PermissionLabel::NoneRequired,
            graph_label: PermissionLabel::AnyPermission,
            actual_label: PermissionLabel::pair("user_mystery", "friends_mystery"),
        }];
        let report = review_views(&views);
        assert_eq!(report.discrepancies[0].correct, CorrectSide::Neither);
        assert_eq!(CorrectSide::Neither.to_string(), "neither");
        assert_eq!(CorrectSide::Fql.to_string(), "FQL");
        assert_eq!(CorrectSide::GraphApi.to_string(), "Graph API");
    }
}
