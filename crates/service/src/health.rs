//! Durability health: the service's serving-mode state machine and the
//! always-on counters that make storage trouble observable.
//!
//! A durable [`DisclosureService`](crate::DisclosureService) is a tiny
//! two-state machine:
//!
//! ```text
//!            WAL commit fails past its retry budget
//!   Healthy ────────────────────────────────────────▶ Degraded(ReadOnly)
//!      ▲                                                    │
//!      └────────────────────────────────────────────────────┘
//!            a checkpoint lands on recovered storage
//!            (fresh WAL segment, stale segments removed)
//! ```
//!
//! * **Healthy** — every state-changing operation is appended to the
//!   write-ahead log (and committed) *before* it applies.
//! * **Degraded(ReadOnly)** — the log is gone.  Mutations (grants,
//!   revokes, view/principal registrations, policy replacements) are
//!   refused with
//!   [`ServiceError::DurabilityUnavailable`](crate::ServiceError::DurabilityUnavailable)
//!   so no acknowledged mutation can ever be lost; admissions (submits
//!   and checks) keep serving from memory — their per-principal counters
//!   become durable again with the next successful checkpoint.
//!
//! Promotion back to healthy is driven by
//! [`checkpoint`](crate::DisclosureService::checkpoint) — typically from
//! the [`BackgroundCheckpointer`](crate::BackgroundCheckpointer)
//! maintenance thread: once a full state image lands on (recovered)
//! storage, the old segments are removed, a fresh WAL segment starts at
//! the image's sequence horizon, and logging resumes.

/// How a durable service is currently serving.  In-memory services
/// (built with [`new`](crate::DisclosureService::new)) always report
/// [`Healthy`](ServiceMode::Healthy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceMode {
    /// The write-ahead log is live: mutations are logged before they
    /// apply and every acknowledged operation is durable.
    #[default]
    Healthy,
    /// The write-ahead log failed permanently; serving continues under
    /// the given degraded contract until a checkpoint promotes the
    /// service back to [`Healthy`](ServiceMode::Healthy).
    Degraded(DegradedMode),
}

/// The degraded-serving contract (what keeps working when the log is
/// gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// Mutations are refused, admissions serve from memory.
    #[default]
    ReadOnly,
}

/// Durability health counters, nested inside
/// [`ServiceStats`](crate::ServiceStats).  All zeros on services without
/// a durable home.
///
/// The `wal_*` counters aggregate across writer replacements: when a
/// dead writer is dropped on degradation its counters are folded into a
/// base the next writer's counters stack on, so the series never resets
/// mid-life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityHealth {
    /// WAL records appended (buffered; a superset of the committed).
    pub wal_appends: u64,
    /// Successful WAL group commits.
    pub wal_commits: u64,
    /// Successful `sync_data` calls on WAL segments.
    pub wal_fsyncs: u64,
    /// Failed `sync_data` calls — each recovered by reopen-and-rewrite,
    /// never by re-issuing the fsync (see `fdc_durability::retry`).
    pub wal_fsync_failures: u64,
    /// Commit retry rounds (transient write errors, torn writes, fsync
    /// failures that were recovered within the retry budget).
    pub wal_retries: u64,
    /// Segment reopen-truncate-rewrite recoveries.
    pub wal_segment_recoveries: u64,
    /// WAL records made durable by successful commits.
    pub wal_records_committed: u64,
    /// Largest record count a single commit flushed (group-commit
    /// high-water mark).
    pub wal_max_commit_records: u64,
    /// Serving-mode transitions (Healthy → Degraded and Degraded →
    /// Healthy each count one).
    pub mode_transitions: u64,
    /// Checkpoints successfully written.
    pub checkpoints: u64,
    /// Checkpoint attempts that failed with an I/O error.
    pub checkpoint_failures: u64,
    /// Sequence number of the newest checkpoint written by *this*
    /// process (the recovery checkpoint until the first
    /// [`checkpoint`](crate::DisclosureService::checkpoint) call).
    pub last_checkpoint_seq: u64,
    /// Durable log records not yet covered by a checkpoint — the replay
    /// debt a crash right now would pay.
    pub log_since_checkpoint: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_default_to_healthy_and_compare() {
        assert_eq!(ServiceMode::default(), ServiceMode::Healthy);
        let degraded = ServiceMode::Degraded(DegradedMode::ReadOnly);
        assert_ne!(degraded, ServiceMode::Healthy);
        assert_eq!(degraded, ServiceMode::Degraded(DegradedMode::default()));
    }

    #[test]
    fn health_defaults_to_all_zeros() {
        let health = DurabilityHealth::default();
        assert_eq!(health.wal_appends, 0);
        assert_eq!(health.mode_transitions, 0);
        assert_eq!(health.log_since_checkpoint, 0);
    }
}
