//! The service's request vocabulary: operations, responses and errors.
//!
//! A [`DisclosureService`](crate::DisclosureService) consumes one mixed
//! stream of [`Operation`]s — admissions (`Submit` / `Check`), policy
//! mutations (`GrantView` / `RevokeView`), view-universe mutations
//! (`AddSecurityView`) and audits (`AuditApp`) — and answers each with a
//! [`Response`].  Operations identify security views by *name* (the
//! permission string a front door would receive) and principals by the
//! [`PrincipalId`] issued at registration.

use std::fmt;

use fdc_core::{LabelError, SecurityViewId};
use fdc_cq::intern::QueryId;
use fdc_cq::ConjunctiveQuery;
use fdc_policy::{AuditReport, Decision, PrincipalId};

/// One request to the disclosure-control service.
#[derive(Debug, Clone)]
pub enum Operation {
    /// Admit (and commit) one query on behalf of a principal.
    Submit {
        /// The querying principal.
        principal: PrincipalId,
        /// The conjunctive query to admit.
        query: ConjunctiveQuery,
    },
    /// Pure check: would this query be admitted right now?  Never commits.
    Check {
        /// The querying principal.
        principal: PrincipalId,
        /// The conjunctive query to probe.
        query: ConjunctiveQuery,
    },
    /// [`Submit`](Operation::Submit) by pre-interned query id — the
    /// zero-parse, zero-hash admission path for callers that interned their
    /// query pool once through the service's
    /// [`interner`](crate::DisclosureService::interner) (e.g.
    /// `fdc_ecosystem::ChurnGenerator::attach_interner`).  An op is 8 bytes
    /// of query instead of a boxed CQ clone.
    SubmitInterned {
        /// The querying principal.
        principal: PrincipalId,
        /// Interned id of the query, issued by the service's interner.
        query: QueryId,
    },
    /// [`Check`](Operation::Check) by pre-interned query id; never commits.
    CheckInterned {
        /// The querying principal.
        principal: PrincipalId,
        /// Interned id of the query, issued by the service's interner.
        query: QueryId,
    },
    /// Grant one more permission (security view) to a principal: every
    /// partition of its policy gains the view.
    GrantView {
        /// The principal gaining the permission.
        principal: PrincipalId,
        /// Name of a registered security view.
        view: String,
    },
    /// Revoke a permission from a principal: every partition of its policy
    /// loses the view.  Future queries needing it are refused; already
    /// answered disclosure is not re-judged.
    RevokeView {
        /// The principal losing the permission.
        principal: PrincipalId,
        /// Name of a registered security view.
        view: String,
    },
    /// Register a new single-atom security view online (an administrator
    /// evolving `Fgen`).  Only the view's base relation is invalidated;
    /// cached labels for other relations keep serving.
    AddSecurityView {
        /// Unique name of the new view.
        name: String,
        /// The single-atom view definition.
        query: ConjunctiveQuery,
    },
    /// Audit a principal: compare its requested permissions (the union of
    /// its policy's permitted views) against its observed query workload.
    AuditApp {
        /// The principal to audit.
        principal: PrincipalId,
    },
}

impl Operation {
    /// True for the admission operations (`Submit` / `Check` and their
    /// interned forms) that the request loop batches onto the sharded
    /// parallel path.
    pub fn is_admission(&self) -> bool {
        matches!(
            self,
            Operation::Submit { .. }
                | Operation::Check { .. }
                | Operation::SubmitInterned { .. }
                | Operation::CheckInterned { .. }
        )
    }

    /// True for the operations that mutate policies or the view universe.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Operation::GrantView { .. }
                | Operation::RevokeView { .. }
                | Operation::AddSecurityView { .. }
        )
    }
}

/// The service's answer to one [`Operation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The decision for a `Submit` or `Check`.
    Decision(Decision),
    /// A `GrantView` / `RevokeView` was applied.
    PolicyUpdated,
    /// An `AddSecurityView` registered this view.
    ViewAdded(SecurityViewId),
    /// The report of an `AuditApp`.
    Audit(AuditReport),
    /// The operation was rejected; no state changed.
    Rejected(ServiceError),
}

impl Response {
    /// The decision, if this response carries one.
    pub fn decision(&self) -> Option<Decision> {
        match self {
            Response::Decision(decision) => Some(*decision),
            _ => None,
        }
    }

    /// True if the operation was rejected.
    pub fn is_rejected(&self) -> bool {
        matches!(self, Response::Rejected(_))
    }
}

/// Why the service rejected an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The principal id was never issued by this service.
    UnknownPrincipal(PrincipalId),
    /// The query id was never issued by this service's interner (an
    /// interned admission referenced a foreign or future id).
    UnknownQuery(QueryId),
    /// No security view with this name is registered.
    UnknownView(String),
    /// The view registry rejected a new view (duplicate name, multi-atom
    /// definition, invalid query, or the relation's 32-view packed-mask
    /// budget — see `fdc_core::MAX_PACKED_VIEWS_PER_RELATION`).
    InvalidView(LabelError),
    /// Auditing is disabled (the service was configured with a zero
    /// observed-workload history).
    AuditingDisabled,
    /// The durable service is serving in degraded (read-only) mode: its
    /// write-ahead log failed permanently, so state-changing operations
    /// are refused until a checkpoint lands on recovered storage and
    /// promotes the service back to healthy.  Admissions keep serving
    /// from memory.
    DurabilityUnavailable,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownPrincipal(principal) => {
                write!(f, "unknown principal id {}", principal.0)
            }
            ServiceError::UnknownQuery(query) => {
                write!(f, "unknown interned query id {}", query.0)
            }
            ServiceError::UnknownView(name) => {
                write!(f, "no security view named `{name}` is registered")
            }
            ServiceError::InvalidView(err) => write!(f, "invalid security view: {err}"),
            ServiceError::AuditingDisabled => {
                write!(f, "auditing is disabled (history_cap is 0)")
            }
            ServiceError::DurabilityUnavailable => {
                write!(
                    f,
                    "the write-ahead log is unavailable; the service is serving read-only"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<LabelError> for ServiceError {
    fn from(err: LabelError) -> Self {
        ServiceError::InvalidView(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::parser::parse_query;
    use fdc_cq::Catalog;

    #[test]
    fn operation_classification() {
        let catalog = Catalog::paper_example();
        let q = parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap();
        let p = PrincipalId(0);
        assert!(Operation::Submit {
            principal: p,
            query: q.clone()
        }
        .is_admission());
        assert!(Operation::Check {
            principal: p,
            query: q.clone()
        }
        .is_admission());
        assert!(Operation::SubmitInterned {
            principal: p,
            query: QueryId(0)
        }
        .is_admission());
        assert!(Operation::CheckInterned {
            principal: p,
            query: QueryId(3)
        }
        .is_admission());
        assert!(!Operation::SubmitInterned {
            principal: p,
            query: QueryId(0)
        }
        .is_mutation());
        let grant = Operation::GrantView {
            principal: p,
            view: "V1".into(),
        };
        assert!(!grant.is_admission());
        assert!(grant.is_mutation());
        assert!(Operation::AddSecurityView {
            name: "V9".into(),
            query: q
        }
        .is_mutation());
        assert!(!Operation::AuditApp { principal: p }.is_mutation());
    }

    #[test]
    fn errors_display_their_context() {
        assert!(ServiceError::UnknownPrincipal(PrincipalId(7))
            .to_string()
            .contains('7'));
        assert!(ServiceError::UnknownQuery(QueryId(41))
            .to_string()
            .contains("41"));
        assert!(ServiceError::UnknownView("user_likes".into())
            .to_string()
            .contains("user_likes"));
        let err: ServiceError = LabelError::DuplicateView("V1".into()).into();
        assert!(err.to_string().contains("V1"));
        assert!(ServiceError::AuditingDisabled
            .to_string()
            .contains("history_cap"));
        assert!(ServiceError::DurabilityUnavailable
            .to_string()
            .contains("read-only"));
    }

    #[test]
    fn responses_expose_decisions() {
        assert_eq!(
            Response::Decision(Decision::Allow).decision(),
            Some(Decision::Allow)
        );
        assert_eq!(Response::PolicyUpdated.decision(), None);
        assert!(Response::Rejected(ServiceError::AuditingDisabled).is_rejected());
        assert!(!Response::PolicyUpdated.is_rejected());
    }
}
