//! The service's slice of the durable state plane: WAL record payloads
//! and the checkpoint image.
//!
//! The layering is deliberate: `fdc-durability` moves opaque byte
//! strings (framing, checksums, segments, atomic snapshot files) and
//! knows nothing about disclosure control; *this* module defines what
//! those bytes mean for a [`DisclosureService`](crate::DisclosureService)
//! — which operations are logged, how each is encoded, and what a
//! checkpoint image contains.
//!
//! # What gets logged
//!
//! Exactly the state-changing operations, as [`WalOp`]s:
//!
//! * principal registration ([`WalOp::RegisterPrincipal`]),
//! * committed admissions ([`WalOp::Submit`] — submits move the
//!   per-principal consistency word and counters, so they are part of
//!   the durable state; checks and audits are read-only and are *not*
//!   logged),
//! * policy mutations ([`WalOp::GrantView`] / [`WalOp::RevokeView`] /
//!   [`WalOp::ReplacePolicy`]),
//! * view-universe mutations ([`WalOp::AddSecurityView`]).
//!
//! Interned submissions (`SubmitInterned`) are logged as their resolved
//! canonical query: replay goes through the plain-query path and
//! re-interns the same canonical form, so the recovered interner issues
//! identical [`QueryId`](fdc_cq::intern::QueryId)s.
//!
//! Replay applies the decoded operations through the same internal entry
//! points the live service uses, so a rejected operation (unknown
//! principal, duplicate view name) rejects identically on replay and
//! changes nothing — logging before validation is safe.

use std::path::PathBuf;
use std::sync::Arc;

use fdc_cq::{wire, Catalog, ConjunctiveQuery};
use fdc_durability::codec::{put_str, put_u32, put_u8, CodecError, Cursor};
use fdc_durability::{Clock, Vfs, WalStats, WalWriter};
use fdc_policy::{PrincipalId, SecurityPolicy};

use crate::health::{DegradedMode, ServiceMode};

/// WAL record tag: principal registration.
const TAG_REGISTER: u8 = 1;
/// WAL record tag: a committed admission.
const TAG_SUBMIT: u8 = 2;
/// WAL record tag: a view grant.
const TAG_GRANT: u8 = 3;
/// WAL record tag: a view revocation.
const TAG_REVOKE: u8 = 4;
/// WAL record tag: an online view registration.
const TAG_ADD_VIEW: u8 = 5;
/// WAL record tag: a wholesale policy replacement.
const TAG_REPLACE_POLICY: u8 = 6;

/// One state-changing operation, as recorded in (and decoded from) the
/// write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A principal was registered with this policy.
    RegisterPrincipal {
        /// The registered policy.
        policy: SecurityPolicy,
    },
    /// A query was submitted (committed) on behalf of a principal.
    /// Interned submissions are recorded as their resolved canonical
    /// query.
    Submit {
        /// The submitting principal.
        principal: PrincipalId,
        /// The submitted query.
        query: ConjunctiveQuery,
    },
    /// A security view was granted to a principal.
    GrantView {
        /// The principal gaining the permission.
        principal: PrincipalId,
        /// Name of the granted view.
        view: String,
    },
    /// A security view was revoked from a principal.
    RevokeView {
        /// The principal losing the permission.
        principal: PrincipalId,
        /// Name of the revoked view.
        view: String,
    },
    /// A new security view was registered online.
    AddSecurityView {
        /// Unique name of the new view.
        name: String,
        /// The single-atom view definition.
        query: ConjunctiveQuery,
    },
    /// A principal's policy was replaced wholesale.
    ReplacePolicy {
        /// The principal whose policy changed.
        principal: PrincipalId,
        /// The replacement policy.
        policy: SecurityPolicy,
    },
}

/// Encodes a [`WalOp::RegisterPrincipal`] payload.
pub fn encode_register(policy: &SecurityPolicy, out: &mut Vec<u8>) {
    put_u8(out, TAG_REGISTER);
    fdc_policy::wire::encode_policy(policy, out);
}

/// Encodes a [`WalOp::Submit`] payload.
pub fn encode_submit(principal: PrincipalId, query: &ConjunctiveQuery, out: &mut Vec<u8>) {
    put_u8(out, TAG_SUBMIT);
    put_u32(out, principal.0);
    wire::encode_query(query, out);
}

/// Encodes a [`WalOp::GrantView`] payload.
pub fn encode_grant(principal: PrincipalId, view: &str, out: &mut Vec<u8>) {
    put_u8(out, TAG_GRANT);
    put_u32(out, principal.0);
    put_str(out, view);
}

/// Encodes a [`WalOp::RevokeView`] payload.
pub fn encode_revoke(principal: PrincipalId, view: &str, out: &mut Vec<u8>) {
    put_u8(out, TAG_REVOKE);
    put_u32(out, principal.0);
    put_str(out, view);
}

/// Encodes a [`WalOp::AddSecurityView`] payload.
pub fn encode_add_view(name: &str, query: &ConjunctiveQuery, out: &mut Vec<u8>) {
    put_u8(out, TAG_ADD_VIEW);
    put_str(out, name);
    wire::encode_query(query, out);
}

/// Encodes a [`WalOp::ReplacePolicy`] payload.
pub fn encode_replace_policy(principal: PrincipalId, policy: &SecurityPolicy, out: &mut Vec<u8>) {
    put_u8(out, TAG_REPLACE_POLICY);
    put_u32(out, principal.0);
    fdc_policy::wire::encode_policy(policy, out);
}

impl WalOp {
    /// Encodes this operation as one WAL record payload — the inverse of
    /// [`decode_wal_op`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WalOp::RegisterPrincipal { policy } => encode_register(policy, out),
            WalOp::Submit { principal, query } => encode_submit(*principal, query, out),
            WalOp::GrantView { principal, view } => encode_grant(*principal, view, out),
            WalOp::RevokeView { principal, view } => encode_revoke(*principal, view, out),
            WalOp::AddSecurityView { name, query } => encode_add_view(name, query, out),
            WalOp::ReplacePolicy { principal, policy } => {
                encode_replace_policy(*principal, policy, out)
            }
        }
    }
}

/// Decodes one WAL record payload.  `catalog` resolves the relation ids
/// inside query payloads — the catalog is fixed for the life of a
/// service (only the *view* universe evolves), so the live catalog is
/// the right authority for every record.
pub fn decode_wal_op(catalog: &Catalog, payload: &[u8]) -> Result<WalOp, CodecError> {
    let mut cursor = Cursor::new(payload);
    let at = cursor.pos();
    let tag = cursor.u8()?;
    let op = match tag {
        TAG_REGISTER => WalOp::RegisterPrincipal {
            policy: fdc_policy::wire::decode_policy(&mut cursor)?,
        },
        TAG_SUBMIT => {
            let principal = PrincipalId(cursor.u32()?);
            let query = wire::decode_query(&mut cursor)?;
            validate_query(catalog, &query, cursor.pos())?;
            WalOp::Submit { principal, query }
        }
        TAG_GRANT => WalOp::GrantView {
            principal: PrincipalId(cursor.u32()?),
            view: cursor.str()?.to_owned(),
        },
        TAG_REVOKE => WalOp::RevokeView {
            principal: PrincipalId(cursor.u32()?),
            view: cursor.str()?.to_owned(),
        },
        TAG_ADD_VIEW => {
            let name = cursor.str()?.to_owned();
            let query = wire::decode_query(&mut cursor)?;
            validate_query(catalog, &query, cursor.pos())?;
            WalOp::AddSecurityView { name, query }
        }
        TAG_REPLACE_POLICY => WalOp::ReplacePolicy {
            principal: PrincipalId(cursor.u32()?),
            policy: fdc_policy::wire::decode_policy(&mut cursor)?,
        },
        other => {
            return Err(CodecError::invalid(
                at,
                format!("unknown WAL operation tag {other}"),
            ))
        }
    };
    cursor.expect_end()?;
    Ok(op)
}

/// Rejects decoded queries whose atoms reference relations outside the
/// catalog: the query codec is catalog-agnostic, but a replayed query
/// with a foreign relation id would panic deep inside the labeler.
pub(crate) fn validate_query(
    catalog: &Catalog,
    query: &ConjunctiveQuery,
    offset: usize,
) -> Result<(), CodecError> {
    for atom in query.atoms() {
        if atom.relation.index() >= catalog.len() {
            return Err(CodecError::invalid(
                offset,
                format!(
                    "query references relation id {} outside the {}-relation catalog",
                    atom.relation.0,
                    catalog.len()
                ),
            ));
        }
    }
    Ok(())
}

/// What [`open_durable`](crate::DisclosureService::open_durable) did to
/// bring the service back: which checkpoint seeded the state, how much
/// WAL tail was replayed on top of it, and what the recovery scan left
/// behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint the state was loaded from
    /// (`0` when no checkpoint existed and the state was rebuilt from
    /// the initial registry plus a full replay).
    pub checkpoint_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// The last sequence number in the recovered log (`checkpoint_seq`
    /// when the tail was empty).  The next logged operation carries
    /// `last_seq + 1`.
    pub last_seq: u64,
    /// Bytes past the log's valid prefix that recovery discarded: the
    /// torn tail of the active segment (the crash landed mid-record)
    /// plus any unreachable later segments.  `0` when the log was
    /// cleanly closed.
    pub discarded_bytes: u64,
    /// Residual record frames inside those discarded bytes — a lower
    /// bound on the operations whose records never fully reached disk
    /// (by the write-ahead contract, operations that were never
    /// acknowledged).
    pub discarded_records: u64,
    /// Orphaned checkpoint temporaries (`ckpt-*.tmp`, stranded by a
    /// crash between temp write and rename) swept on open.
    pub temps_swept: u64,
}

/// The service's handle on its durable home: the appending side of the
/// WAL (absent while serving degraded), the directory checkpoints land
/// in, the storage/clock the plane runs on, and the health bookkeeping
/// behind [`DurabilityHealth`](crate::DurabilityHealth).
#[derive(Debug)]
pub(crate) struct DurableState {
    /// The live WAL writer, or `None` while degraded (the dead writer's
    /// counters are folded into `wal_base` when it is dropped).
    pub(crate) writer: Option<WalWriter>,
    pub(crate) dir: PathBuf,
    /// The filesystem the durable plane runs on — [`fdc_durability::StdVfs`]
    /// in production, a fault injector in the robustness suites.
    pub(crate) vfs: Arc<dyn Vfs>,
    /// Paces commit-retry backoff; injectable so fault tests run instantly.
    pub(crate) clock: Arc<dyn Clock>,
    /// WAL counters carried over from writers dropped on degradation.
    pub(crate) wal_base: WalStats,
    pub(crate) mode: ServiceMode,
    pub(crate) mode_transitions: u64,
    pub(crate) checkpoints: u64,
    pub(crate) checkpoint_failures: u64,
    pub(crate) last_checkpoint_seq: u64,
    /// Sequence number of the last *durably committed* record.  Lags
    /// `writer.next_seq() - 1` only transiently inside a failing batch;
    /// while degraded it is the frozen durable horizon checkpoints are
    /// taken at.
    pub(crate) last_seq: u64,
    /// What recovery found when this service was opened.
    pub(crate) report: RecoveryReport,
}

impl DurableState {
    /// Lifetime WAL counters: the folded base plus the live writer's.
    pub(crate) fn wal_stats(&self) -> WalStats {
        let mut total = self.wal_base;
        if let Some(writer) = &self.writer {
            total.absorb(writer.stats());
        }
        total
    }

    /// Drops the (dead) writer, folds its counters into the base, and
    /// enters degraded read-only serving.  Idempotent.
    pub(crate) fn degrade(&mut self) {
        if let Some(writer) = self.writer.take() {
            self.wal_base.absorb(writer.stats());
        }
        if self.mode == ServiceMode::Healthy {
            self.mode = ServiceMode::Degraded(DegradedMode::ReadOnly);
            self.mode_transitions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::SecurityViews;
    use fdc_cq::parser::parse_query;
    use fdc_policy::PolicyPartition;

    fn ops(catalog: &Catalog) -> Vec<WalOp> {
        let registry = SecurityViews::paper_example();
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        let policy = SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", &registry, [v1]),
            PolicyPartition::from_views("contacts", &registry, [v3]),
        ]);
        vec![
            WalOp::RegisterPrincipal {
                policy: policy.clone(),
            },
            WalOp::Submit {
                principal: PrincipalId(0),
                query: parse_query(catalog, "Q(x, y) :- Meetings(x, y)").unwrap(),
            },
            WalOp::GrantView {
                principal: PrincipalId(0),
                view: "V2".into(),
            },
            WalOp::RevokeView {
                principal: PrincipalId(3),
                view: "V1".into(),
            },
            WalOp::AddSecurityView {
                name: "V9".into(),
                query: parse_query(catalog, "V9(x) :- Meetings(x, y)").unwrap(),
            },
            WalOp::ReplacePolicy {
                principal: PrincipalId(1),
                policy,
            },
        ]
    }

    #[test]
    fn every_wal_op_round_trips() {
        let catalog = Catalog::paper_example();
        for op in ops(&catalog) {
            let mut payload = Vec::new();
            op.encode_into(&mut payload);
            let back = decode_wal_op(&catalog, &payload).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn truncated_and_corrupt_payloads_are_errors() {
        let catalog = Catalog::paper_example();
        for op in ops(&catalog) {
            let mut payload = Vec::new();
            op.encode_into(&mut payload);
            for cut in 0..payload.len() {
                assert!(
                    decode_wal_op(&catalog, &payload[..cut]).is_err(),
                    "{op:?} truncated to {cut} bytes must not decode"
                );
            }
            // Trailing garbage past a well-formed op is rejected too.
            let mut padded = payload.clone();
            padded.push(0xAB);
            assert!(decode_wal_op(&catalog, &padded).is_err());
        }
        assert!(decode_wal_op(&catalog, &[99]).is_err(), "unknown tag");
    }

    #[test]
    fn foreign_relation_ids_are_rejected() {
        let catalog = Catalog::paper_example();
        let query = parse_query(&catalog, "Q(x, y) :- Meetings(x, y)").unwrap();
        let mut payload = Vec::new();
        encode_submit(PrincipalId(0), &query, &mut payload);
        // The relation id of the single atom sits somewhere in the query
        // encoding; rather than hunt for it, re-encode against a larger
        // catalog and decode against the paper one.
        let mut big = Catalog::new();
        for i in 0..10 {
            big.add_relation(&format!("R{i}"), &["a", "b"]).unwrap();
        }
        let foreign = parse_query(&big, "Q(x, y) :- R7(x, y)").unwrap();
        let mut bad = Vec::new();
        encode_submit(PrincipalId(0), &foreign, &mut bad);
        assert!(decode_wal_op(&catalog, &bad).is_err());
        // The original payload still decodes.
        assert!(decode_wal_op(&catalog, &payload).is_ok());
    }
}
