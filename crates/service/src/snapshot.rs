//! Epoch snapshots: the immutable read plane of a [`DisclosureService`].
//!
//! A [`ServiceSnapshot`] freezes everything a **read** (an admission's
//! labeling, an audit's workload relabeling) depends on, at one point of the
//! operation stream:
//!
//! * the security-view registry at its current per-relation **epoch
//!   vector**, together with the compiled per-relation candidate lists
//!   (via [`LabelerSnapshot`]);
//! * a read-only handle onto the live labeler's striped query/atom caches,
//!   so warm shapes keep hitting across the handover (the snapshot's own
//!   cache work accumulates in private per-worker overlay *lanes* —
//!   contention-free writes — and every lane is published back when the
//!   snapshot retires);
//! * one copy-on-write [`PolicyArena`] handle per policy shard — the
//!   compiled-policy universe the segment's decisions are made against.
//!
//! What a snapshot deliberately does **not** freeze is per-principal
//! enforcement state (consistency words, counters, histories): decisions
//! are order-sensitive, so [`run_pipelined`] keeps applying them to the
//! live store at their stream position.  The split works because labels
//! depend only on the view universe — never on policies — so the expensive
//! half of every admission can run against a frozen epoch while the cheap,
//! order-sensitive half stays sequential.
//!
//! [`DisclosureService`]: crate::DisclosureService
//! [`run_pipelined`]: crate::DisclosureService::run_pipelined

use std::sync::Arc;

use fdc_core::{LabelerSnapshot, PackedLabel, SecurityViews, WorkerContext};
use fdc_cq::intern::QueryId;
use fdc_cq::{ConjunctiveQuery, RelId};
use fdc_policy::PolicyArena;

/// An immutable view of a [`DisclosureService`](crate::DisclosureService)'s
/// read plane at a frozen epoch vector.
///
/// Snapshots follow a **build → serve → retire** lifecycle:
///
/// 1. **Build** ([`DisclosureService::snapshot`](crate::DisclosureService::snapshot)):
///    the view universe is copied at its current epochs, the live caches are
///    handed over read-only, and the policy arenas are pinned copy-on-write.
/// 2. **Serve**: any number of threads label queries through the snapshot
///    (`&self` throughout) while the live service keeps mutating — grants,
///    revokes and even new security views never disturb a serving snapshot.
/// 3. **Retire** (`CachedLabeler::retire_snapshot`, done by the pipelined
///    executor): the labels the snapshot computed or refreshed are published
///    back into the live striped tables, so the warm state survives the
///    epoch.
///
/// Every label a snapshot produces equals what the live labeler produced at
/// the moment the snapshot was built; the pipelined equivalence property
/// test asserts this end to end.
#[derive(Debug)]
pub struct ServiceSnapshot {
    labeler: LabelerSnapshot,
    arenas: Vec<Arc<PolicyArena>>,
}

impl ServiceSnapshot {
    pub(crate) fn new(labeler: LabelerSnapshot, arenas: Vec<Arc<PolicyArena>>) -> Self {
        ServiceSnapshot { labeler, arenas }
    }

    /// The frozen labeling stage: the registry at the snapshot's epoch
    /// vector plus the shared-cache handle.
    pub fn labeler(&self) -> &LabelerSnapshot {
        &self.labeler
    }

    /// The frozen security-view registry (the epoch vector answers which
    /// view universe this snapshot serves).
    pub fn security_views(&self) -> &SecurityViews {
        self.labeler.security_views()
    }

    /// The frozen epoch of one relation's view universe.
    pub fn epoch(&self, relation: RelId) -> u64 {
        self.security_views().epoch(relation)
    }

    /// The pinned compiled-policy arena of policy shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_policy_shards()`.
    pub fn arena(&self, shard: usize) -> &Arc<PolicyArena> {
        &self.arenas[shard]
    }

    /// Number of pinned policy-arena handles (one per policy shard).
    pub fn num_policy_shards(&self) -> usize {
        self.arenas.len()
    }

    /// True if `id` was issued by the service's interner — interned
    /// admissions validate against the shared interner, which only grows,
    /// so validity at the snapshot is validity at the stream position.
    pub fn contains(&self, id: QueryId) -> bool {
        self.labeler.contains(id)
    }

    /// Labels a query at the frozen epoch vector, packed.  Cache work
    /// lands in the coordinator's overlay lane 0.
    pub fn label_packed(&self, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.labeler.label_packed(query)
    }

    /// Labels a pre-interned query at the frozen epoch vector, packed.
    /// Cache work lands in the coordinator's overlay lane 0.
    pub fn label_packed_interned(&self, id: QueryId) -> Vec<PackedLabel> {
        self.labeler.label_packed_interned(id)
    }

    /// The private overlay lane a pool worker should write through — lane
    /// 0 (the coordinator's) for inline execution, a per-worker lane on
    /// multi-lane snapshots (see
    /// [`LabelerSnapshot::lane_for`]).
    pub fn lane_for(&self, ctx: &WorkerContext<'_>) -> usize {
        self.labeler.lane_for(ctx)
    }

    /// [`label_packed`](Self::label_packed) writing cache work into
    /// overlay lane `lane` instead of the coordinator's lane 0.
    pub fn label_packed_in(&self, lane: usize, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.labeler.label_packed_in(lane, query)
    }

    /// [`label_packed_interned`](Self::label_packed_interned) writing
    /// cache work into overlay lane `lane` instead of the coordinator's
    /// lane 0.
    pub fn label_packed_interned_in(&self, lane: usize, id: QueryId) -> Vec<PackedLabel> {
        self.labeler.label_packed_interned_in(lane, id)
    }
}
