//! The dynamic disclosure-control service.
//!
//! The paper's app-ecosystem setting is inherently dynamic: users grant and
//! revoke permissions and administrators evolve the generating set `Fgen`
//! while queries keep arriving.  The earlier layers of this repository
//! solved the two static problems — high-throughput labeling (Figure 5,
//! `fdc-core`) and high-throughput enforcement (Figure 6, `fdc-policy`) —
//! but froze the world at construction time.  This crate adds the missing
//! piece: a long-running [`DisclosureService`] that absorbs policy and
//! view-universe churn **without recomputing the world**.
//!
//! The mechanism is per-relation **epoch versioning** threaded down the
//! stack:
//!
//! * the `SecurityViews` registry versions each relation's view universe;
//! * the `CachedLabeler`'s canonical-form caches tag every entry with the
//!   epochs it was computed under and lazily re-derive just the stale atoms
//!   (folding and dissection never re-run for a cached shape);
//! * the policy stores re-intern a principal's compiled policy on
//!   grant/revoke while preserving its consistency word and counters.
//!
//! The service multiplexes all of it behind one [`Operation`] stream and a
//! request loop served by a persistent thread-per-core worker pool
//! ([`run_batch`](DisclosureService::run_batch)).  The Figure 7 benchmark
//! (`fig7_json`) measures the payoff: at realistic mutation:query ratios,
//! incremental relabeling sustains a large multiple of the throughput of
//! the flush-on-mutation baseline ([`InvalidationMode::FlushOnMutation`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod health;
pub mod maintenance;
pub mod ops;
pub mod service;
pub mod snapshot;

pub use durable::{RecoveryReport, WalOp};
pub use fdc_durability::DurabilityConfig;
pub use health::{DegradedMode, DurabilityHealth, ServiceMode};
pub use maintenance::BackgroundCheckpointer;
pub use ops::{Operation, Response, ServiceError};
pub use service::{
    DisclosureService, InvalidationMode, ParallelStats, PendingCheckpoint, ServiceConfig,
    ServiceStats,
};
pub use snapshot::ServiceSnapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::{BitVectorLabeler, QueryLabeler, SecurityViews};
    use fdc_cq::parser::parse_query;
    use fdc_cq::ConjunctiveQuery;
    use fdc_policy::{Decision, PolicyPartition, PrincipalId, SecurityPolicy};

    fn wall(registry: &SecurityViews) -> SecurityPolicy {
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        SecurityPolicy::chinese_wall([
            PolicyPartition::from_views("meetings", registry, [v1]),
            PolicyPartition::from_views("contacts", registry, [v3]),
        ])
    }

    fn service(principals: usize) -> DisclosureService {
        let registry = SecurityViews::paper_example();
        let mut service = DisclosureService::with_defaults(registry.clone());
        for _ in 0..principals {
            service.register_principal(wall(&registry));
        }
        service
    }

    fn q(service: &DisclosureService, text: &str) -> ConjunctiveQuery {
        parse_query(service.registry().catalog(), text).unwrap()
    }

    #[test]
    fn the_service_walks_the_chinese_wall() {
        let mut service = service(1);
        let p = PrincipalId(0);
        let meetings = q(&service, "Q(x, y) :- Meetings(x, y)");
        let contacts = q(&service, "Q(x, y, z) :- Contacts(x, y, z)");
        assert_eq!(service.check(p, &meetings), Ok(Decision::Allow));
        assert_eq!(service.submit(p, &meetings), Ok(Decision::Allow));
        assert_eq!(service.check(p, &contacts), Ok(Decision::Deny));
        assert_eq!(service.submit(p, &contacts), Ok(Decision::Deny));
        assert_eq!(service.totals(), (1, 1));
        assert_eq!(service.stats().admissions, 4);
    }

    #[test]
    fn grants_and_revokes_take_effect_at_their_stream_position() {
        let mut service = service(1);
        let p = PrincipalId(0);
        let times = q(&service, "Q(x) :- Meetings(x, y)");
        let full = q(&service, "Q(x, y) :- Meetings(x, y)");

        // V1 permits both shapes; revoke it, grant only V2 (times).
        let ops = vec![
            Operation::Submit {
                principal: p,
                query: full.clone(),
            },
            Operation::RevokeView {
                principal: p,
                view: "V1".into(),
            },
            Operation::Submit {
                principal: p,
                query: full.clone(),
            },
            Operation::GrantView {
                principal: p,
                view: "V2".into(),
            },
            Operation::Submit {
                principal: p,
                query: times.clone(),
            },
            Operation::Submit {
                principal: p,
                query: full.clone(),
            },
        ];
        let responses = service.run_batch(&ops);
        let decisions: Vec<Option<Decision>> = responses.iter().map(Response::decision).collect();
        assert_eq!(
            decisions,
            vec![
                Some(Decision::Allow), // full rows via V1
                None,                  // revoke V1
                Some(Decision::Deny),  // full rows now refused
                None,                  // grant V2
                Some(Decision::Allow), // times via V2
                Some(Decision::Deny),  // full rows still refused
            ]
        );
        assert_eq!(responses[1], Response::PolicyUpdated);
        assert_eq!(service.stats().mutations, 2);
        // Incremental mode never flushes on policy mutations.
        assert_eq!(service.stats().flushes, 0);
    }

    #[test]
    fn add_security_view_changes_labels_online() {
        let registry = SecurityViews::paper_example();
        let mut service = DisclosureService::with_defaults(registry.clone());
        // A principal whose only permission is the (not yet existing) V4.
        let p = service.register_principal(SecurityPolicy::new());
        let contacts_pair = q(&service, "Q(x, y) :- Contacts(x, y, z)");
        // Warm the cache: denied (empty policy) — and label it once.
        assert_eq!(service.submit(p, &contacts_pair), Ok(Decision::Deny));

        let v4 = parse_query(registry.catalog(), "V4(x, y) :- Contacts(x, y, z)").unwrap();
        let response = service.apply(&Operation::AddSecurityView {
            name: "V4".into(),
            query: v4,
        });
        let Response::ViewAdded(id) = response else {
            panic!("expected ViewAdded, got {response:?}");
        };
        // The incrementally relabeled query now includes V4's bit — exactly
        // as a labeler built fresh from the final registry computes it.
        let fresh = BitVectorLabeler::new(service.registry().clone());
        let incremental = {
            use fdc_core::QueryLabeler as _;
            service.labeler().label_query(&contacts_pair)
        };
        assert_eq!(incremental, fresh.label_query(&contacts_pair));
        assert!(incremental.atoms()[0]
            .views(service.registry())
            .contains(&id));
        assert!(service.labeler().stats().invalidations >= 1);
    }

    #[test]
    fn over_budget_view_additions_are_rejected_without_side_effects() {
        // Regression for the satellite bugfix: the 33rd view of one relation
        // would overflow the 32-bit packed mask, so the service must reject
        // it and leave caches, epochs and decisions untouched.
        let mut service = service(1);
        let p = PrincipalId(0);
        let meetings_rel = service.registry().catalog().resolve("Meetings").unwrap();
        let query_text = "Q(x) :- Meetings(x, y)";
        let probe = q(&service, query_text);
        service.submit(p, &probe).unwrap();

        // Fill the Meetings relation up to the 32-view budget (2 exist).
        for i in 0..30 {
            let view = q(&service, "V(x, y) :- Meetings(x, y)");
            let response = service.apply(&Operation::AddSecurityView {
                name: format!("fill{i}"),
                query: view,
            });
            assert!(!response.is_rejected(), "view {i} must fit: {response:?}");
        }
        let epoch_before = service.registry().epoch(meetings_rel);
        let stats_before = service.labeler().stats();
        let overflow = q(&service, "V(x, y) :- Meetings(x, y)");
        let response = service.apply(&Operation::AddSecurityView {
            name: "overflow".into(),
            query: overflow,
        });
        assert!(
            matches!(
                response,
                Response::Rejected(ServiceError::InvalidView(
                    fdc_core::LabelError::TooManyViewsForRelation { .. }
                ))
            ),
            "got {response:?}"
        );
        // No epoch bump, no invalidation, no registry growth.
        assert_eq!(service.registry().epoch(meetings_rel), epoch_before);
        assert_eq!(
            service.labeler().stats().invalidations,
            stats_before.invalidations
        );
        assert!(service.registry().by_name("overflow").is_none());
        // Every label mask still packs faithfully (bit < 32).
        let label = {
            use fdc_core::QueryLabeler as _;
            service.labeler().label_query(&probe)
        };
        assert!(label.atoms()[0].mask <= u64::from(u32::MAX));
    }

    #[test]
    fn unknown_principals_and_views_are_rejected() {
        let mut service = service(1);
        let ghost = PrincipalId(42);
        let query = q(&service, "Q(x) :- Meetings(x, y)");
        assert_eq!(
            service.submit(ghost, &query),
            Err(ServiceError::UnknownPrincipal(ghost))
        );
        assert_eq!(
            service.grant_view(PrincipalId(0), "nonsense"),
            Err(ServiceError::UnknownView("nonsense".into()))
        );
        // Batch path answers the rejection in position without panicking.
        let responses = service.run_batch(&[
            Operation::Submit {
                principal: ghost,
                query: query.clone(),
            },
            Operation::Submit {
                principal: PrincipalId(0),
                query,
            },
        ]);
        assert!(responses[0].is_rejected());
        assert_eq!(responses[1].decision(), Some(Decision::Allow));
    }

    #[test]
    fn audits_compare_requested_permissions_against_observed_workload() {
        let registry = SecurityViews::paper_example();
        let mut service = DisclosureService::with_defaults(registry.clone());
        let v1 = registry.id_by_name("V1").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        // One partition requesting both sides.
        let p = service.register_principal(SecurityPolicy::stateless(PolicyPartition::from_views(
            "all",
            &registry,
            [v1, v3],
        )));
        // The observed workload only ever touches Meetings.
        let meetings = q(&service, "Q(x, y) :- Meetings(x, y)");
        for _ in 0..3 {
            service.submit(p, &meetings).unwrap();
        }
        let report = service.audit_app(p).unwrap();
        assert!(report.is_overprivileged());
        assert!(report.unused.contains(&v3));
        assert!(report.used.contains(&v1));
        assert!(report.uncovered_queries.is_empty());
        assert_eq!(service.stats().audits, 1);

        // The AuditApp operation returns the same report.
        let response = service.apply(&Operation::AuditApp { principal: p });
        assert_eq!(response, Response::Audit(report));
    }

    #[test]
    fn auditing_requires_a_history() {
        let registry = SecurityViews::paper_example();
        let mut service = DisclosureService::new(
            registry.clone(),
            ServiceConfig {
                history_cap: 0,
                ..ServiceConfig::default()
            },
        );
        let p = service.register_principal(wall(&registry));
        let query = q(&service, "Q(x) :- Meetings(x, y)");
        service.submit(p, &query).unwrap();
        assert_eq!(service.audit_app(p), Err(ServiceError::AuditingDisabled));
    }

    #[test]
    fn history_is_bounded_by_the_configured_cap() {
        let registry = SecurityViews::paper_example();
        let mut service = DisclosureService::new(
            registry.clone(),
            ServiceConfig {
                history_cap: 2,
                ..ServiceConfig::default()
            },
        );
        let v3 = registry.id_by_name("V3").unwrap();
        let p = service.register_principal(SecurityPolicy::stateless(PolicyPartition::from_views(
            "contacts",
            &registry,
            [v3],
        )));
        let contacts = q(&service, "Q(x, y, z) :- Contacts(x, y, z)");
        // Five submissions, but only the last two are retained: an early
        // Meetings-shaped submission ages out of the audit window.
        let meetings = q(&service, "Q(x) :- Meetings(x, y)");
        service.submit(p, &meetings).unwrap();
        for _ in 0..4 {
            service.submit(p, &contacts).unwrap();
        }
        let report = service.audit_app(p).unwrap();
        // The aged-out Meetings query no longer shows up as uncovered.
        assert!(report.uncovered_queries.is_empty());
        assert!(report.is_tight());
    }

    #[test]
    fn batched_and_sequential_processing_agree() {
        let registry = SecurityViews::paper_example();
        let texts = [
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
        ];
        let catalog = registry.catalog().clone();
        let mut ops = Vec::new();
        for i in 0..60 {
            let principal = PrincipalId((i % 5) as u32);
            let query = parse_query(&catalog, texts[i % texts.len()]).unwrap();
            ops.push(if i % 7 == 3 {
                Operation::Check { principal, query }
            } else {
                Operation::Submit { principal, query }
            });
            if i % 13 == 6 {
                ops.push(Operation::GrantView {
                    principal,
                    view: "V2".into(),
                });
            }
            if i % 17 == 9 {
                ops.push(Operation::RevokeView {
                    principal,
                    view: "V1".into(),
                });
            }
        }
        let mut batched = service(5);
        let mut sequential = service(5);
        let batch_responses = batched.run_batch(&ops);
        let sequential_responses: Vec<Response> =
            ops.iter().map(|op| sequential.apply(op)).collect();
        assert_eq!(batch_responses, sequential_responses);
        assert_eq!(batched.totals(), sequential.totals());
        for i in 0..5 {
            let p = PrincipalId(i);
            assert_eq!(
                batched.store().consistency_bits(p),
                sequential.store().consistency_bits(p)
            );
            assert_eq!(batched.store().stats(p), sequential.store().stats(p));
        }
    }

    #[test]
    fn flush_mode_decides_identically_but_flushes() {
        let registry = SecurityViews::paper_example();
        let mut incremental = DisclosureService::new(
            registry.clone(),
            ServiceConfig {
                num_shards: 2,
                ..ServiceConfig::default()
            },
        );
        let mut flushing = DisclosureService::new(
            registry.clone(),
            ServiceConfig {
                num_shards: 2,
                invalidation: InvalidationMode::FlushOnMutation,
                ..ServiceConfig::default()
            },
        );
        for _ in 0..3 {
            incremental.register_principal(wall(&registry));
            flushing.register_principal(wall(&registry));
        }
        let catalog = registry.catalog().clone();
        let mut ops = Vec::new();
        for i in 0..40 {
            let principal = PrincipalId((i % 3) as u32);
            ops.push(Operation::Submit {
                principal,
                query: parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap(),
            });
            if i == 20 {
                ops.push(Operation::GrantView {
                    principal,
                    view: "V2".into(),
                });
            }
        }
        assert_eq!(incremental.run_batch(&ops), flushing.run_batch(&ops));
        assert_eq!(incremental.stats().flushes, 0);
        assert_eq!(flushing.stats().flushes, 1);
        // The incremental service kept its cache across the mutation.
        assert!(incremental.labeler().stats().entries > 0);
    }

    /// A mixed op stream covering every non-boundary shape plus
    /// `AddSecurityView` boundaries and invalid ops.
    fn mixed_stream(catalog: &fdc_cq::Catalog, with_audits: bool) -> Vec<Operation> {
        let texts = [
            "Q(x, y) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(x) :- Meetings(x, y)",
            "Q(x, z) :- Contacts(x, y, z)",
        ];
        let mut ops = Vec::new();
        for i in 0..80 {
            let principal = PrincipalId((i % 5) as u32);
            let query = parse_query(catalog, texts[i % texts.len()]).unwrap();
            ops.push(if i % 7 == 3 {
                Operation::Check { principal, query }
            } else {
                Operation::Submit { principal, query }
            });
            if i % 13 == 6 {
                ops.push(Operation::GrantView {
                    principal,
                    view: "V2".into(),
                });
            }
            if i % 17 == 9 {
                ops.push(Operation::RevokeView {
                    principal,
                    view: "V1".into(),
                });
            }
            if i % 29 == 11 {
                ops.push(Operation::AddSecurityView {
                    name: format!("W{i}"),
                    query: parse_query(catalog, "W(x) :- Meetings(x, y)").unwrap(),
                });
            }
            if i % 23 == 4 {
                // Invalid ops: a ghost principal and an unknown view.
                ops.push(Operation::Submit {
                    principal: PrincipalId(99),
                    query: parse_query(catalog, texts[0]).unwrap(),
                });
                ops.push(Operation::GrantView {
                    principal,
                    view: "ghost".into(),
                });
            }
            if with_audits && i % 31 == 17 {
                ops.push(Operation::AuditApp { principal });
            }
        }
        ops
    }

    #[test]
    fn pipelined_and_batched_processing_agree() {
        let registry = SecurityViews::paper_example();
        let ops = mixed_stream(registry.catalog(), true);
        let mut batched = service(5);
        let mut pipelined = service(5);
        let batch_responses = batched.run_batch(&ops);
        let pipelined_responses = pipelined.run_pipelined(&ops);
        assert_eq!(batch_responses, pipelined_responses);
        assert_eq!(batched.totals(), pipelined.totals());
        assert_eq!(batched.stats(), pipelined.stats());
        for i in 0..5 {
            let p = PrincipalId(i);
            assert_eq!(
                batched.store().consistency_bits(p),
                pipelined.store().consistency_bits(p)
            );
            assert_eq!(batched.store().stats(p), pipelined.store().stats(p));
            assert_eq!(batched.store().policy(p), pipelined.store().policy(p));
        }
        // The registry evolved identically (same views, same epochs).
        assert_eq!(batched.registry().len(), pipelined.registry().len());
        for r in 0..batched.registry().catalog().len() {
            let rel = fdc_cq::RelId(r as u32);
            assert_eq!(
                batched.registry().epoch(rel),
                pipelined.registry().epoch(rel)
            );
        }
        // And both equal strictly sequential processing.
        let mut sequential = service(5);
        let sequential_responses: Vec<Response> =
            ops.iter().map(|op| sequential.apply(op)).collect();
        assert_eq!(pipelined_responses, sequential_responses);
        assert_eq!(pipelined.totals(), sequential.totals());
    }

    #[test]
    fn pipelined_cache_stats_match_the_batch_executor() {
        // With a single worker both executors label sequentially in stream
        // order over the same (shared, snapshot-published) tables, so the
        // cumulative cache counters must agree exactly.  Audits are
        // excluded: the pipelined executor serves them from the retiring
        // snapshot, whose post-retirement cache work is discarded.
        let registry = SecurityViews::paper_example();
        let config = ServiceConfig {
            num_shards: 1,
            workers: 1,
            ..ServiceConfig::default()
        };
        let build = |registry: &SecurityViews| {
            let mut s = DisclosureService::new(registry.clone(), config);
            for _ in 0..5 {
                s.register_principal(wall(registry));
            }
            s
        };
        let ops = mixed_stream(registry.catalog(), false);
        let mut batched = build(&registry);
        let mut pipelined = build(&registry);
        assert_eq!(batched.run_batch(&ops), pipelined.run_pipelined(&ops));
        // The batch executor's staging dedups duplicate admissions within a
        // run; the pipelined executor segments the stream differently and
        // does not dedup.  Every other counter must still agree exactly
        // (dedup hits are also counted as plain hits), so only the dedup
        // column is normalized away.
        let mut batched_stats = batched.labeler().stats();
        let mut pipelined_stats = pipelined.labeler().stats();
        batched_stats.batch_dedup_hits = 0;
        pipelined_stats.batch_dedup_hits = 0;
        assert_eq!(batched_stats, pipelined_stats);
    }

    #[test]
    fn pipelined_flush_mode_decides_identically() {
        let registry = SecurityViews::paper_example();
        let ops = mixed_stream(registry.catalog(), true);
        let flush_config = ServiceConfig {
            invalidation: InvalidationMode::FlushOnMutation,
            ..ServiceConfig::default()
        };
        let build = || {
            let mut s = DisclosureService::new(registry.clone(), flush_config);
            for _ in 0..5 {
                s.register_principal(wall(&registry));
            }
            s
        };
        let mut batched = build();
        let mut pipelined = build();
        assert_eq!(batched.run_batch(&ops), pipelined.run_pipelined(&ops));
        assert_eq!(batched.totals(), pipelined.totals());
        assert_eq!(batched.stats().flushes, pipelined.stats().flushes);
        assert!(pipelined.stats().flushes > 0);
    }

    #[test]
    fn snapshots_pin_the_read_plane() {
        let mut service = service(2);
        let p = PrincipalId(0);
        let times = q(&service, "Q(x) :- Meetings(x, y)");
        let id = service.intern(&times);
        let before = service.labeler().label_packed(&times);
        let snapshot = service.snapshot();
        assert_eq!(snapshot.num_policy_shards(), service.config().num_shards);
        assert!(snapshot.contains(id));
        let meetings = service.registry().catalog().resolve("Meetings").unwrap();
        assert_eq!(snapshot.epoch(meetings), service.registry().epoch(meetings));
        let arena_len = snapshot.arena(0).len();

        // The live service mutates: a new Meetings view, a structurally new
        // policy via grant.  The snapshot's labels and arena stay frozen.
        service
            .apply(&Operation::AddSecurityView {
                name: "Vsnap".into(),
                query: q(&service, "Vsnap(x) :- Meetings(x, y)"),
            })
            .decision();
        service.grant_view(p, "Vsnap").unwrap();
        assert_eq!(snapshot.label_packed(&times), before);
        assert_eq!(snapshot.label_packed_interned(id), before);
        assert_eq!(
            snapshot.epoch(meetings) + 1,
            service.registry().epoch(meetings)
        );
        assert_eq!(snapshot.arena(0).len(), arena_len);
        assert_ne!(service.labeler().label_packed(&times), before);
    }

    #[test]
    fn audit_history_evicts_oldest_at_exactly_cap_and_cap_plus_one() {
        // Regression (satellite): the history cap must evict the *oldest*
        // entry — the newest submission always lands in the audited
        // workload, at exactly-cap and at cap + 1.
        let registry = SecurityViews::paper_example();
        let cap = 3;
        let mut service = DisclosureService::new(
            registry.clone(),
            ServiceConfig {
                history_cap: cap,
                ..ServiceConfig::default()
            },
        );
        let v3 = registry.id_by_name("V3").unwrap();
        // Policy only covers Contacts: Meetings submissions show up as
        // uncovered queries in the audit, making the window observable.
        let p = service.register_principal(SecurityPolicy::stateless(PolicyPartition::from_views(
            "contacts",
            &registry,
            [v3],
        )));
        let meetings = q(&service, "Q(x) :- Meetings(x, y)");
        let contacts = q(&service, "Q(x, y, z) :- Contacts(x, y, z)");
        // Exactly cap submissions: all retained, the Meetings one included.
        service.submit(p, &meetings).unwrap();
        service.submit(p, &contacts).unwrap();
        service.submit(p, &contacts).unwrap();
        let at_cap = service.audit_app(p).unwrap();
        assert_eq!(
            at_cap.uncovered_queries,
            vec![0],
            "the cap window holds all 3 submissions, oldest first"
        );
        // One more (cap + 1): the oldest (Meetings) ages out, the newest
        // (a second Meetings shape) must NOT be dropped — it appears at the
        // *end* of the audited workload.
        let newest = q(&service, "Q(x, y) :- Meetings(x, y)");
        service.submit(p, &newest).unwrap();
        let over_cap = service.audit_app(p).unwrap();
        assert_eq!(
            over_cap.uncovered_queries,
            vec![cap - 1],
            "oldest evicted, newest retained at the window's tail"
        );
    }

    #[test]
    fn interned_admissions_match_boxed_admissions() {
        use fdc_cq::intern::QueryId;
        let mut service = service(2);
        let p0 = PrincipalId(0);
        let p1 = PrincipalId(1);
        let meetings = q(&service, "Q(x, y) :- Meetings(x, y)");
        let contacts = q(&service, "Q(x, y, z) :- Contacts(x, y, z)");
        let m_id = service.intern(&meetings);
        let c_id = service.intern(&contacts);
        // An alpha-variant interns to the same id through the service.
        assert_eq!(
            service.intern(&q(&service, "Q(a, b) :- Meetings(a, b)")),
            m_id
        );

        // Sequential interned admissions decide like their boxed twins on
        // an identical second principal.
        assert_eq!(service.check_interned(p0, m_id), Ok(Decision::Allow));
        assert_eq!(service.submit_interned(p0, m_id), Ok(Decision::Allow));
        assert_eq!(service.submit_interned(p0, c_id), Ok(Decision::Deny));
        assert_eq!(service.check(p1, &meetings), Ok(Decision::Allow));
        assert_eq!(service.submit(p1, &meetings), Ok(Decision::Allow));
        assert_eq!(service.submit(p1, &contacts), Ok(Decision::Deny));

        // Mixed batches: one principal served interned, one boxed — same
        // responses position by position.
        let ops = vec![
            Operation::SubmitInterned {
                principal: p0,
                query: m_id,
            },
            Operation::Submit {
                principal: p1,
                query: meetings.clone(),
            },
            Operation::CheckInterned {
                principal: p0,
                query: c_id,
            },
            Operation::Check {
                principal: p1,
                query: contacts.clone(),
            },
        ];
        let responses = service.run_batch(&ops);
        assert_eq!(responses[0], responses[1]);
        assert_eq!(responses[2], responses[3]);

        // Interned submissions land in the audit history like boxed ones.
        let audit0 = service.audit_app(p0).unwrap();
        let audit1 = service.audit_app(p1).unwrap();
        assert_eq!(audit0.used.len(), audit1.used.len());

        // Foreign ids are rejected without touching any state.
        let bogus = QueryId(u32::MAX);
        assert_eq!(
            service.submit_interned(p0, bogus),
            Err(ServiceError::UnknownQuery(bogus))
        );
        let rejected = service.run_batch(&[Operation::CheckInterned {
            principal: p0,
            query: bogus,
        }]);
        assert_eq!(
            rejected[0],
            Response::Rejected(ServiceError::UnknownQuery(bogus))
        );
    }

    /// A unique scratch directory for durable-service tests.
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fdc_service_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A test config with fsync off (scratch dirs need no crash safety).
    fn durable_config() -> ServiceConfig {
        ServiceConfig {
            num_shards: 2,
            durability: DurabilityConfig {
                fsync: false,
                ..DurabilityConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn a_durable_service_recovers_its_state_by_replay() {
        let dir = temp_dir("replay");
        let registry = SecurityViews::paper_example();
        let (mut service, report) =
            DisclosureService::open_durable(registry.clone(), durable_config(), &dir).unwrap();
        assert!(service.is_durable());
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.last_seq, 0);
        let p = service.register_principal(wall(&registry));
        let meetings = q(&service, "Q(x, y) :- Meetings(x, y)");
        let contacts = q(&service, "Q(x, y, z) :- Contacts(x, y, z)");
        assert_eq!(service.submit(p, &meetings), Ok(Decision::Allow));
        assert_eq!(service.submit(p, &contacts), Ok(Decision::Deny));
        service.grant_view(p, "V2").unwrap();
        service.close().unwrap();

        let (mut recovered, report) =
            DisclosureService::open_durable(registry, durable_config(), &dir).unwrap();
        // register + 2 submits + grant.
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.records_replayed, 4);
        assert_eq!(report.last_seq, 4);
        assert_eq!(recovered.store().len(), 1);
        // The Chinese wall committed to `meetings`: contacts stay denied.
        assert_eq!(recovered.check(p, &contacts), Ok(Decision::Deny));
        assert_eq!(recovered.check(p, &meetings), Ok(Decision::Allow));
        // The audit history replayed too (both submits recorded).
        assert_eq!(recovered.audit_app(p).unwrap().used.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_checkpoint_restores_without_replay_and_prunes_the_log() {
        let dir = temp_dir("checkpoint");
        let registry = SecurityViews::paper_example();
        let (mut service, _) =
            DisclosureService::open_durable(registry.clone(), durable_config(), &dir).unwrap();
        let p = service.register_principal(wall(&registry));
        let meetings = q(&service, "Q(x, y) :- Meetings(x, y)");
        assert_eq!(service.submit(p, &meetings), Ok(Decision::Allow));
        let seq = service.checkpoint().unwrap();
        assert_eq!(seq, 2);
        // Post-checkpoint mutation: replayed on top of the image.
        service.grant_view(p, "V2").unwrap();
        service.close().unwrap();

        let (mut recovered, report) =
            DisclosureService::open_durable(registry.clone(), durable_config(), &dir).unwrap();
        assert_eq!(report.checkpoint_seq, 2);
        assert_eq!(report.records_replayed, 1);
        let contacts = q(&recovered, "Q(x, y, z) :- Contacts(x, y, z)");
        assert_eq!(recovered.check(p, &meetings), Ok(Decision::Allow));
        assert_eq!(recovered.check(p, &contacts), Ok(Decision::Deny));
        assert_eq!(
            recovered.store().consistency_bits(p),
            service_bits(&dir, &registry, p)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Reopens the durable home and reads one principal's consistency word
    /// (recovery is idempotent: opening twice yields the same state).
    fn service_bits(dir: &std::path::Path, registry: &SecurityViews, p: PrincipalId) -> u64 {
        let (service, _) =
            DisclosureService::open_durable(registry.clone(), durable_config(), dir).unwrap();
        service.store().consistency_bits(p)
    }

    #[test]
    fn checkpoint_requires_a_durable_service() {
        let mut service = service(1);
        assert!(service.checkpoint().is_err());
        assert!(!service.is_durable());
        service.close().unwrap();
    }

    #[test]
    fn replace_policy_swaps_partitions_and_survives_recovery() {
        let dir = temp_dir("replace_policy");
        let registry = SecurityViews::paper_example();
        let (mut service, _) =
            DisclosureService::open_durable(registry.clone(), durable_config(), &dir).unwrap();
        let p = service.register_principal(wall(&registry));
        let meetings = q(&service, "Q(x, y) :- Meetings(x, y)");
        assert_eq!(service.submit(p, &meetings), Ok(Decision::Allow));
        // Same partition count, but the meetings partition now only holds
        // V2 (attendance): the plain meetings view is no longer answerable.
        let v2 = registry.id_by_name("V2").unwrap();
        let v3 = registry.id_by_name("V3").unwrap();
        service
            .replace_policy(
                p,
                SecurityPolicy::chinese_wall([
                    PolicyPartition::from_views("meetings", &registry, [v2]),
                    PolicyPartition::from_views("contacts", &registry, [v3]),
                ]),
            )
            .unwrap();
        assert_eq!(service.check(p, &meetings), Ok(Decision::Deny));
        service.close().unwrap();
        let (mut recovered, _) =
            DisclosureService::open_durable(registry, durable_config(), &dir).unwrap();
        assert_eq!(recovered.check(p, &meetings), Ok(Decision::Deny));
        assert_eq!(
            recovered.replace_policy(PrincipalId(7), wall(&recovered.registry().clone())),
            Err(ServiceError::UnknownPrincipal(PrincipalId(7)))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
